//! Recursive-descent parser for the amnesia SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := [EXPLAIN] select [';']
//! select     := SELECT items FROM table_ref [join] [where]
//!               [GROUP BY colref] [ORDER BY colref [ASC|DESC]] [LIMIT n]
//! items      := '*' | item (',' item)*
//! item       := colref | agg '(' (colref | '*') ')' [AS ident]
//! agg        := COUNT | SUM | AVG | MIN | MAX
//! table_ref  := ident [AS ident | ident]
//! join       := [INNER] JOIN table_ref ON colref '=' colref
//! where      := WHERE pred (AND pred)*
//! pred       := colref cmp number | colref BETWEEN number AND number
//! colref     := ident ['.' ident]
//! ```

use crate::ast::{
    AggFunc, CmpOp, ColumnRef, JoinClause, OrderBy, Predicate, Select, SelectItem, SortOrder,
    Statement, TableRef,
};
use crate::error::{Span, SqlError, SqlResult};
use crate::token::{tokenize, Keyword, SpannedTok, Tok};

/// Parse one statement.
pub fn parse(input: &str) -> SqlResult<Statement> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
    };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::at(self.input_len.saturating_sub(1)))
    }

    fn bump(&mut self) -> Option<SpannedTok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Tok::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> SqlResult<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(SqlError::new(
                format!("expected {}", k.as_str()),
                self.span(),
            ))
        }
    }

    fn expect_tok(&mut self, t: Tok, what: &str) -> SqlResult<()> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::new(format!("expected {what}"), self.span()))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<(String, Span)> {
        match self.bump() {
            Some(SpannedTok {
                tok: Tok::Ident(name),
                span,
            }) => Ok((name, span)),
            Some(t) => Err(SqlError::new(
                format!("expected {what}, found {:?}", t.tok),
                t.span,
            )),
            None => Err(SqlError::new(
                format!("expected {what}, found end of input"),
                self.span(),
            )),
        }
    }

    fn number(&mut self, what: &str) -> SqlResult<i64> {
        match self.bump() {
            Some(SpannedTok {
                tok: Tok::Number(v),
                ..
            }) => Ok(v),
            Some(t) => Err(SqlError::new(format!("expected {what}"), t.span)),
            None => Err(SqlError::new(
                format!("expected {what}, found end of input"),
                self.span(),
            )),
        }
    }

    fn statement(&mut self) -> SqlResult<Statement> {
        let explain = self.eat_keyword(Keyword::Explain);
        let select = self.select()?;
        // Optional trailing semicolon.
        if self.peek() == Some(&Tok::Semicolon) {
            self.pos += 1;
        }
        Ok(if explain {
            Statement::Explain(select)
        } else {
            Statement::Select(select)
        })
    }

    fn expect_end(&mut self) -> SqlResult<()> {
        if let Some(t) = self.toks.get(self.pos) {
            return Err(SqlError::new("unexpected trailing input", t.span));
        }
        Ok(())
    }

    fn select(&mut self) -> SqlResult<Select> {
        self.expect_keyword(Keyword::Select)?;
        let items = self.select_items()?;
        self.expect_keyword(Keyword::From)?;
        let from = self.table_ref()?;

        let join = if self.peek() == Some(&Tok::Keyword(Keyword::Join))
            || self.peek() == Some(&Tok::Keyword(Keyword::Inner))
        {
            self.eat_keyword(Keyword::Inner);
            self.expect_keyword(Keyword::Join)?;
            let table = self.table_ref()?;
            self.expect_keyword(Keyword::On)?;
            let left = self.column_ref()?;
            self.expect_tok(Tok::Eq, "`=` in join condition")?;
            let right = self.column_ref()?;
            Some(JoinClause { table, left, right })
        } else {
            None
        };

        let mut predicates = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword(Keyword::And) {
                    break;
                }
            }
        }

        let group_by = if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            Some(self.column_ref()?)
        } else {
            None
        };

        let order_by = if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            let col = self.column_ref()?;
            let order = if self.eat_keyword(Keyword::Desc) {
                SortOrder::Desc
            } else {
                self.eat_keyword(Keyword::Asc);
                SortOrder::Asc
            };
            Some(OrderBy { col, order })
        } else {
            None
        };

        let limit = if self.eat_keyword(Keyword::Limit) {
            let span = self.span();
            let v = self.number("row count after LIMIT")?;
            if v < 0 {
                return Err(SqlError::new("LIMIT must be non-negative", span));
            }
            Some(v as u64)
        } else {
            None
        };

        Ok(Select {
            items,
            from,
            join,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_items(&mut self) -> SqlResult<Vec<SelectItem>> {
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn agg_keyword(&mut self) -> Option<AggFunc> {
        let func = match self.peek()? {
            Tok::Keyword(Keyword::Count) => AggFunc::Count,
            Tok::Keyword(Keyword::Sum) => AggFunc::Sum,
            Tok::Keyword(Keyword::Avg) => AggFunc::Avg,
            Tok::Keyword(Keyword::Min) => AggFunc::Min,
            Tok::Keyword(Keyword::Max) => AggFunc::Max,
            _ => return None,
        };
        self.pos += 1;
        Some(func)
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if let Some(func) = self.agg_keyword() {
            self.expect_tok(Tok::LParen, "`(` after aggregate function")?;
            let arg = if self.peek() == Some(&Tok::Star) {
                let span = self.span();
                self.pos += 1;
                if func != AggFunc::Count {
                    return Err(SqlError::new(
                        format!("{}(*) is not valid; only COUNT(*)", func.as_str()),
                        span,
                    ));
                }
                None
            } else {
                Some(self.column_ref()?)
            };
            self.expect_tok(Tok::RParen, "`)` closing the aggregate")?;
            let alias = if self.eat_keyword(Keyword::As) {
                Some(self.ident("alias after AS")?.0)
            } else {
                None
            };
            return Ok(SelectItem::Aggregate { func, arg, alias });
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let (name, span) = self.ident("table name")?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.ident("alias after AS")?.0)
        } else if let Some(Tok::Ident(_)) = self.peek() {
            // Bare alias: `FROM sales s`.
            Some(self.ident("alias")?.0)
        } else {
            None
        };
        Ok(TableRef { name, alias, span })
    }

    fn column_ref(&mut self) -> SqlResult<ColumnRef> {
        let (first, span) = self.ident("column name")?;
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let (col, span2) = self.ident("column name after `.`")?;
            Ok(ColumnRef {
                table: Some(first),
                column: col,
                span: span.merge(span2),
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
                span,
            })
        }
    }

    fn predicate(&mut self) -> SqlResult<Predicate> {
        let col = self.column_ref()?;
        if self.eat_keyword(Keyword::Between) {
            let lo = self.number("lower bound of BETWEEN")?;
            self.expect_keyword(Keyword::And)?;
            let hi = self.number("upper bound of BETWEEN")?;
            return Ok(Predicate::Between { col, lo, hi });
        }
        let op = match self.bump() {
            Some(SpannedTok { tok: Tok::Eq, .. }) => CmpOp::Eq,
            Some(SpannedTok { tok: Tok::Neq, .. }) => CmpOp::Neq,
            Some(SpannedTok { tok: Tok::Lt, .. }) => CmpOp::Lt,
            Some(SpannedTok { tok: Tok::Le, .. }) => CmpOp::Le,
            Some(SpannedTok { tok: Tok::Gt, .. }) => CmpOp::Gt,
            Some(SpannedTok { tok: Tok::Ge, .. }) => CmpOp::Ge,
            Some(t) => {
                return Err(SqlError::new(
                    "expected comparison operator or BETWEEN",
                    t.span,
                ))
            }
            None => {
                return Err(SqlError::new(
                    "expected comparison operator, found end of input",
                    self.span(),
                ))
            }
        };
        let value = self.number("literal on the right of the comparison")?;
        Ok(Predicate::Compare { col, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(input: &str) -> Select {
        match parse(input).unwrap() {
            Statement::Select(s) => s,
            Statement::Explain(_) => panic!("unexpected EXPLAIN"),
        }
    }

    #[test]
    fn minimal_select_star() {
        let s = sel("SELECT * FROM t");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from.name, "t");
        assert!(s.predicates.is_empty());
    }

    #[test]
    fn projection_list_and_aliases() {
        let s = sel("SELECT a, t.b, SUM(c) AS total FROM t");
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.items[0], SelectItem::Column(ColumnRef::bare("a")));
        assert_eq!(
            s.items[1],
            SelectItem::Column(ColumnRef::qualified("t", "b"))
        );
        match &s.items[2] {
            SelectItem::Aggregate { func, arg, alias } => {
                assert_eq!(*func, AggFunc::Sum);
                assert_eq!(arg.as_ref().unwrap().column, "c");
                assert_eq!(alias.as_deref(), Some("total"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_is_special() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.items[0] {
            SelectItem::Aggregate { func, arg, .. } => {
                assert_eq!(*func, AggFunc::Count);
                assert!(arg.is_none());
            }
            other => panic!("{other:?}"),
        }
        // Other aggregates reject `*`.
        assert!(parse("SELECT AVG(*) FROM t").is_err());
    }

    #[test]
    fn where_conjunction_and_between() {
        let s = sel("SELECT * FROM t WHERE a >= 3 AND a < 10 AND b BETWEEN 1 AND 5");
        assert_eq!(s.predicates.len(), 3);
        assert_eq!(
            s.predicates[0],
            Predicate::Compare {
                col: ColumnRef::bare("a"),
                op: CmpOp::Ge,
                value: 3
            }
        );
        assert_eq!(
            s.predicates[2],
            Predicate::Between {
                col: ColumnRef::bare("b"),
                lo: 1,
                hi: 5
            }
        );
    }

    #[test]
    fn join_with_alias() {
        let s = sel("SELECT o.amount FROM customers AS c JOIN orders o ON c.id = o.customer_id");
        let j = s.join.unwrap();
        assert_eq!(j.table.name, "orders");
        assert_eq!(j.table.alias.as_deref(), Some("o"));
        assert_eq!(j.left, ColumnRef::qualified("c", "id"));
        assert_eq!(j.right, ColumnRef::qualified("o", "customer_id"));
        // INNER JOIN spelling also accepted.
        let s2 = sel("SELECT * FROM a INNER JOIN b ON a.x = b.y");
        assert!(s2.join.is_some());
    }

    #[test]
    fn group_order_limit() {
        let s = sel("SELECT region, COUNT(*) FROM t GROUP BY region ORDER BY region DESC LIMIT 3");
        assert_eq!(s.group_by, Some(ColumnRef::bare("region")));
        let o = s.order_by.unwrap();
        assert_eq!(o.order, SortOrder::Desc);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn order_by_asc_is_default_and_explicit() {
        assert_eq!(
            sel("SELECT * FROM t ORDER BY a").order_by.unwrap().order,
            SortOrder::Asc
        );
        assert_eq!(
            sel("SELECT * FROM t ORDER BY a ASC")
                .order_by
                .unwrap()
                .order,
            SortOrder::Asc
        );
    }

    #[test]
    fn explain_wraps_select() {
        match parse("EXPLAIN SELECT * FROM t").unwrap() {
            Statement::Explain(s) => assert_eq!(s.from.name, "t"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_is_fine_but_garbage_is_not() {
        assert!(parse("SELECT * FROM t;").is_ok());
        let err = parse("SELECT * FROM t garbage extra").unwrap_err();
        // `garbage` binds as a table alias; `extra` is trailing input.
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn negative_limit_rejected() {
        let err = parse("SELECT * FROM t LIMIT -1").unwrap_err();
        assert!(err.message.contains("non-negative"));
    }

    #[test]
    fn missing_from_has_good_span() {
        let err = parse("SELECT a b c").unwrap_err();
        assert!(err.message.contains("FROM"), "{err}");
    }

    #[test]
    fn error_spans_render_against_source() {
        let src = "SELECT * FROM t WHERE a !! 3";
        let err = parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains('^'));
    }

    #[test]
    fn parse_round_trips_canonical_display() {
        let cases = [
            "SELECT * FROM t",
            "SELECT a, b FROM t WHERE a = 1 AND b <> 2",
            "SELECT COUNT(*) FROM t WHERE a BETWEEN 0 AND 9",
            "SELECT s.region, AVG(amount) AS mean FROM sales AS s \
             WHERE amount BETWEEN 10 AND 100 GROUP BY s.region \
             ORDER BY s.region DESC LIMIT 5",
            "SELECT c.id, o.amount FROM customers AS c JOIN orders AS o \
             ON c.id = o.customer_id WHERE o.amount > 50",
        ];
        for case in cases {
            let stmt = parse(case).unwrap();
            let rendered = stmt.to_string();
            let reparsed = parse(&rendered).unwrap();
            // Structural equality ignores spans, so the round trip must
            // reproduce the statement exactly.
            assert_eq!(stmt, reparsed, "{case}");
        }
    }

    #[test]
    fn round_trip_is_fixpoint_on_display() {
        let cases = [
            "select A , b from T where a >= 4 and b between 2 and 7 limit 2",
            "EXPLAIN SELECT COUNT(*) FROM t",
        ];
        for case in cases {
            let once = parse(case).unwrap().to_string();
            let twice = parse(&once).unwrap().to_string();
            assert_eq!(once, twice, "{case}");
        }
    }
}
