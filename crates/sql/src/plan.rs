//! Name resolution, logical planning, and lowering onto the engine's
//! physical plan.
//!
//! The binder resolves a parsed [`Select`] against a [`Catalog`] into a
//! [`BoundQuery`]: table slots (0 = FROM, 1 = JOIN), column ordinals, and
//! an output schema. Binding catches every name error with a span before
//! execution starts, so the executor never sees an unresolved name.
//!
//! [`BoundQuery::lower`] then translates the bound query into an
//! [`amnesia_engine::PhysicalPlan`] — WHERE conjuncts become pushed-down
//! [`ColPred`]s evaluated as 64-bit selection masks, the join becomes a
//! tiered hash join, projections and aggregates become plan items — so
//! SQL executes on exactly the vectorized, compressed, tier-aware
//! operator layer the engine benches measure:
//!
//! ```text
//! SQL text ─parse─► Select ─bind─► BoundQuery ─lower─► PhysicalPlan
//!                                                        │ execute_plan
//!                                                        ▼
//!                                              rows + unified ExecStats
//! ```

use crate::ast::{AggFunc, CmpOp, ColumnRef, Select, SelectItem, SortOrder};
use crate::error::{SqlError, SqlResult};
use amnesia_columnar::{Database, Table};
use amnesia_engine::physical::{
    ColPred, JoinSpec, PhysItem, PhysScan, PhysicalPlan, PlanHint, SortDir,
};
use amnesia_workload::query::AggKind;

/// Read-only name resolution surface the planner binds against.
pub trait Catalog {
    /// Table handle by name, if it exists.
    fn resolve(&self, name: &str) -> Option<&Table>;

    /// All table names (for error messages).
    fn table_names(&self) -> Vec<String>;
}

impl Catalog for Database {
    fn resolve(&self, name: &str) -> Option<&Table> {
        self.table_id(name).map(|id| self.table(id))
    }

    fn table_names(&self) -> Vec<String> {
        (0..self.num_tables())
            .filter_map(|id| {
                // Database keeps names internally; recover via table_id
                // round-trip is impossible, so expose through ids.
                self.table_name(id).map(str::to_string)
            })
            .collect()
    }
}

/// A resolved column: which joined input (slot) and which column ordinal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundColumn {
    /// 0 = FROM table, 1 = JOIN table.
    pub slot: usize,
    /// Column ordinal within the slot's table.
    pub col: usize,
    /// Qualified display name (`binding.column`).
    pub display: String,
}

/// A resolved filter: evaluated against one slot during its scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundFilter {
    /// `col op literal`.
    Compare {
        /// Filtered column.
        col: BoundColumn,
        /// Operator.
        op: CmpOp,
        /// Literal.
        value: i64,
    },
    /// `col BETWEEN lo AND hi`, both inclusive.
    Between {
        /// Filtered column.
        col: BoundColumn,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl BoundFilter {
    /// The filtered column.
    pub fn column(&self) -> &BoundColumn {
        match self {
            BoundFilter::Compare { col, .. } | BoundFilter::Between { col, .. } => col,
        }
    }

    /// Does `v` pass?
    pub fn matches(&self, v: i64) -> bool {
        match self {
            BoundFilter::Compare { op, value, .. } => op.eval(v, *value),
            BoundFilter::Between { lo, hi, .. } => v >= *lo && v <= *hi,
        }
    }

    /// Human-readable rendering for EXPLAIN.
    pub fn describe(&self) -> String {
        match self {
            BoundFilter::Compare { col, op, value } => {
                format!("{} {} {}", col.display, op.as_str(), value)
            }
            BoundFilter::Between { col, lo, hi } => {
                format!("{} BETWEEN {} AND {}", col.display, lo, hi)
            }
        }
    }

    /// Lower to a physical pushed-down predicate: every comparison
    /// becomes an *inclusive* value range (possibly negated for `<>`),
    /// exact across the whole `i64` domain, carrying the EXPLAIN
    /// rendering along.
    pub fn lower(&self) -> ColPred {
        let display = self.describe();
        match self {
            BoundFilter::Compare { col, op, value } => {
                let (lo, hi, negated) = match op {
                    CmpOp::Eq => (*value, *value, false),
                    CmpOp::Neq => (*value, *value, true),
                    CmpOp::Lt => match value.checked_sub(1) {
                        Some(hi) => (i64::MIN, hi, false),
                        None => (0, -1, false), // `< i64::MIN` is empty
                    },
                    CmpOp::Le => (i64::MIN, *value, false),
                    CmpOp::Gt => match value.checked_add(1) {
                        Some(lo) => (lo, i64::MAX, false),
                        None => (0, -1, false), // `> i64::MAX` is empty
                    },
                    CmpOp::Ge => (*value, i64::MAX, false),
                };
                ColPred {
                    col: col.col,
                    lo,
                    hi,
                    negated,
                    display,
                }
            }
            BoundFilter::Between { col, lo, hi } => ColPred {
                col: col.col,
                lo: *lo,
                hi: *hi,
                negated: false,
                display,
            },
        }
    }
}

/// Map a SQL aggregate function onto the engine's aggregate kind.
fn lower_func(func: AggFunc) -> AggKind {
    match func {
        AggFunc::Count => AggKind::Count,
        AggFunc::Sum => AggKind::Sum,
        AggFunc::Avg => AggKind::Avg,
        AggFunc::Min => AggKind::Min,
        AggFunc::Max => AggKind::Max,
    }
}

/// A resolved projection item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundItem {
    /// Pass-through column.
    Column(BoundColumn),
    /// Aggregate over a column (`None` = COUNT(*)).
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Input column.
        arg: Option<BoundColumn>,
        /// Output column name.
        name: String,
    },
}

impl BoundItem {
    /// Output column name.
    pub fn name(&self) -> &str {
        match self {
            BoundItem::Column(c) => &c.display,
            BoundItem::Aggregate { name, .. } => name,
        }
    }

    /// Is this an aggregate?
    pub fn is_aggregate(&self) -> bool {
        matches!(self, BoundItem::Aggregate { .. })
    }
}

/// A fully resolved query, ready to execute.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// `(catalog table name, binding name)` per slot; 1 or 2 entries.
    pub tables: Vec<(String, String)>,
    /// Equi-join columns, one per side; `left.slot == 0`, `right.slot == 1`.
    pub join: Option<(BoundColumn, BoundColumn)>,
    /// Filters, each tied to a slot.
    pub filters: Vec<BoundFilter>,
    /// Output items.
    pub items: Vec<BoundItem>,
    /// Group key.
    pub group_by: Option<BoundColumn>,
    /// Sort: output column index + direction.
    pub order_by: Option<(usize, SortOrder)>,
    /// Row cap.
    pub limit: Option<u64>,
}

impl BoundQuery {
    /// Output column names.
    pub fn output_columns(&self) -> Vec<String> {
        self.items.iter().map(|i| i.name().to_string()).collect()
    }

    /// Does the query aggregate?
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(BoundItem::is_aggregate)
    }

    /// Lower the bound query onto the engine's [`PhysicalPlan`]: WHERE
    /// conjuncts become pushed-down inclusive-range predicates on their
    /// slot's scan, the join becomes a tiered hash-join spec, items /
    /// group key / sort / limit translate one-to-one. The physical plan
    /// is the *only* execution path — `amnesia-sql` no longer owns an
    /// interpreter. The plan runs cost-based by default
    /// ([`PlanHint::CostBased`]); [`Self::lower_with_hint`] is the
    /// syntactic escape hatch.
    pub fn lower(&self) -> PhysicalPlan {
        self.lower_with_hint(PlanHint::CostBased)
    }

    /// [`Self::lower`] with an explicit [`PlanHint`]:
    /// [`PlanHint::SyntacticOrder`] pins predicate evaluation and the
    /// join build side to the query's written order — the equivalence
    /// oracle the cost-based path is tested against.
    pub fn lower_with_hint(&self, hint: PlanHint) -> PhysicalPlan {
        let mut scans: Vec<PhysScan> = self
            .tables
            .iter()
            .map(|(name, binding)| PhysScan {
                preds: Vec::new(),
                label: if name == binding {
                    format!("Scan {name} [active-only]")
                } else {
                    format!("Scan {name} AS {binding} [active-only]")
                },
            })
            .collect();
        for f in &self.filters {
            scans[f.column().slot].preds.push(f.lower());
        }
        let join = self.join.as_ref().map(|(l, r)| JoinSpec {
            left_col: l.col,
            right_col: r.col,
            display: format!("{} = {}", l.display, r.display),
        });
        let items = self
            .items
            .iter()
            .map(|item| match item {
                BoundItem::Column(c) => PhysItem::Column {
                    slot: c.slot,
                    col: c.col,
                    display: c.display.clone(),
                },
                BoundItem::Aggregate { func, arg, name } => PhysItem::Aggregate {
                    kind: lower_func(*func),
                    arg: arg.as_ref().map(|c| (c.slot, c.col)),
                    display: name.clone(),
                },
            })
            .collect();
        PhysicalPlan {
            scans,
            join,
            items,
            group_by: self
                .group_by
                .as_ref()
                .map(|g| (g.slot, g.col, g.display.clone())),
            order_by: self.order_by.map(|(idx, order)| {
                (
                    idx,
                    match order {
                        SortOrder::Asc => SortDir::Asc,
                        SortOrder::Desc => SortDir::Desc,
                    },
                )
            }),
            limit: self.limit,
            hint,
        }
    }

    /// Render the physical plan tree for EXPLAIN (access-path tags are
    /// resolved against live tables by [`crate::exec::run`], which can
    /// see the catalog).
    pub fn explain(&self) -> String {
        self.lower().explain(None)
    }
}

/// Binder state: the slots in scope.
struct Scope<'a> {
    /// `(binding name, table)` per slot.
    slots: Vec<(&'a str, &'a Table)>,
}

impl<'a> Scope<'a> {
    fn resolve_column(&self, c: &ColumnRef) -> SqlResult<BoundColumn> {
        let mut hits = Vec::new();
        for (slot, (binding, table)) in self.slots.iter().enumerate() {
            if let Some(qual) = &c.table {
                if qual != binding {
                    continue;
                }
            }
            if let Some(col) = table.schema().index_of(&c.column) {
                hits.push(BoundColumn {
                    slot,
                    col,
                    display: format!("{binding}.{}", c.column),
                });
            }
        }
        match hits.len() {
            0 => Err(SqlError::new(format!("unknown column `{c}`"), c.span)),
            1 => Ok(hits.pop().expect("one hit")),
            _ => Err(SqlError::new(
                format!("ambiguous column `{c}`: qualify it with a table name"),
                c.span,
            )),
        }
    }
}

/// Resolve one FROM/JOIN table into a slot.
fn resolve_table<'a>(
    catalog: &'a dyn Catalog,
    tref: &crate::ast::TableRef,
    tables: &mut Vec<(String, String)>,
    resolved: &mut Vec<&'a Table>,
) -> SqlResult<()> {
    let table = catalog.resolve(&tref.name).ok_or_else(|| {
        SqlError::new(
            format!(
                "unknown table `{}` (have: {})",
                tref.name,
                catalog.table_names().join(", ")
            ),
            tref.span,
        )
    })?;
    let binding = tref.binding().to_string();
    if tables.iter().any(|(_, b)| *b == binding) {
        return Err(SqlError::new(
            format!("duplicate table binding `{binding}`"),
            tref.span,
        ));
    }
    tables.push((tref.name.clone(), binding));
    resolved.push(table);
    Ok(())
}

/// Bind a parsed SELECT against the catalog.
pub fn bind(catalog: &dyn Catalog, select: &Select) -> SqlResult<BoundQuery> {
    // Resolve tables into slots.
    let mut tables: Vec<(String, String)> = Vec::new();
    let mut resolved: Vec<&Table> = Vec::new();
    resolve_table(catalog, &select.from, &mut tables, &mut resolved)?;
    if let Some(join) = &select.join {
        resolve_table(catalog, &join.table, &mut tables, &mut resolved)?;
    }
    let scope = Scope {
        slots: tables
            .iter()
            .zip(&resolved)
            .map(|((_, b), t)| (b.as_str(), *t))
            .collect(),
    };

    // Join condition must span both slots (either order in the text).
    let join = match &select.join {
        Some(j) => {
            let a = scope.resolve_column(&j.left)?;
            let b = scope.resolve_column(&j.right)?;
            let (l, r) = match (a.slot, b.slot) {
                (0, 1) => (a, b),
                (1, 0) => (b, a),
                _ => {
                    return Err(SqlError::new(
                        "join condition must reference both tables",
                        j.left.span.merge(j.right.span),
                    ))
                }
            };
            Some((l, r))
        }
        None => None,
    };

    // Projection.
    let mut items: Vec<BoundItem> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                if select.group_by.is_some() {
                    return Err(SqlError::new(
                        "`*` cannot be combined with GROUP BY",
                        select.from.span,
                    ));
                }
                for (slot, (binding, table)) in scope.slots.iter().enumerate() {
                    for (col, def) in table.schema().columns().iter().enumerate() {
                        items.push(BoundItem::Column(BoundColumn {
                            slot,
                            col,
                            display: format!("{binding}.{}", def.name),
                        }));
                    }
                }
            }
            SelectItem::Column(c) => {
                items.push(BoundItem::Column(scope.resolve_column(c)?));
            }
            SelectItem::Aggregate { func, arg, alias } => {
                let bound_arg = arg.as_ref().map(|c| scope.resolve_column(c)).transpose()?;
                let name = alias.clone().unwrap_or_else(|| match &bound_arg {
                    Some(c) => format!("{}({})", func.as_str().to_ascii_lowercase(), c.display),
                    None => "count(*)".to_string(),
                });
                items.push(BoundItem::Aggregate {
                    func: *func,
                    arg: bound_arg,
                    name,
                });
            }
        }
    }

    // Group key + the aggregate/plain-column consistency rules.
    let group_by = select
        .group_by
        .as_ref()
        .map(|c| scope.resolve_column(c))
        .transpose()?;
    let has_agg = items.iter().any(BoundItem::is_aggregate);
    if let Some(g) = &group_by {
        if !has_agg {
            // GROUP BY without aggregates is DISTINCT on the key; the
            // projection must then be exactly the key.
            for item in &items {
                match item {
                    BoundItem::Column(c) if c == g => {}
                    _ => {
                        return Err(SqlError::new(
                            "GROUP BY without aggregates may only project the group key",
                            select.group_by.as_ref().expect("group").span,
                        ))
                    }
                }
            }
        }
        for item in &items {
            if let BoundItem::Column(c) = item {
                if c != g {
                    return Err(SqlError::new(
                        format!(
                            "column `{}` must appear in GROUP BY or inside an aggregate",
                            c.display
                        ),
                        select.group_by.as_ref().expect("group").span,
                    ));
                }
            }
        }
    } else if has_agg {
        for item in &items {
            if let BoundItem::Column(c) = item {
                return Err(SqlError::new(
                    format!(
                        "column `{}` cannot be selected alongside aggregates without GROUP BY",
                        c.display
                    ),
                    select.from.span,
                ));
            }
        }
    }

    // Filters.
    let mut filters = Vec::new();
    for p in &select.predicates {
        filters.push(match p {
            crate::ast::Predicate::Compare { col, op, value } => BoundFilter::Compare {
                col: scope.resolve_column(col)?,
                op: *op,
                value: *value,
            },
            crate::ast::Predicate::Between { col, lo, hi } => BoundFilter::Between {
                col: scope.resolve_column(col)?,
                lo: *lo,
                hi: *hi,
            },
        });
    }

    // ORDER BY resolves against output columns: by alias/name first, then
    // by resolving as an input column that appears in the projection.
    let order_by = match &select.order_by {
        Some(o) => {
            let rendered = o.col.to_string();
            let by_name = items
                .iter()
                .position(|i| i.name() == rendered || i.name().ends_with(&format!(".{rendered}")));
            let idx = match by_name {
                Some(i) => i,
                None => {
                    let bound = scope.resolve_column(&o.col)?;
                    items
                        .iter()
                        .position(|i| matches!(i, BoundItem::Column(c) if *c == bound))
                        .ok_or_else(|| {
                            SqlError::new(
                                format!("ORDER BY column `{}` is not in the projection", o.col),
                                o.col.span,
                            )
                        })?
                }
            };
            Some((idx, o.order))
        }
        None => None,
    };

    Ok(BoundQuery {
        tables,
        join,
        filters,
        items,
        group_by,
        order_by,
        limit: select.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use amnesia_columnar::Schema;

    fn shop() -> Database {
        let mut db = Database::new();
        let _ = db.add_table("customers", Schema::new(vec!["id", "region"]));
        let _ = db.add_table("orders", Schema::new(vec!["customer_id", "amount"]));
        db
    }

    fn bind_sql(db: &Database, sql: &str) -> SqlResult<BoundQuery> {
        match parse(sql).unwrap() {
            crate::ast::Statement::Select(s) => bind(db, &s),
            crate::ast::Statement::Explain(s) => bind(db, &s),
        }
    }

    #[test]
    fn binds_columns_to_slots_and_ordinals() {
        let db = shop();
        let q = bind_sql(
            &db,
            "SELECT c.region, AVG(o.amount) FROM customers c JOIN orders o \
             ON c.id = o.customer_id GROUP BY c.region",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        let (l, r) = q.join.as_ref().unwrap();
        assert_eq!((l.slot, l.col), (0, 0));
        assert_eq!((r.slot, r.col), (1, 0));
        assert_eq!(q.output_columns(), vec!["c.region", "avg(o.amount)"]);
    }

    #[test]
    fn join_condition_written_backwards_still_binds() {
        let db = shop();
        let q = bind_sql(
            &db,
            "SELECT COUNT(*) FROM customers c JOIN orders o ON o.customer_id = c.id",
        )
        .unwrap();
        let (l, r) = q.join.unwrap();
        assert_eq!(l.slot, 0);
        assert_eq!(r.slot, 1);
    }

    #[test]
    fn unknown_table_lists_candidates() {
        let db = shop();
        let err = bind_sql(&db, "SELECT * FROM sales").unwrap_err();
        assert!(err.message.contains("unknown table `sales`"));
        assert!(err.message.contains("customers"));
    }

    #[test]
    fn unknown_and_ambiguous_columns() {
        let db = shop();
        let err = bind_sql(&db, "SELECT price FROM orders").unwrap_err();
        assert!(err.message.contains("unknown column"));
        // `id` exists only in customers; `customer_id` only in orders —
        // create ambiguity via two tables sharing a name through aliases.
        let mut db2 = Database::new();
        db2.add_table("a", Schema::new(vec!["x"]));
        db2.add_table("b", Schema::new(vec!["x"]));
        let err = bind_sql(&db2, "SELECT x FROM a JOIN b ON a.x = b.x").unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn aggregate_mixing_rules() {
        let db = shop();
        let err = bind_sql(&db, "SELECT region, COUNT(*) FROM customers").unwrap_err();
        assert!(err.message.contains("GROUP BY"), "{err}");
        let err = bind_sql(&db, "SELECT id, COUNT(*) FROM customers GROUP BY region").unwrap_err();
        assert!(err.message.contains("must appear in GROUP BY"), "{err}");
        assert!(bind_sql(
            &db,
            "SELECT region, COUNT(*) FROM customers GROUP BY region"
        )
        .is_ok());
    }

    #[test]
    fn wildcard_expands_across_join() {
        let db = shop();
        let q = bind_sql(
            &db,
            "SELECT * FROM customers c JOIN orders o ON c.id = o.customer_id",
        )
        .unwrap();
        assert_eq!(
            q.output_columns(),
            vec!["c.id", "c.region", "o.customer_id", "o.amount"]
        );
    }

    #[test]
    fn order_by_alias_and_projected_column() {
        let db = shop();
        let q = bind_sql(
            &db,
            "SELECT region, COUNT(*) AS n FROM customers GROUP BY region ORDER BY n DESC",
        )
        .unwrap();
        assert_eq!(q.order_by, Some((1, SortOrder::Desc)));
        let q2 = bind_sql(&db, "SELECT id FROM customers ORDER BY id").unwrap();
        assert_eq!(q2.order_by, Some((0, SortOrder::Asc)));
        let err = bind_sql(&db, "SELECT id FROM customers ORDER BY region").unwrap_err();
        assert!(err.message.contains("not in the projection"));
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = shop();
        let err = bind_sql(
            &db,
            "SELECT * FROM customers c JOIN orders c ON c.id = c.amount",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate table binding"));
    }

    #[test]
    fn explain_renders_the_pipeline() {
        let db = shop();
        let q = bind_sql(
            &db,
            "SELECT c.region, AVG(o.amount) AS mean FROM customers c JOIN orders o \
             ON c.id = o.customer_id WHERE o.amount > 10 GROUP BY c.region \
             ORDER BY mean DESC LIMIT 3",
        )
        .unwrap();
        let plan = q.explain();
        assert!(plan.starts_with("Limit 3"), "{plan}");
        assert!(plan.contains("Sort mean DESC"), "{plan}");
        assert!(plan.contains("GroupBy c.region"), "{plan}");
        assert!(plan.contains("HashJoin c.id = o.customer_id"), "{plan}");
        assert!(
            plan.contains("Scan orders AS o [active-only] filter: o.amount > 10"),
            "{plan}"
        );
    }
}
