//! SQL execution: a thin driver over the engine's physical-plan layer.
//!
//! Since the unified-execution redesign this module no longer owns an
//! interpreter. [`execute`] resolves the bound tables, lowers the
//! [`BoundQuery`] onto an [`amnesia_engine::PhysicalPlan`]
//! ([`BoundQuery::lower`]), and hands it to
//! [`Executor::execute_plan`] — the same tier-aware vectorized operator
//! layer the workload driver and the benches run on. Scans evaluate the
//! WHERE conjunction as 64-bit selection masks (fused over compressed
//! blocks, meta-pruned), joins build and probe in compressed space,
//! `GROUP BY` runs the vectorized hash group-by, and a multi-predicate
//! grouped query over a fully-frozen table finishes with **zero block
//! decodes**. What remains here is materialization: engine
//! [`Scalar`](amnesia_engine::Scalar)s *are* the SQL [`Datum`]s, and the
//! per-query accounting is the engine's unified
//! [`ExecStats`] (rows scanned, words/blocks pruned, join pairs,
//! groups). Forgotten tuples never appear — the defining property of the
//! amnesiac store (§1: "data is forgotten and will never show up in
//! query results").

use amnesia_columnar::Table;
use amnesia_engine::{Aux, ExecStats, Executor};

use crate::ast::Statement;
use crate::error::{Span, SqlError, SqlResult};
use crate::parser::parse;
use crate::plan::{bind, BoundQuery, Catalog};

/// One output value — the engine's scalar, re-exported: integers stay
/// integers end to end, `AVG` (and `SUM`s widened past the `i64`
/// domain) are floats, `NULL` is an aggregate over an empty selection.
pub type Datum = amnesia_engine::Scalar;

/// A query answer: column names, rows, stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Datum>>,
    /// The engine's unified execution statistics.
    pub stats: ExecStats,
}

impl ResultSet {
    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Datum::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        for row in &cells {
            out.push('\n');
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{c:>w$}", w = widths[i]));
            }
        }
        out
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Rows from a SELECT.
    Rows(ResultSet),
    /// Physical plan text from an EXPLAIN.
    Plan(String),
}

/// Resolve every bound slot's table (bind already proved they exist;
/// a vanished table is a catalog race, reported with a span-less error).
fn resolve_tables<'a>(catalog: &'a dyn Catalog, q: &BoundQuery) -> SqlResult<Vec<&'a Table>> {
    q.tables
        .iter()
        .map(|(name, _)| {
            catalog.resolve(name).ok_or_else(|| {
                SqlError::new(
                    format!("table `{name}` disappeared between bind and execute"),
                    Span::default(),
                )
            })
        })
        .collect()
}

/// Parse, bind and execute one statement against the catalog. EXPLAIN
/// returns the physical plan tree with its access-path tags resolved
/// against the live storage tiers.
///
/// Runs on a default-constructed [`Executor`] (serial, unless the
/// `AMNESIA_TEST_THREADS` environment selects a parallel pool); use
/// [`run_with`] to pin an explicit executor.
pub fn run(catalog: &dyn Catalog, sql: &str) -> SqlResult<QueryOutcome> {
    run_with(catalog, sql, &Executor::default())
}

/// [`run`] on an explicit executor — the SQL entry point for callers
/// that select the execution mode themselves (the benches sweep
/// [`ExecMode::Parallel`](amnesia_engine::ExecMode) thread counts; the
/// equivalence suites hold parallel output byte-identical to serial).
pub fn run_with(catalog: &dyn Catalog, sql: &str, executor: &Executor) -> SqlResult<QueryOutcome> {
    let stmt = parse(sql)?;
    match stmt {
        Statement::Select(s) => {
            let bound = bind(catalog, &s)?;
            Ok(QueryOutcome::Rows(execute_with(catalog, &bound, executor)?))
        }
        Statement::Explain(s) => {
            let bound = bind(catalog, &s)?;
            let tables = resolve_tables(catalog, &bound)?;
            // EXPLAIN runs the plan (an EXPLAIN ANALYZE, in effect): the
            // tree renders with the executed statistics — estimated vs.
            // actual rows per stage, the cost model's predicate order
            // with per-predicate pruned/refined block counts, and the
            // join strategy it actually chose.
            let plan = bound.lower();
            let auxes: Vec<Aux<'_>> = (0..tables.len()).map(|_| Aux::default()).collect();
            let result = executor.execute_plan(&tables, &auxes, &plan);
            Ok(QueryOutcome::Plan(
                plan.explain_executed(Some(&tables), &result.stats),
            ))
        }
    }
}

/// Execute a bound query: lower to a physical plan, run it on the
/// engine executor, attach the output schema.
pub fn execute(catalog: &dyn Catalog, q: &BoundQuery) -> SqlResult<ResultSet> {
    execute_with(catalog, q, &Executor::default())
}

/// [`execute`] on an explicit executor (see [`run_with`]).
pub fn execute_with(
    catalog: &dyn Catalog,
    q: &BoundQuery,
    executor: &Executor,
) -> SqlResult<ResultSet> {
    let tables = resolve_tables(catalog, q)?;
    let plan = q.lower();
    let auxes: Vec<Aux<'_>> = (0..tables.len()).map(|_| Aux::default()).collect();
    let result = executor.execute_plan(&tables, &auxes, &plan);
    Ok(ResultSet {
        columns: q.output_columns(),
        rows: result.rows,
        stats: result.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::{Database, RowId, Schema};
    use amnesia_engine::exec::PlanTag;

    /// customers(id, region) and orders(customer_id, amount), with one
    /// customer and one order forgotten.
    fn shop() -> Database {
        let mut db = Database::new();
        let customers = db.add_table("customers", Schema::new(vec!["id", "region"]));
        let orders = db.add_table("orders", Schema::new(vec!["customer_id", "amount"]));
        for (id, region) in [(1i64, 10i64), (2, 10), (3, 20), (4, 30)] {
            db.table_mut(customers).insert(&[id, region], 0).unwrap();
        }
        for (cid, amount) in [(1i64, 100i64), (1, 50), (2, 75), (3, 10), (4, 5)] {
            db.table_mut(orders).insert(&[cid, amount], 0).unwrap();
        }
        // Forget customer 4 and the (3, 10) order.
        db.table_mut(customers).forget(RowId(3), 1).unwrap();
        db.table_mut(orders).forget(RowId(3), 1).unwrap();
        db
    }

    fn rows(db: &Database, sql: &str) -> ResultSet {
        match run(db, sql).unwrap() {
            QueryOutcome::Rows(r) => r,
            QueryOutcome::Plan(p) => panic!("unexpected plan: {p}"),
        }
    }

    #[test]
    fn select_star_skips_forgotten() {
        let r = rows(&shop(), "SELECT * FROM customers");
        assert_eq!(r.columns, vec!["customers.id", "customers.region"]);
        assert_eq!(r.rows.len(), 3, "customer 4 is forgotten");
        assert_eq!(r.stats.rows_scanned, 3);
    }

    #[test]
    fn where_filters_and_projects() {
        let r = rows(&shop(), "SELECT amount FROM orders WHERE amount >= 50");
        let mut vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        vals.sort();
        assert_eq!(vals, vec![50, 75, 100]);
    }

    #[test]
    fn between_is_inclusive() {
        let r = rows(
            &shop(),
            "SELECT amount FROM orders WHERE amount BETWEEN 50 AND 75",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn multi_predicate_conjunction_combines_masks() {
        let r = rows(
            &shop(),
            "SELECT amount FROM orders WHERE amount BETWEEN 10 AND 100 \
             AND amount > 50 AND customer_id <> 1",
        );
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![75], "only (2, 75) passes all three conjuncts");
    }

    #[test]
    fn aggregates_without_group() {
        let r = rows(
            &shop(),
            "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM orders",
        );
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        // Active orders: 100, 50, 75, 5.
        assert_eq!(row[0], Datum::Int(4));
        assert_eq!(row[1], Datum::Int(230));
        assert_eq!(row[2], Datum::Float(57.5));
        assert_eq!(row[3], Datum::Int(5));
        assert_eq!(row[4], Datum::Int(100));
        assert_eq!(r.stats.groups, 1, "one implicit group");
    }

    #[test]
    fn empty_selection_yields_nulls_but_count_zero() {
        let r = rows(
            &shop(),
            "SELECT COUNT(*), AVG(amount) FROM orders WHERE amount > 10000",
        );
        assert_eq!(r.rows[0][0], Datum::Int(0));
        assert_eq!(r.rows[0][1], Datum::Null);
    }

    #[test]
    fn group_by_with_order_and_limit() {
        let r = rows(
            &shop(),
            "SELECT region, COUNT(*) AS n FROM customers GROUP BY region ORDER BY n DESC LIMIT 1",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(10), "region 10 has two actives");
        assert_eq!(r.rows[0][1], Datum::Int(2));
        assert_eq!(r.stats.groups, 2, "regions 10 and 20 (30 is forgotten)");
    }

    #[test]
    fn join_respects_amnesia_on_both_sides() {
        let r = rows(
            &shop(),
            "SELECT c.id, o.amount FROM customers c JOIN orders o ON c.id = o.customer_id",
        );
        // customer 4 forgotten → its order drops; order (3,10) forgotten.
        assert_eq!(r.stats.join_pairs, 3);
        let mut pairs: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 50), (1, 100), (2, 75)]);
    }

    #[test]
    fn join_with_group_by_aggregates_per_key() {
        let r = rows(
            &shop(),
            "SELECT c.region, SUM(o.amount) AS total FROM customers c \
             JOIN orders o ON c.id = o.customer_id GROUP BY c.region \
             ORDER BY total DESC",
        );
        assert_eq!(r.rows.len(), 1, "only region 10 has active join pairs");
        assert_eq!(r.rows[0][0], Datum::Int(10));
        assert_eq!(r.rows[0][1], Datum::Int(225));
    }

    #[test]
    fn order_by_column_ascending() {
        let r = rows(&shop(), "SELECT amount FROM orders ORDER BY amount");
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![5, 50, 75, 100]);
    }

    #[test]
    fn order_by_compares_i64_keys_exactly() {
        // Above 2^53 an f64 sort key cannot tell neighbours apart; the
        // type-aware comparator must.
        let mut db = Database::new();
        let t = db.add_table("t", Schema::single("a"));
        let base = (1i64 << 53) + 1;
        for v in [base + 2, base, base + 1, -base, -base - 1] {
            db.table_mut(t).insert(&[v], 0).unwrap();
        }
        let r = rows(&db, "SELECT a FROM t ORDER BY a");
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![-base - 1, -base, base, base + 1, base + 2]);
        let r = rows(&db, "SELECT a FROM t ORDER BY a DESC LIMIT 2");
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![base + 2, base + 1]);
    }

    #[test]
    fn sum_overflow_widens_to_float_instead_of_wrapping() {
        let mut db = Database::new();
        let t = db.add_table("t", Schema::single("a"));
        db.table_mut(t).insert(&[i64::MAX], 0).unwrap();
        db.table_mut(t).insert(&[i64::MAX], 0).unwrap();
        let r = rows(&db, "SELECT SUM(a) FROM t");
        match r.rows[0][0] {
            Datum::Float(v) => {
                assert!(v > 1.8e19, "widened, not wrapped: {v}");
            }
            other => panic!("expected widened float, got {other:?}"),
        }
        // Groups widen independently; an in-range group stays integer.
        let t2 = db.add_table("t2", Schema::new(vec!["g", "a"]));
        db.table_mut(t2).insert(&[1, i64::MAX], 0).unwrap();
        db.table_mut(t2).insert(&[1, i64::MAX], 0).unwrap();
        db.table_mut(t2).insert(&[2, 7], 0).unwrap();
        let r = rows(&db, "SELECT g, SUM(a) FROM t2 GROUP BY g");
        assert!(matches!(r.rows[0][1], Datum::Float(_)));
        assert_eq!(r.rows[1][1], Datum::Int(7));
    }

    #[test]
    fn explain_returns_plan_text() {
        match run(
            &shop(),
            "EXPLAIN SELECT COUNT(*) FROM orders WHERE amount > 10",
        )
        .unwrap()
        {
            QueryOutcome::Plan(p) => {
                assert!(p.contains("Aggregate"), "{p}");
                assert!(p.contains("Scan orders"), "{p}");
                assert!(p.contains("orders.amount > 10"), "{p}");
                assert!(p.contains("selection masks"), "{p}");
                assert!(p.contains("plan=full-scan"), "{p}");
            }
            QueryOutcome::Rows(_) => panic!("expected plan"),
        }
    }

    #[test]
    fn explain_surfaces_tiered_access_paths() {
        let mut db = shop();
        let orders = db.table_id("orders").unwrap();
        db.table_mut(orders).freeze_upto(1024); // no-op: < 1 block
        let mut big = Database::new();
        let t = big.add_table("t", Schema::single("a"));
        big.table_mut(t)
            .insert_batch(&(0..2048).collect::<Vec<i64>>(), 0)
            .unwrap();
        big.table_mut(t).freeze_upto(2048);
        match run(&big, "EXPLAIN SELECT COUNT(*) FROM t WHERE a > 10").unwrap() {
            QueryOutcome::Plan(p) => {
                assert!(p.contains("plan=tiered-scan"), "{p}");
            }
            QueryOutcome::Rows(_) => panic!("expected plan"),
        }
    }

    #[test]
    fn render_produces_aligned_table() {
        let r = rows(&shop(), "SELECT amount FROM orders ORDER BY amount LIMIT 2");
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].trim(), "orders.amount");
        assert!(lines[2].trim().ends_with('5'));
        assert!(lines[3].trim().ends_with("50"));
    }

    #[test]
    fn forgetting_between_queries_changes_answers() {
        let mut db = shop();
        let before = rows(&db, "SELECT COUNT(*) FROM orders");
        assert_eq!(before.rows[0][0], Datum::Int(4));
        let orders = db.table_id("orders").unwrap();
        db.table_mut(orders).forget(RowId(0), 2).unwrap();
        let after = rows(&db, "SELECT COUNT(*) FROM orders");
        assert_eq!(after.rows[0][0], Datum::Int(3), "the DBMS has amnesia");
    }

    #[test]
    fn frozen_tables_execute_in_compressed_space() {
        // A multi-predicate GROUP BY over a fully-frozen table must not
        // decode a single block — the acceptance pin for the physical
        // plan redesign.
        let mut db = Database::new();
        let t = db.add_table("t", Schema::new(vec!["g", "a", "b"]));
        for i in 0..4096i64 {
            db.table_mut(t)
                .insert(&[i % 8, i % 100, i % 17], 0)
                .unwrap();
        }
        for r in (0..4096u64).step_by(7) {
            db.table_mut(t).forget(RowId(r), 1).unwrap();
        }
        let q = "SELECT g, COUNT(*) AS n, SUM(a) AS s FROM t \
                 WHERE a BETWEEN 10 AND 80 AND b > 3 GROUP BY g ORDER BY s DESC";
        let hot = rows(&db, q);
        db.table_mut(t).freeze_upto(4096);
        assert!(db.table(db.table_id("t").unwrap()).has_frozen());
        let before = amnesia_columnar::compress::block_decodes();
        let frozen = rows(&db, q);
        assert_eq!(
            amnesia_columnar::compress::block_decodes(),
            before,
            "zero block decodes for the frozen grouped query"
        );
        assert_eq!(frozen.rows, hot.rows, "freezing never changes answers");
        assert_eq!(frozen.stats.plan, PlanTag::TieredScan);
    }

    #[test]
    fn sql_errors_carry_spans_end_to_end() {
        let err = run(&shop(), "SELECT nope FROM orders").unwrap_err();
        assert!(err.message.contains("unknown column"));
        assert!(err.span.start >= 7);
    }
}
