//! Execution of bound queries over amnesiac tables.
//!
//! The pipeline mirrors the EXPLAIN tree: per-slot active-only scans with
//! pushed-down filters, an optional hash join, then either row projection
//! or (grouped) aggregation, and finally sort + limit. Forgotten tuples
//! never appear — the defining property of the amnesiac store (§1: "data
//! is forgotten and will never show up in query results").

use std::collections::HashMap;
use std::fmt;

use amnesia_columnar::{RowId, Table, Value};

use crate::ast::{AggFunc, SortOrder, Statement};
use crate::error::{Span, SqlError, SqlResult};
use crate::parser::parse;
use crate::plan::{bind, BoundColumn, BoundFilter, BoundItem, BoundQuery, Catalog};

/// One output value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Datum {
    /// Integer (columns, COUNT/SUM/MIN/MAX).
    Int(i64),
    /// Floating point (AVG).
    Float(f64),
    /// Aggregate over an empty selection.
    Null,
}

impl Datum {
    /// Numeric view for sorting; NULL sorts first.
    fn sort_key(&self) -> f64 {
        match self {
            Datum::Int(v) => *v as f64,
            Datum::Float(v) => *v,
            Datum::Null => f64::NEG_INFINITY,
        }
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value (ints widened), `None` for NULL.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(v) => Some(*v as f64),
            Datum::Float(v) => Some(*v),
            Datum::Null => None,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v:.4}"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

/// Cardinalities observed during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Rows scanned per slot (post-activity, pre-filter).
    pub rows_scanned: usize,
    /// Rows surviving the filters, summed over slots.
    pub rows_filtered: usize,
    /// Join pairs produced (0 without a join).
    pub join_pairs: usize,
    /// Groups produced (0 without grouping).
    pub groups: usize,
}

/// A query answer: column names, rows, stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Datum>>,
    /// Execution cardinalities.
    pub stats: QueryStats,
}

impl ResultSet {
    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Datum::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        for row in &cells {
            out.push('\n');
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{c:>w$}", w = widths[i]));
            }
        }
        out
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Rows from a SELECT.
    Rows(ResultSet),
    /// Plan text from an EXPLAIN.
    Plan(String),
}

/// Aggregate accumulator with integer-preserving finalization.
#[derive(Debug, Clone, Copy)]
struct AggAcc {
    count: u64,
    sum: i128,
    min: Value,
    max: Value,
}

impl AggAcc {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: Value::MAX,
            max: Value::MIN,
        }
    }

    fn push(&mut self, v: Value) {
        self.count += 1;
        self.sum += v as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// COUNT counts rows even with no input column.
    fn bump(&mut self) {
        self.count += 1;
    }

    fn finalize(&self, func: AggFunc) -> Datum {
        match func {
            AggFunc::Count => Datum::Int(self.count as i64),
            AggFunc::Sum if self.count > 0 => Datum::Int(self.sum as i64),
            AggFunc::Avg if self.count > 0 => Datum::Float(self.sum as f64 / self.count as f64),
            AggFunc::Min if self.count > 0 => Datum::Int(self.min),
            AggFunc::Max if self.count > 0 => Datum::Int(self.max),
            _ => Datum::Null,
        }
    }
}

/// Parse, bind and execute one statement against the catalog.
pub fn run(catalog: &dyn Catalog, sql: &str) -> SqlResult<QueryOutcome> {
    let stmt = parse(sql)?;
    match stmt {
        Statement::Select(s) => {
            let bound = bind(catalog, &s)?;
            Ok(QueryOutcome::Rows(execute(catalog, &bound)?))
        }
        Statement::Explain(s) => {
            let bound = bind(catalog, &s)?;
            Ok(QueryOutcome::Plan(bound.explain()))
        }
    }
}

/// A joined row: one row id per slot (single-table rows leave slot 1
/// unused).
type JoinedRow = [RowId; 2];

/// Execute a bound query.
pub fn execute(catalog: &dyn Catalog, q: &BoundQuery) -> SqlResult<ResultSet> {
    let mut stats = QueryStats::default();

    // Resolve slot tables (bind already proved they exist).
    let tables: Vec<&Table> = q
        .tables
        .iter()
        .map(|(name, _)| {
            catalog.resolve(name).ok_or_else(|| {
                SqlError::new(
                    format!("table `{name}` disappeared between bind and execute"),
                    Span::default(),
                )
            })
        })
        .collect::<SqlResult<_>>()?;

    // Per-slot scan with pushed-down filters.
    let scan = |slot: usize, stats: &mut QueryStats| -> Vec<RowId> {
        let table = tables[slot];
        let filters: Vec<&BoundFilter> = q
            .filters
            .iter()
            .filter(|f| f.column().slot == slot)
            .collect();
        let mut out = Vec::new();
        for r in table.iter_active() {
            stats.rows_scanned += 1;
            let pass = filters
                .iter()
                .all(|f| f.matches(table.value(f.column().col, r)));
            if pass {
                out.push(r);
            }
        }
        stats.rows_filtered += out.len();
        out
    };

    // Join or single-table row stream.
    let rows: Vec<JoinedRow> = match &q.join {
        Some((l, r)) => {
            let left_rows = scan(0, &mut stats);
            let right_rows = scan(1, &mut stats);
            let mut build: HashMap<Value, Vec<RowId>> = HashMap::new();
            for &lr in &left_rows {
                build
                    .entry(tables[0].value(l.col, lr))
                    .or_default()
                    .push(lr);
            }
            let mut rows = Vec::new();
            for &rr in &right_rows {
                if let Some(ls) = build.get(&tables[1].value(r.col, rr)) {
                    rows.extend(ls.iter().map(|&lr| [lr, rr]));
                }
            }
            stats.join_pairs = rows.len();
            rows
        }
        None => scan(0, &mut stats)
            .into_iter()
            .map(|r| [r, RowId(0)])
            .collect(),
    };

    let value_of = |c: &BoundColumn, row: &JoinedRow| tables[c.slot].value(c.col, row[c.slot]);

    // Projection or aggregation.
    let mut out_rows: Vec<Vec<Datum>> = if q.has_aggregates() || q.group_by.is_some() {
        // Group rows (a single implicit group without GROUP BY).
        let mut groups: Vec<(Option<Value>, Vec<AggAcc>)> = Vec::new();
        let mut index: HashMap<Option<Value>, usize> = HashMap::new();
        if q.group_by.is_none() {
            index.insert(None, 0);
            groups.push((None, vec![AggAcc::new(); q.items.len()]));
        }
        for row in &rows {
            let key = q.group_by.as_ref().map(|g| value_of(g, row));
            let slot = *index.entry(key).or_insert_with(|| {
                groups.push((key, vec![AggAcc::new(); q.items.len()]));
                groups.len() - 1
            });
            let accs = &mut groups[slot].1;
            for (i, item) in q.items.iter().enumerate() {
                match item {
                    BoundItem::Aggregate { arg: Some(c), .. } => {
                        accs[i].push(value_of(c, row));
                    }
                    BoundItem::Aggregate { arg: None, .. } => accs[i].bump(),
                    BoundItem::Column(_) => {}
                }
            }
        }
        stats.groups = groups.len();
        groups
            .into_iter()
            .map(|(key, accs)| {
                q.items
                    .iter()
                    .zip(accs)
                    .map(|(item, acc)| match item {
                        BoundItem::Column(_) => {
                            Datum::Int(key.expect("plain column implies a group key"))
                        }
                        BoundItem::Aggregate { func, .. } => acc.finalize(*func),
                    })
                    .collect()
            })
            .collect()
    } else {
        rows.iter()
            .map(|row| {
                q.items
                    .iter()
                    .map(|item| match item {
                        BoundItem::Column(c) => Datum::Int(value_of(c, row)),
                        BoundItem::Aggregate { .. } => unreachable!("checked above"),
                    })
                    .collect()
            })
            .collect()
    };

    // Sort + limit.
    if let Some((idx, order)) = q.order_by {
        out_rows.sort_by(|a, b| {
            let ka = a[idx].sort_key();
            let kb = b[idx].sort_key();
            let cmp = ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
            match order {
                SortOrder::Asc => cmp,
                SortOrder::Desc => cmp.reverse(),
            }
        });
    }
    if let Some(limit) = q.limit {
        out_rows.truncate(limit as usize);
    }

    Ok(ResultSet {
        columns: q.output_columns(),
        rows: out_rows,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::{Database, Schema};

    /// customers(id, region) and orders(customer_id, amount), with one
    /// customer and one order forgotten.
    fn shop() -> Database {
        let mut db = Database::new();
        let customers = db.add_table("customers", Schema::new(vec!["id", "region"]));
        let orders = db.add_table("orders", Schema::new(vec!["customer_id", "amount"]));
        for (id, region) in [(1i64, 10i64), (2, 10), (3, 20), (4, 30)] {
            db.table_mut(customers).insert(&[id, region], 0).unwrap();
        }
        for (cid, amount) in [(1i64, 100i64), (1, 50), (2, 75), (3, 10), (4, 5)] {
            db.table_mut(orders).insert(&[cid, amount], 0).unwrap();
        }
        // Forget customer 4 and the (3, 10) order.
        db.table_mut(customers).forget(RowId(3), 1).unwrap();
        db.table_mut(orders).forget(RowId(3), 1).unwrap();
        db
    }

    fn rows(db: &Database, sql: &str) -> ResultSet {
        match run(db, sql).unwrap() {
            QueryOutcome::Rows(r) => r,
            QueryOutcome::Plan(p) => panic!("unexpected plan: {p}"),
        }
    }

    #[test]
    fn select_star_skips_forgotten() {
        let r = rows(&shop(), "SELECT * FROM customers");
        assert_eq!(r.columns, vec!["customers.id", "customers.region"]);
        assert_eq!(r.rows.len(), 3, "customer 4 is forgotten");
        assert_eq!(r.stats.rows_scanned, 3);
    }

    #[test]
    fn where_filters_and_projects() {
        let r = rows(&shop(), "SELECT amount FROM orders WHERE amount >= 50");
        let mut vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        vals.sort();
        assert_eq!(vals, vec![50, 75, 100]);
    }

    #[test]
    fn between_is_inclusive() {
        let r = rows(
            &shop(),
            "SELECT amount FROM orders WHERE amount BETWEEN 50 AND 75",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn aggregates_without_group() {
        let r = rows(
            &shop(),
            "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM orders",
        );
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        // Active orders: 100, 50, 75, 5.
        assert_eq!(row[0], Datum::Int(4));
        assert_eq!(row[1], Datum::Int(230));
        assert_eq!(row[2], Datum::Float(57.5));
        assert_eq!(row[3], Datum::Int(5));
        assert_eq!(row[4], Datum::Int(100));
    }

    #[test]
    fn empty_selection_yields_nulls_but_count_zero() {
        let r = rows(
            &shop(),
            "SELECT COUNT(*), AVG(amount) FROM orders WHERE amount > 10000",
        );
        assert_eq!(r.rows[0][0], Datum::Int(0));
        assert_eq!(r.rows[0][1], Datum::Null);
    }

    #[test]
    fn group_by_with_order_and_limit() {
        let r = rows(
            &shop(),
            "SELECT region, COUNT(*) AS n FROM customers GROUP BY region ORDER BY n DESC LIMIT 1",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(10), "region 10 has two actives");
        assert_eq!(r.rows[0][1], Datum::Int(2));
        assert_eq!(r.stats.groups, 2, "regions 10 and 20 (30 is forgotten)");
    }

    #[test]
    fn join_respects_amnesia_on_both_sides() {
        let r = rows(
            &shop(),
            "SELECT c.id, o.amount FROM customers c JOIN orders o ON c.id = o.customer_id",
        );
        // customer 4 forgotten → its order drops; order (3,10) forgotten.
        assert_eq!(r.stats.join_pairs, 3);
        let mut pairs: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 50), (1, 100), (2, 75)]);
    }

    #[test]
    fn join_with_group_by_aggregates_per_key() {
        let r = rows(
            &shop(),
            "SELECT c.region, SUM(o.amount) AS total FROM customers c \
             JOIN orders o ON c.id = o.customer_id GROUP BY c.region \
             ORDER BY total DESC",
        );
        assert_eq!(r.rows.len(), 1, "only region 10 has active join pairs");
        assert_eq!(r.rows[0][0], Datum::Int(10));
        assert_eq!(r.rows[0][1], Datum::Int(225));
    }

    #[test]
    fn order_by_column_ascending() {
        let r = rows(&shop(), "SELECT amount FROM orders ORDER BY amount");
        let vals: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![5, 50, 75, 100]);
    }

    #[test]
    fn explain_returns_plan_text() {
        match run(
            &shop(),
            "EXPLAIN SELECT COUNT(*) FROM orders WHERE amount > 10",
        )
        .unwrap()
        {
            QueryOutcome::Plan(p) => {
                assert!(p.contains("Aggregate"), "{p}");
                assert!(p.contains("Scan orders"), "{p}");
                assert!(p.contains("orders.amount > 10"), "{p}");
            }
            QueryOutcome::Rows(_) => panic!("expected plan"),
        }
    }

    #[test]
    fn render_produces_aligned_table() {
        let r = rows(&shop(), "SELECT amount FROM orders ORDER BY amount LIMIT 2");
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].trim(), "orders.amount");
        assert!(lines[2].trim().ends_with('5'));
        assert!(lines[3].trim().ends_with("50"));
    }

    #[test]
    fn forgetting_between_queries_changes_answers() {
        let mut db = shop();
        let before = rows(&db, "SELECT COUNT(*) FROM orders");
        assert_eq!(before.rows[0][0], Datum::Int(4));
        let orders = db.table_id("orders").unwrap();
        db.table_mut(orders).forget(RowId(0), 2).unwrap();
        let after = rows(&db, "SELECT COUNT(*) FROM orders");
        assert_eq!(after.rows[0][0], Datum::Int(3), "the DBMS has amnesia");
    }

    #[test]
    fn sql_errors_carry_spans_end_to_end() {
        let err = run(&shop(), "SELECT nope FROM orders").unwrap_err();
        assert!(err.message.contains("unknown column"));
        assert!(err.span.start >= 7);
    }
}
