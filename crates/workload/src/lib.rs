//! Query and update workloads for the amnesia simulator.
//!
//! Paper §2.2 carves out "a well understood subspace" of SELECT-PROJECT-
//! JOIN: range queries over one table controlled by a selectivity factor
//! `S`, and simple aggregations (AVG) over sub-ranges. §4.2 pins the range
//! generator used for Figure 3: pick a candidate value `v` from all
//! *active* tuples and query
//! `attr >= v − 0.01·RANGE AND attr < v + 0.01·RANGE`,
//! with `RANGE` the maximum value seen up to the latest update batch.
//!
//! The crate exposes:
//! * [`query::Query`] — the query algebra (range / point / aggregate),
//! * [`generator`] — the paper's generators plus recency-biased and mixed
//!   workloads, all buildable from the serializable
//!   [`generator::QueryGenKind`],
//! * [`update::UpdateGenerator`] — insert batches drawn from a
//!   [`amnesia_distrib::DataDistribution`],
//! * [`spec`] — multi-phase workload descriptions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod query;
pub mod spec;
pub mod update;

pub use generator::{QueryGenKind, QueryGenerator, TableSnapshot};
pub use query::{AggKind, Query, RangePredicate};
pub use spec::{WorkloadPhase, WorkloadSpec};
pub use update::UpdateGenerator;
