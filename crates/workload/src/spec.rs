//! Multi-phase workload specifications.
//!
//! Experiments beyond the paper's single-phase loops (e.g. "query the
//! fresh data for 10 batches, then switch to whole-history analytics")
//! are described as a sequence of phases. Each phase fixes a query
//! generator and a number of batches; the simulator runs them in order.

use serde::{Deserialize, Serialize};

use crate::generator::QueryGenKind;

/// One homogeneous stretch of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Number of update batches in this phase.
    pub batches: u64,
    /// Queries fired per batch (the paper uses 1000).
    pub queries_per_batch: usize,
    /// Query generator recipe for this phase.
    pub query_gen: QueryGenKind,
}

impl WorkloadPhase {
    /// Phase with the paper's defaults (1000 range queries per batch).
    pub fn paper_default(batches: u64) -> Self {
        Self {
            batches,
            queries_per_batch: 1000,
            query_gen: QueryGenKind::paper_range(),
        }
    }
}

/// An ordered list of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Phases, run in order.
    pub phases: Vec<WorkloadPhase>,
}

impl WorkloadSpec {
    /// Single-phase spec.
    pub fn single(phase: WorkloadPhase) -> Self {
        Self {
            phases: vec![phase],
        }
    }

    /// Total number of batches across phases.
    pub fn total_batches(&self) -> u64 {
        self.phases.iter().map(|p| p.batches).sum()
    }

    /// Which phase batch `b` (0-based, global) falls into.
    pub fn phase_of_batch(&self, b: u64) -> Option<&WorkloadPhase> {
        let mut seen = 0;
        for p in &self.phases {
            seen += p.batches;
            if b < seen {
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_lookup() {
        let spec = WorkloadSpec {
            phases: vec![
                WorkloadPhase::paper_default(3),
                WorkloadPhase {
                    batches: 2,
                    queries_per_batch: 10,
                    query_gen: QueryGenKind::Point,
                },
            ],
        };
        assert_eq!(spec.total_batches(), 5);
        assert_eq!(spec.phase_of_batch(0).unwrap().queries_per_batch, 1000);
        assert_eq!(spec.phase_of_batch(2).unwrap().queries_per_batch, 1000);
        assert_eq!(spec.phase_of_batch(3).unwrap().queries_per_batch, 10);
        assert_eq!(spec.phase_of_batch(4).unwrap().queries_per_batch, 10);
        assert!(spec.phase_of_batch(5).is_none());
    }

    #[test]
    fn single_spec() {
        let spec = WorkloadSpec::single(WorkloadPhase::paper_default(10));
        assert_eq!(spec.total_batches(), 10);
        assert_eq!(spec.phases.len(), 1);
    }
}
