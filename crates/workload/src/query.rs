//! The query algebra: range scans, point lookups and aggregates.

use serde::{Deserialize, Serialize};

/// Attribute values (mirrors `amnesia_columnar::Value` without the
/// dependency).
pub type Value = i64;

/// Half-open value interval `[lo, hi)` — exactly the paper's
/// `attr >= lo AND attr < hi` predicate shape (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangePredicate {
    /// Inclusive lower bound.
    pub lo: Value,
    /// Exclusive upper bound.
    pub hi: Value,
}

impl RangePredicate {
    /// New predicate; normalizes an inverted range to empty.
    pub fn new(lo: Value, hi: Value) -> Self {
        if hi < lo {
            Self { lo, hi: lo }
        } else {
            Self { lo, hi }
        }
    }

    /// Does `v` satisfy the predicate?
    #[inline]
    pub fn matches(&self, v: Value) -> bool {
        v >= self.lo && v < self.hi
    }

    /// True when no value can match.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Width of the interval.
    pub fn width(&self) -> i64 {
        (self.hi - self.lo).max(0)
    }

    /// Inclusive upper bound (for index probes): `hi − 1`.
    pub fn hi_inclusive(&self) -> Value {
        self.hi.saturating_sub(1)
    }
}

/// Aggregate functions (paper §2.2, §4.3 focus on AVG; the rest complete
/// the usual analytics set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    /// COUNT(*) over the selection.
    Count,
    /// SUM(attr).
    Sum,
    /// AVG(attr) — the paper's §4.3 experiment.
    Avg,
    /// MIN(attr).
    Min,
    /// MAX(attr).
    Max,
}

impl AggKind {
    /// All aggregate kinds, for sweeps.
    pub const ALL: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// One query against the single-attribute table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Return all tuples in the range.
    Range(RangePredicate),
    /// Return all tuples equal to the value.
    Point(Value),
    /// Aggregate over the (optionally restricted) table.
    Aggregate {
        /// Aggregate function.
        kind: AggKind,
        /// Optional range restriction (`None` = whole table, the paper's
        /// `SELECT AVG(a) FROM t`).
        predicate: Option<RangePredicate>,
    },
}

impl Query {
    /// The range this query touches, if it has one.
    pub fn predicate(&self) -> Option<RangePredicate> {
        match self {
            Query::Range(p) => Some(*p),
            Query::Point(v) => Some(RangePredicate::new(*v, v.saturating_add(1))),
            Query::Aggregate { predicate, .. } => *predicate,
        }
    }

    /// Short description for traces.
    pub fn describe(&self) -> String {
        match self {
            Query::Range(p) => format!("range[{}, {})", p.lo, p.hi),
            Query::Point(v) => format!("point[{v}]"),
            Query::Aggregate { kind, predicate } => match predicate {
                Some(p) => format!("{}[{}, {})", kind.name(), p.lo, p.hi),
                None => format!("{}[*]", kind.name()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_matching_is_half_open() {
        let p = RangePredicate::new(10, 20);
        assert!(p.matches(10));
        assert!(p.matches(19));
        assert!(!p.matches(20));
        assert!(!p.matches(9));
        assert_eq!(p.width(), 10);
        assert_eq!(p.hi_inclusive(), 19);
    }

    #[test]
    fn inverted_range_is_empty() {
        let p = RangePredicate::new(20, 10);
        assert!(p.is_empty());
        assert_eq!(p.width(), 0);
        assert!(!p.matches(15));
    }

    #[test]
    fn point_query_exposes_unit_predicate() {
        let q = Query::Point(7);
        let p = q.predicate().unwrap();
        assert!(p.matches(7));
        assert!(!p.matches(8));
        assert_eq!(p.width(), 1);
    }

    #[test]
    fn aggregate_without_predicate() {
        let q = Query::Aggregate {
            kind: AggKind::Avg,
            predicate: None,
        };
        assert_eq!(q.predicate(), None);
        assert_eq!(q.describe(), "avg[*]");
    }

    #[test]
    fn describe_formats() {
        assert_eq!(
            Query::Range(RangePredicate::new(1, 5)).describe(),
            "range[1, 5)"
        );
        assert_eq!(Query::Point(3).describe(), "point[3]");
        let q = Query::Aggregate {
            kind: AggKind::Sum,
            predicate: Some(RangePredicate::new(0, 9)),
        };
        assert_eq!(q.describe(), "sum[0, 9)");
    }

    #[test]
    fn agg_names_are_stable() {
        let names: Vec<&str> = AggKind::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["count", "sum", "avg", "min", "max"]);
    }
}
