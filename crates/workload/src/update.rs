//! Insert-batch generation.
//!
//! The paper's environment is query-dominant: "a batch of queries is
//! followed by a batch of updates, immediately followed by applying an
//! amnesia algorithm" (§2.3). Updates are inserts of fresh tuples; the
//! batch size is `upd_perc × DBSIZE` (Figures 1–3 use 0.20 and 0.80).

use amnesia_distrib::{DataDistribution, DistributionKind};
use amnesia_util::SimRng;

use crate::query::Value;

/// Draws insert batches from a data distribution.
pub struct UpdateGenerator {
    dist: Box<dyn DataDistribution>,
}

impl UpdateGenerator {
    /// Wrap a live distribution.
    pub fn new(dist: Box<dyn DataDistribution>) -> Self {
        Self { dist }
    }

    /// Build from a recipe.
    pub fn from_kind(kind: &DistributionKind, domain: i64, seed: u64) -> Self {
        Self::new(kind.build(domain, seed))
    }

    /// The wrapped distribution's name.
    pub fn distribution_name(&self) -> &'static str {
        self.dist.name()
    }

    /// Inform the distribution that a new update batch begins (drifting
    /// distributions move here).
    pub fn on_epoch(&mut self, epoch: u64) {
        self.dist.on_epoch(epoch);
    }

    /// Generate one insert batch of `n` values.
    pub fn batch(&mut self, n: usize, rng: &mut SimRng) -> Vec<Value> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.dist.sample(rng));
        }
        out
    }
}

/// Batch size for an update fraction: `round(upd_perc × dbsize)`, at
/// least 1 when the fraction is positive.
pub fn batch_size(dbsize: usize, upd_perc: f64) -> usize {
    if upd_perc <= 0.0 {
        return 0;
    }
    ((dbsize as f64 * upd_perc).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_requested_size() {
        let mut g = UpdateGenerator::from_kind(&DistributionKind::Uniform, 100, 1);
        let mut rng = SimRng::new(40);
        assert_eq!(g.batch(0, &mut rng).len(), 0);
        assert_eq!(g.batch(17, &mut rng).len(), 17);
        assert_eq!(g.distribution_name(), "uniform");
    }

    #[test]
    fn serial_batches_continue_across_calls() {
        let mut g = UpdateGenerator::from_kind(&DistributionKind::Serial, 100, 1);
        let mut rng = SimRng::new(41);
        let b1 = g.batch(5, &mut rng);
        let b2 = g.batch(5, &mut rng);
        assert_eq!(b1, vec![0, 1, 2, 3, 4]);
        assert_eq!(b2, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn batch_size_math() {
        assert_eq!(batch_size(1000, 0.20), 200);
        assert_eq!(batch_size(1000, 0.80), 800);
        assert_eq!(batch_size(1000, 0.0), 0);
        assert_eq!(batch_size(1000, -1.0), 0);
        assert_eq!(batch_size(3, 0.001), 1, "positive fraction floors at 1");
    }

    #[test]
    fn drift_advances_through_on_epoch() {
        let kind = DistributionKind::Drift {
            base: Box::new(DistributionKind::Uniform),
            shift_per_epoch: 1000,
        };
        let mut g = UpdateGenerator::from_kind(&kind, 10, 1);
        let mut rng = SimRng::new(42);
        let before = g.batch(10, &mut rng);
        assert!(before.iter().all(|&v| v <= 10));
        g.on_epoch(2);
        let after = g.batch(10, &mut rng);
        assert!(after.iter().all(|&v| (2000..=2010).contains(&v)));
    }
}
