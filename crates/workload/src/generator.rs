//! Query generators.
//!
//! Generators see the table only through [`TableSnapshot`], which exposes
//! exactly what the paper's generator needs: the maximum value ever seen
//! (`RANGE`) and a way to draw a random *active* value (`v`). The core
//! crate implements the trait for its simulator table.

use amnesia_util::SimRng;
use serde::{Deserialize, Serialize};

use crate::query::{AggKind, Query, RangePredicate, Value};

/// The generator's view of the database.
pub trait TableSnapshot {
    /// Maximum value seen since the table was created — the `RANGE` bound
    /// of paper §4.2 (it covers forgotten tuples too).
    fn max_value_seen(&self) -> Option<Value>;

    /// A uniformly random value among the *active* tuples.
    fn random_active_value(&self, rng: &mut SimRng) -> Option<Value>;

    /// Number of active tuples.
    fn active_count(&self) -> usize;
}

/// Something that produces queries against a snapshot.
pub trait QueryGenerator: Send {
    /// Produce the next query.
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query;

    /// Stable name for reports.
    fn name(&self) -> &'static str;
}

/// Serializable recipe for a [`QueryGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryGenKind {
    /// The paper's Figure-3 generator: `v` drawn from active tuples,
    /// predicate `[v − f·RANGE, v + f·RANGE)` with `f = half_width_frac`
    /// (paper value: 0.01).
    ActiveValueRange {
        /// Half-width as a fraction of `RANGE`.
        half_width_frac: f64,
    },
    /// Start-uniform range with a fixed selectivity factor `S` (§2.2):
    /// width = `S·RANGE`, start uniform over the domain seen so far.
    UniformRange {
        /// Selectivity factor in `[0, 1]`.
        selectivity: f64,
    },
    /// Range focused on the most recent part of the value space: start
    /// uniform over the top `recency_frac` of `[0, RANGE]`. Models "the
    /// user is mostly interested in the recently inserted data" for
    /// serial-ish distributions.
    RecentRange {
        /// Selectivity factor for the width.
        selectivity: f64,
        /// Fraction of the top of the value space queries focus on.
        recency_frac: f64,
    },
    /// Point query on a random active value.
    Point,
    /// Aggregate with an optional range restriction produced by an inner
    /// range-generator recipe.
    Aggregate {
        /// Aggregate function.
        kind: AggKind,
        /// `None` = whole-table aggregate (`SELECT AVG(a) FROM t`).
        over: Option<Box<QueryGenKind>>,
    },
    /// Weighted mixture of generators.
    Mixed(
        /// `(weight, recipe)` pairs; weights need not sum to 1.
        Vec<(f64, QueryGenKind)>,
    ),
}

impl QueryGenKind {
    /// The paper's Figure-3 default (±1 % of RANGE around an active value).
    pub fn paper_range() -> Self {
        QueryGenKind::ActiveValueRange {
            half_width_frac: 0.01,
        }
    }

    /// The paper's §4.3 whole-table average.
    pub fn paper_avg() -> Self {
        QueryGenKind::Aggregate {
            kind: AggKind::Avg,
            over: None,
        }
    }

    /// The paper's §4.3 average over a sub-range.
    pub fn paper_avg_over_range() -> Self {
        QueryGenKind::Aggregate {
            kind: AggKind::Avg,
            over: Some(Box::new(Self::paper_range())),
        }
    }

    /// Build the live generator.
    pub fn build(&self) -> Box<dyn QueryGenerator> {
        match self {
            QueryGenKind::ActiveValueRange { half_width_frac } => {
                Box::new(ActiveValueRangeGen::new(*half_width_frac))
            }
            QueryGenKind::UniformRange { selectivity } => {
                Box::new(UniformRangeGen::new(*selectivity))
            }
            QueryGenKind::RecentRange {
                selectivity,
                recency_frac,
            } => Box::new(RecentRangeGen::new(*selectivity, *recency_frac)),
            QueryGenKind::Point => Box::new(PointGen),
            QueryGenKind::Aggregate { kind, over } => {
                Box::new(AggregateGen::new(*kind, over.as_ref().map(|g| g.build())))
            }
            QueryGenKind::Mixed(parts) => Box::new(MixedGen::new(
                parts
                    .iter()
                    .map(|(w, k)| (*w, k.build()))
                    .collect::<Vec<_>>(),
            )),
        }
    }
}

/// Paper §4.2 generator: `v` from active tuples, `±half_width_frac·RANGE`.
#[derive(Debug, Clone)]
pub struct ActiveValueRangeGen {
    half_width_frac: f64,
}

impl ActiveValueRangeGen {
    /// New generator; `half_width_frac` must be positive.
    pub fn new(half_width_frac: f64) -> Self {
        assert!(half_width_frac > 0.0, "half width must be positive");
        Self { half_width_frac }
    }
}

impl QueryGenerator for ActiveValueRangeGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let range = snapshot.max_value_seen().unwrap_or(0);
        let half = ((self.half_width_frac * range as f64).round() as i64).max(1);
        let v = snapshot
            .random_active_value(rng)
            .unwrap_or_else(|| rng.range_i64(0, range.max(1)));
        Query::Range(RangePredicate::new(
            v.saturating_sub(half),
            v.saturating_add(half),
        ))
    }

    fn name(&self) -> &'static str {
        "active-value-range"
    }
}

/// Start-uniform range with fixed selectivity.
#[derive(Debug, Clone)]
pub struct UniformRangeGen {
    selectivity: f64,
}

impl UniformRangeGen {
    /// New generator; selectivity is clamped to `[0, 1]`.
    pub fn new(selectivity: f64) -> Self {
        Self {
            selectivity: selectivity.clamp(0.0, 1.0),
        }
    }
}

impl QueryGenerator for UniformRangeGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let range = snapshot.max_value_seen().unwrap_or(0).max(1);
        let width = ((self.selectivity * range as f64).round() as i64).max(1);
        let max_start = (range - width).max(0);
        let lo = if max_start == 0 {
            0
        } else {
            rng.range_i64(0, max_start + 1)
        };
        Query::Range(RangePredicate::new(lo, lo.saturating_add(width)))
    }

    fn name(&self) -> &'static str {
        "uniform-range"
    }
}

/// Range over the top of the value space (freshness-focused).
#[derive(Debug, Clone)]
pub struct RecentRangeGen {
    selectivity: f64,
    recency_frac: f64,
}

impl RecentRangeGen {
    /// New generator; both fractions are clamped to `[0, 1]`.
    pub fn new(selectivity: f64, recency_frac: f64) -> Self {
        Self {
            selectivity: selectivity.clamp(0.0, 1.0),
            recency_frac: recency_frac.clamp(0.0, 1.0).max(1e-9),
        }
    }
}

impl QueryGenerator for RecentRangeGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let range = snapshot.max_value_seen().unwrap_or(0).max(1);
        let width = ((self.selectivity * range as f64).round() as i64).max(1);
        let window = ((self.recency_frac * range as f64).round() as i64).max(1);
        let floor = (range - window).max(0);
        let max_start = (range - width).max(floor);
        let lo = if max_start <= floor {
            floor
        } else {
            rng.range_i64(floor, max_start + 1)
        };
        Query::Range(RangePredicate::new(lo, lo.saturating_add(width)))
    }

    fn name(&self) -> &'static str {
        "recent-range"
    }
}

/// Point lookup on a random active value.
#[derive(Debug, Clone)]
pub struct PointGen;

impl QueryGenerator for PointGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let v = snapshot.random_active_value(rng).unwrap_or(0);
        Query::Point(v)
    }

    fn name(&self) -> &'static str {
        "point"
    }
}

/// Aggregate over all data or over ranges from an inner generator.
pub struct AggregateGen {
    kind: AggKind,
    over: Option<Box<dyn QueryGenerator>>,
}

impl AggregateGen {
    /// New aggregate generator.
    pub fn new(kind: AggKind, over: Option<Box<dyn QueryGenerator>>) -> Self {
        Self { kind, over }
    }
}

impl QueryGenerator for AggregateGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let predicate = self
            .over
            .as_mut()
            .and_then(|g| g.next_query(snapshot, rng).predicate());
        Query::Aggregate {
            kind: self.kind,
            predicate,
        }
    }

    fn name(&self) -> &'static str {
        "aggregate"
    }
}

/// Weighted mixture of generators.
pub struct MixedGen {
    parts: Vec<(f64, Box<dyn QueryGenerator>)>,
    total_weight: f64,
}

impl MixedGen {
    /// New mixture; panics if empty or all weights are non-positive.
    pub fn new(parts: Vec<(f64, Box<dyn QueryGenerator>)>) -> Self {
        assert!(!parts.is_empty(), "mixture needs components");
        let total_weight: f64 = parts.iter().map(|(w, _)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "mixture needs positive weight");
        Self {
            parts,
            total_weight,
        }
    }
}

impl QueryGenerator for MixedGen {
    fn next_query(&mut self, snapshot: &dyn TableSnapshot, rng: &mut SimRng) -> Query {
        let mut pick = rng.f64() * self.total_weight;
        for (w, g) in &mut self.parts {
            pick -= w.max(0.0);
            if pick <= 0.0 {
                return g.next_query(snapshot, rng);
            }
        }
        let last = self.parts.len() - 1;
        self.parts[last].1.next_query(snapshot, rng)
    }

    fn name(&self) -> &'static str {
        "mixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed snapshot for generator tests.
    struct FakeSnapshot {
        max: Value,
        actives: Vec<Value>,
    }

    impl TableSnapshot for FakeSnapshot {
        fn max_value_seen(&self) -> Option<Value> {
            (self.max >= 0).then_some(self.max)
        }
        fn random_active_value(&self, rng: &mut SimRng) -> Option<Value> {
            if self.actives.is_empty() {
                None
            } else {
                Some(self.actives[rng.index(self.actives.len())])
            }
        }
        fn active_count(&self) -> usize {
            self.actives.len()
        }
    }

    #[test]
    fn active_value_range_centers_on_active_value() {
        let snap = FakeSnapshot {
            max: 10_000,
            actives: vec![5000],
        };
        let mut g = ActiveValueRangeGen::new(0.01);
        let mut rng = SimRng::new(30);
        match g.next_query(&snap, &mut rng) {
            Query::Range(p) => {
                assert_eq!(p.lo, 4900);
                assert_eq!(p.hi, 5100);
            }
            q => panic!("expected range, got {q:?}"),
        }
    }

    #[test]
    fn active_value_range_width_tracks_range_growth() {
        let mut g = ActiveValueRangeGen::new(0.01);
        let mut rng = SimRng::new(31);
        let small = FakeSnapshot {
            max: 100,
            actives: vec![50],
        };
        let big = FakeSnapshot {
            max: 100_000,
            actives: vec![50_000],
        };
        let w_small = match g.next_query(&small, &mut rng) {
            Query::Range(p) => p.width(),
            _ => unreachable!(),
        };
        let w_big = match g.next_query(&big, &mut rng) {
            Query::Range(p) => p.width(),
            _ => unreachable!(),
        };
        assert!(w_big > w_small * 100, "width scales with RANGE");
    }

    #[test]
    fn uniform_range_has_requested_selectivity() {
        let snap = FakeSnapshot {
            max: 10_000,
            actives: vec![1],
        };
        let mut g = UniformRangeGen::new(0.1);
        let mut rng = SimRng::new(32);
        for _ in 0..100 {
            match g.next_query(&snap, &mut rng) {
                Query::Range(p) => {
                    assert_eq!(p.width(), 1000);
                    assert!(p.lo >= 0 && p.hi <= 10_001);
                }
                q => panic!("expected range, got {q:?}"),
            }
        }
    }

    #[test]
    fn full_selectivity_covers_everything() {
        let snap = FakeSnapshot {
            max: 500,
            actives: vec![1],
        };
        let mut g = UniformRangeGen::new(1.0);
        let mut rng = SimRng::new(33);
        match g.next_query(&snap, &mut rng) {
            Query::Range(p) => {
                assert_eq!(p.lo, 0);
                assert_eq!(p.width(), 500);
            }
            q => panic!("expected range, got {q:?}"),
        }
    }

    #[test]
    fn recent_range_stays_in_top_window() {
        let snap = FakeSnapshot {
            max: 10_000,
            actives: vec![1],
        };
        let mut g = RecentRangeGen::new(0.01, 0.2);
        let mut rng = SimRng::new(34);
        for _ in 0..200 {
            match g.next_query(&snap, &mut rng) {
                Query::Range(p) => {
                    assert!(p.lo >= 8000, "lo {} outside recent window", p.lo);
                }
                q => panic!("expected range, got {q:?}"),
            }
        }
    }

    #[test]
    fn point_gen_uses_active_values() {
        let snap = FakeSnapshot {
            max: 100,
            actives: vec![42, 43],
        };
        let mut g = PointGen;
        let mut rng = SimRng::new(35);
        for _ in 0..20 {
            match g.next_query(&snap, &mut rng) {
                Query::Point(v) => assert!(v == 42 || v == 43),
                q => panic!("expected point, got {q:?}"),
            }
        }
    }

    #[test]
    fn aggregate_gen_with_and_without_predicate() {
        let snap = FakeSnapshot {
            max: 1000,
            actives: vec![500],
        };
        let mut rng = SimRng::new(36);
        let mut plain = QueryGenKind::paper_avg().build();
        match plain.next_query(&snap, &mut rng) {
            Query::Aggregate { kind, predicate } => {
                assert_eq!(kind, AggKind::Avg);
                assert!(predicate.is_none());
            }
            q => panic!("expected aggregate, got {q:?}"),
        }
        let mut ranged = QueryGenKind::paper_avg_over_range().build();
        match ranged.next_query(&snap, &mut rng) {
            Query::Aggregate { predicate, .. } => assert!(predicate.is_some()),
            q => panic!("expected aggregate, got {q:?}"),
        }
    }

    #[test]
    fn mixed_gen_respects_weights() {
        let snap = FakeSnapshot {
            max: 1000,
            actives: vec![500],
        };
        let mut rng = SimRng::new(37);
        let kind = QueryGenKind::Mixed(vec![
            (0.8, QueryGenKind::Point),
            (0.2, QueryGenKind::paper_avg()),
        ]);
        let mut g = kind.build();
        let mut points = 0;
        let n = 5000;
        for _ in 0..n {
            if matches!(g.next_query(&snap, &mut rng), Query::Point(_)) {
                points += 1;
            }
        }
        let frac = points as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.03, "point fraction {frac}");
    }

    #[test]
    fn empty_table_still_produces_queries() {
        let snap = FakeSnapshot {
            max: -1,
            actives: vec![],
        };
        let mut rng = SimRng::new(38);
        let mut g = QueryGenKind::paper_range().build();
        // Must not panic even with nothing active and nothing seen.
        let q = g.next_query(&snap, &mut rng);
        assert!(matches!(q, Query::Range(_)));
    }
}
