//! Weighted mixture of two distributions (extension, paper §4.4).

use amnesia_util::SimRng;

use crate::DataDistribution;

/// Draws from `first` with probability `weight`, otherwise from `second`.
///
/// Useful to model bimodal sensor data or a hot-key workload layered on a
/// uniform background.
pub struct MixtureDistribution {
    first: Box<dyn DataDistribution>,
    second: Box<dyn DataDistribution>,
    weight: f64,
}

impl MixtureDistribution {
    /// Mixture with `P(first) = weight` (clamped to `[0,1]`).
    pub fn new(
        first: Box<dyn DataDistribution>,
        second: Box<dyn DataDistribution>,
        weight: f64,
    ) -> Self {
        Self {
            first,
            second,
            weight: weight.clamp(0.0, 1.0),
        }
    }
}

impl DataDistribution for MixtureDistribution {
    fn sample(&mut self, rng: &mut SimRng) -> i64 {
        if rng.chance(self.weight) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }

    fn domain(&self) -> i64 {
        self.first.domain().max(self.second.domain())
    }

    fn name(&self) -> &'static str {
        "mixture"
    }

    fn on_epoch(&mut self, epoch: u64) {
        self.first.on_epoch(epoch);
        self.second.on_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NormalDistribution, UniformDistribution};

    #[test]
    fn respects_weight() {
        // First component can only produce values <= 10, second >= 0..=1000
        // normal centred at 500; use the value range to tell them apart.
        let first = Box::new(UniformDistribution::new(10));
        let second = Box::new(NormalDistribution::new(1000, 0.05));
        let mut mix = MixtureDistribution::new(first, second, 0.3);
        let mut rng = SimRng::new(13);
        let n = 50_000;
        let small = (0..n).filter(|_| mix.sample(&mut rng) <= 10).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "first-component fraction {frac}");
    }

    #[test]
    fn weight_is_clamped() {
        let first = Box::new(UniformDistribution::new(1));
        let second = Box::new(UniformDistribution::new(1));
        let mix = MixtureDistribution::new(first, second, 7.0);
        assert_eq!(mix.weight, 1.0);
    }
}
