//! Zipfian (skewed) value stream.

use amnesia_util::rng::hash64;
use amnesia_util::SimRng;

use crate::DataDistribution;

/// Zipfian distribution over the domain values, "to model a more realistic
/// scenario, such as the Pareto principle (i.e., 80-20 rule) where some
/// (random) values are dominant" (paper §2.1).
///
/// Rank `k` (1-based) has probability `∝ 1 / k^theta`. Ranks are sampled
/// with the Gray et al. quick-zipf method popularized by YCSB, then mapped
/// to domain values through a pseudo-random permutation (a seeded Feistel-
/// style hash) so the popular values land at *random* positions of the
/// domain rather than clustering at 0.
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    domain: i64,
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble_seed: u64,
}

/// Generalized harmonic number `H_{n,theta}`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfDistribution {
    /// Zipf over `0..=domain` with exponent `theta` (0 < theta < 1 for the
    /// YCSB construction; theta → 0 approaches uniform). `seed` drives the
    /// rank-to-value scrambling.
    pub fn new(domain: i64, theta: f64, seed: u64) -> Self {
        assert!(domain >= 0, "domain must be non-negative");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let n = domain as u64 + 1;
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            domain,
            n,
            theta,
            alpha,
            zetan,
            eta,
            scramble_seed: seed,
        }
    }

    /// Sample a 0-based *rank* (0 = most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Map a rank to a domain value via a seeded pseudo-random permutation.
    fn rank_to_value(&self, rank: u64) -> i64 {
        // Cycle-walking over a hash keeps the mapping bijective enough for
        // our purposes: we only need "popular ranks land on well-spread
        // values", not a true permutation, so a single mix-and-mod is fine.
        (hash64(rank ^ self.scramble_seed) % self.n) as i64
    }
}

impl DataDistribution for ZipfDistribution {
    fn sample(&mut self, rng: &mut SimRng) -> i64 {
        let rank = self.sample_rank(rng);
        self.rank_to_value(rank)
    }

    fn domain(&self) -> i64 {
        self.domain
    }

    fn name(&self) -> &'static str {
        "zipfian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_power_law() {
        let d = ZipfDistribution::new(9999, 0.99, 7);
        let mut rng = SimRng::new(10);
        let n = 200_000;
        let mut rank0 = 0usize;
        let mut rank1 = 0usize;
        for _ in 0..n {
            match d.sample_rank(&mut rng) {
                0 => rank0 += 1,
                1 => rank1 += 1,
                _ => {}
            }
        }
        // p(rank0)/p(rank1) = 2^theta ≈ 1.99 for theta = 0.99.
        let ratio = rank0 as f64 / rank1 as f64;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
        // Head heaviness: rank 0 alone should hold a noticeable share.
        let share = rank0 as f64 / n as f64;
        assert!(share > 0.05, "head share {share}");
    }

    #[test]
    fn values_within_domain_and_spread() {
        let mut d = ZipfDistribution::new(999, 0.99, 3);
        let mut rng = SimRng::new(11);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let v = d.sample(&mut rng);
            assert!((0..=999).contains(&v));
            *counts.entry(v).or_insert(0usize) += 1;
        }
        // The most frequent value should NOT be 0: ranks are scrambled.
        let (&top, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(top, 0, "scrambling should move the head");
    }

    #[test]
    fn different_seeds_move_the_head() {
        let mut rng = SimRng::new(12);
        let mut d1 = ZipfDistribution::new(9999, 0.9, 1);
        let mut d2 = ZipfDistribution::new(9999, 0.9, 2);
        let head1 = {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..20_000 {
                *counts.entry(d1.sample(&mut rng)).or_insert(0usize) += 1;
            }
            *counts.iter().max_by_key(|(_, &c)| c).unwrap().0
        };
        let head2 = {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..20_000 {
                *counts.entry(d2.sample(&mut rng)).or_insert(0usize) += 1;
            }
            *counts.iter().max_by_key(|(_, &c)| c).unwrap().0
        };
        assert_ne!(head1, head2);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_out_of_range_rejected() {
        ZipfDistribution::new(100, 1.5, 0);
    }
}
