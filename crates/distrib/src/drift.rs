//! Concept drift: a base distribution whose output shifts every epoch.
//!
//! Paper §4.4: "the data distribution evolves as more and more tuples are
//! ingested (and forgotten). This means that the data distribution might
//! change." The drifting generator lets the ablation experiments exercise
//! exactly that.

use amnesia_util::SimRng;

use crate::DataDistribution;

/// Adds `shift_per_epoch × epoch` to every sample of a base distribution,
/// clamping to a non-negative value. The effective domain grows with time,
/// like a sliding sensor calibration.
pub struct DriftingDistribution {
    base: Box<dyn DataDistribution>,
    shift_per_epoch: i64,
    current_shift: i64,
}

impl DriftingDistribution {
    /// Wrap `base`, shifting by `shift_per_epoch` per update batch.
    pub fn new(base: Box<dyn DataDistribution>, shift_per_epoch: i64) -> Self {
        Self {
            base,
            shift_per_epoch,
            current_shift: 0,
        }
    }

    /// Current additive shift.
    pub fn current_shift(&self) -> i64 {
        self.current_shift
    }
}

impl DataDistribution for DriftingDistribution {
    fn sample(&mut self, rng: &mut SimRng) -> i64 {
        (self.base.sample(rng) + self.current_shift).max(0)
    }

    fn domain(&self) -> i64 {
        self.base.domain() + self.current_shift
    }

    fn name(&self) -> &'static str {
        "drift"
    }

    fn on_epoch(&mut self, epoch: u64) {
        self.current_shift = self.shift_per_epoch.saturating_mul(epoch as i64);
        self.base.on_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformDistribution;

    #[test]
    fn shifts_with_epochs() {
        let base = Box::new(UniformDistribution::new(10));
        let mut d = DriftingDistribution::new(base, 100);
        let mut rng = SimRng::new(14);

        for _ in 0..100 {
            assert!((0..=10).contains(&d.sample(&mut rng)));
        }
        d.on_epoch(3);
        assert_eq!(d.current_shift(), 300);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((300..=310).contains(&v), "shifted value {v}");
        }
        assert_eq!(d.domain(), 310);
    }

    #[test]
    fn epoch_is_absolute_not_cumulative() {
        let base = Box::new(UniformDistribution::new(0));
        let mut d = DriftingDistribution::new(base, 5);
        d.on_epoch(2);
        d.on_epoch(2);
        assert_eq!(d.current_shift(), 10, "same epoch twice must not double");
    }

    #[test]
    fn negative_shift_clamps_at_zero() {
        let base = Box::new(UniformDistribution::new(1));
        let mut d = DriftingDistribution::new(base, -100);
        let mut rng = SimRng::new(15);
        d.on_epoch(5);
        for _ in 0..50 {
            assert!(d.sample(&mut rng) >= 0);
        }
    }
}
