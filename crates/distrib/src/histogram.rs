//! Equi-width histograms and distribution distances.
//!
//! The distribution-aligned amnesia policy (paper §4.4: "we attempt to
//! forget tuples that do not change the data distribution for all active
//! records") needs to compare the value distribution of the *active* set
//! against the distribution of *everything ever ingested*. Histograms with
//! total-variation / χ² / Kolmogorov–Smirnov distances provide that.

use serde::{Deserialize, Serialize};

/// Fixed-range equi-width histogram over `[lo, hi]` with `bins` buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// New histogram over the inclusive value range `[lo, hi]`.
    ///
    /// Panics if `lo > hi` or `bins == 0`.
    pub fn new(lo: i64, hi: i64, bins: usize) -> Self {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Bin index for a value (values outside the range clamp to the edges).
    pub fn bin_of(&self, v: i64) -> usize {
        let v = v.clamp(self.lo, self.hi);
        let width = (self.hi - self.lo + 1) as f64 / self.counts.len() as f64;
        (((v - self.lo) as f64 / width) as usize).min(self.counts.len() - 1)
    }

    /// Record one observation.
    pub fn add(&mut self, v: i64) {
        let b = self.bin_of(v);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// The inclusive value range `[lo, hi]` this histogram covers.
    pub fn range(&self) -> (i64, i64) {
        (self.lo, self.hi)
    }

    /// Width of one bin in value space.
    fn bin_width(&self) -> f64 {
        (self.hi - self.lo + 1) as f64 / self.counts.len() as f64
    }

    /// Spread `mass` observations uniformly over the inclusive value
    /// range `[lo, hi]`, split across the overlapped bins proportionally
    /// to overlap width (largest-remainder rounding, so the histogram
    /// total grows by exactly `mass`). This is the pseudo-histogram
    /// primitive for block-level statistics: a frozen block's cached
    /// `BlockMeta` gives min/max and an active count but no per-value
    /// detail, so its mass is modelled as uniform over `[min, max]`.
    /// Ranges outside the histogram domain clamp to the edge bins.
    pub fn add_mass(&mut self, lo: i64, hi: i64, mass: u64) {
        if mass == 0 || lo > hi {
            return;
        }
        let lo_c = lo.clamp(self.lo, self.hi);
        let hi_c = hi.clamp(self.lo, self.hi);
        let (b0, b1) = (self.bin_of(lo_c), self.bin_of(hi_c));
        self.total += mass;
        if b0 == b1 {
            self.counts[b0] += mass;
            return;
        }
        let span = (hi_c - lo_c) as f64 + 1.0;
        let width = self.bin_width();
        let mut shares: Vec<(usize, f64)> = Vec::with_capacity(b1 - b0 + 1);
        let mut assigned = 0u64;
        for (b, share) in (b0..=b1).map(|b| {
            let bin_lo = self.lo as f64 + b as f64 * width;
            let ov = ((bin_lo + width).min(hi_c as f64 + 1.0) - bin_lo.max(lo_c as f64)).max(0.0);
            (b, mass as f64 * ov / span)
        }) {
            let whole = share.floor() as u64;
            self.counts[b] += whole;
            assigned += whole;
            shares.push((b, share - share.floor()));
        }
        // Largest remainders soak up the rounding shortfall.
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(b, _) in shares.iter().take((mass.saturating_sub(assigned)) as usize) {
            self.counts[b] += 1;
        }
    }

    /// Estimated number of observations falling in the inclusive value
    /// range `[lo, hi]`, assuming mass is uniform *within* each bin
    /// (partial bins contribute their overlap fraction). The selectivity
    /// estimator reads predicates through this.
    pub fn estimate_range(&self, lo: i64, hi: i64) -> f64 {
        if lo > hi || self.total == 0 {
            return 0.0;
        }
        let lo_c = lo.max(self.lo);
        let hi_c = hi.min(self.hi);
        if lo_c > hi_c {
            return 0.0;
        }
        let width = self.bin_width();
        let (b0, b1) = (self.bin_of(lo_c), self.bin_of(hi_c));
        let mut est = 0.0;
        for b in b0..=b1 {
            let bin_lo = self.lo as f64 + b as f64 * width;
            let ov = ((bin_lo + width).min(hi_c as f64 + 1.0) - bin_lo.max(lo_c as f64)).max(0.0);
            est += self.counts[b] as f64 * ov / width;
        }
        est
    }

    /// Remove one observation previously added (saturating at zero).
    pub fn remove(&mut self, v: i64) {
        let b = self.bin_of(v);
        if self.counts[b] > 0 {
            self.counts[b] -= 1;
            self.total -= 1;
        }
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count in a specific bin.
    pub fn count_in_bin(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Normalized bucket probabilities (all zero if empty).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram range mismatch");
        assert_eq!(self.hi, other.hi, "histogram range mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total-variation distance `½ Σ |p_i − q_i|` in `[0, 1]`.
    pub fn total_variation(&self, other: &Histogram) -> f64 {
        let p = self.probabilities();
        let q = other.probabilities();
        assert_eq!(p.len(), q.len(), "bin count mismatch");
        0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>()
    }

    /// Pearson χ² statistic of `self` against expected frequencies from
    /// `other` (bins where `other` is empty are skipped).
    pub fn chi_squared(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let mut stat = 0.0;
        for (&o, &e_count) in self.counts.iter().zip(&other.counts) {
            if e_count == 0 {
                continue;
            }
            let expected = e_count as f64 / other.total as f64 * self.total as f64;
            let diff = o as f64 - expected;
            stat += diff * diff / expected;
        }
        stat
    }

    /// Kolmogorov–Smirnov statistic: max CDF gap, in `[0, 1]`.
    pub fn ks_statistic(&self, other: &Histogram) -> f64 {
        let p = self.probabilities();
        let q = other.probabilities();
        assert_eq!(p.len(), q.len(), "bin count mismatch");
        let mut cp = 0.0;
        let mut cq = 0.0;
        let mut max_gap: f64 = 0.0;
        for (a, b) in p.iter().zip(&q) {
            cp += a;
            cq += b;
            max_gap = max_gap.max((cp - cq).abs());
        }
        max_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[i64]) -> Histogram {
        let mut h = Histogram::new(0, 99, 10);
        for &v in values {
            h.add(v);
        }
        h
    }

    #[test]
    fn bin_assignment_covers_range() {
        let h = Histogram::new(0, 99, 10);
        assert_eq!(h.bin_of(0), 0);
        assert_eq!(h.bin_of(9), 0);
        assert_eq!(h.bin_of(10), 1);
        assert_eq!(h.bin_of(99), 9);
        // Clamped:
        assert_eq!(h.bin_of(-5), 0);
        assert_eq!(h.bin_of(1000), 9);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut h = Histogram::new(0, 99, 10);
        h.add(42);
        h.add(42);
        assert_eq!(h.total(), 2);
        h.remove(42);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count_in_bin(4), 1);
        // Removing from an empty bin saturates.
        h.remove(99);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = filled(&[1, 11, 21, 31, 41, 51, 61, 71, 81, 91]);
        let b = filled(&[2, 12, 22, 32, 42, 52, 62, 72, 82, 92]);
        assert!(a.total_variation(&b) < 1e-12);
        assert!(a.ks_statistic(&b) < 1e-12);
        assert!(a.chi_squared(&b) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_max_tv() {
        let a = filled(&[1, 2, 3, 4]); // all in bin 0
        let b = filled(&[95, 96, 97, 98]); // all in bin 9
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
        assert!((a.ks_statistic(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_is_symmetric_and_bounded() {
        let a = filled(&[1, 15, 30, 77]);
        let b = filled(&[5, 5, 5, 88, 99]);
        let d1 = a.total_variation(&b);
        let d2 = b.total_variation(&a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = filled(&[1, 2, 3]);
        let b = filled(&[95, 96]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count_in_bin(0), 3);
        assert_eq!(a.count_in_bin(9), 2);
    }

    #[test]
    fn empty_histograms_are_benign() {
        let a = Histogram::new(0, 9, 5);
        let b = Histogram::new(0, 9, 5);
        assert_eq!(a.total_variation(&b), 0.0);
        assert_eq!(a.chi_squared(&b), 0.0);
        assert_eq!(a.probabilities(), vec![0.0; 5]);
    }

    #[test]
    fn add_mass_conserves_total_and_spreads() {
        let mut h = Histogram::new(0, 99, 10);
        h.add_mass(0, 99, 1000);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.counts().iter().sum::<u64>(), 1000);
        // Uniform over the whole domain: every bin gets 100.
        assert!(h.counts().iter().all(|&c| c == 100), "{:?}", h.counts());
        // A single-point range lands in one bin.
        let mut p = Histogram::new(0, 99, 10);
        p.add_mass(42, 42, 7);
        assert_eq!(p.count_in_bin(4), 7);
        // Partial overlap splits proportionally: [5, 14] covers half of
        // bin 0 and half of bin 1.
        let mut q = Histogram::new(0, 99, 10);
        q.add_mass(5, 14, 10);
        assert_eq!(q.count_in_bin(0), 5);
        assert_eq!(q.count_in_bin(1), 5);
        // Out-of-domain ranges clamp to the edge bins.
        let mut e = Histogram::new(0, 99, 10);
        e.add_mass(-50, -10, 3);
        assert_eq!(e.count_in_bin(0), 3);
        e.add_mass(0, -1, 9); // empty range is a no-op
        assert_eq!(e.total(), 3);
    }

    #[test]
    fn estimate_range_interpolates_within_bins() {
        let mut h = Histogram::new(0, 99, 10);
        h.add_mass(0, 99, 1000);
        // Whole domain: everything.
        assert!((h.estimate_range(0, 99) - 1000.0).abs() < 1e-6);
        // Half of one bin.
        let est = h.estimate_range(0, 4);
        assert!((est - 50.0).abs() < 1.0, "got {est}");
        // Outside the domain: nothing.
        assert_eq!(h.estimate_range(200, 300), 0.0);
        assert_eq!(h.estimate_range(10, 5), 0.0);
        assert_eq!(Histogram::new(0, 9, 2).estimate_range(0, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn mismatched_bins_panic() {
        let a = Histogram::new(0, 9, 5);
        let b = Histogram::new(0, 9, 6);
        let _ = a.total_variation(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn total_matches_adds(values in proptest::collection::vec(-200i64..400, 0..300)) {
            let mut h = Histogram::new(0, 199, 16);
            for &v in &values {
                h.add(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        }

        #[test]
        fn tv_triangle_inequality(
            xs in proptest::collection::vec(0i64..100, 1..100),
            ys in proptest::collection::vec(0i64..100, 1..100),
            zs in proptest::collection::vec(0i64..100, 1..100),
        ) {
            let mk = |vals: &[i64]| {
                let mut h = Histogram::new(0, 99, 10);
                for &v in vals { h.add(v); }
                h
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let ab = a.total_variation(&b);
            let bc = b.total_variation(&c);
            let ac = a.total_variation(&c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
