//! Equi-width histograms and distribution distances.
//!
//! The distribution-aligned amnesia policy (paper §4.4: "we attempt to
//! forget tuples that do not change the data distribution for all active
//! records") needs to compare the value distribution of the *active* set
//! against the distribution of *everything ever ingested*. Histograms with
//! total-variation / χ² / Kolmogorov–Smirnov distances provide that.

use serde::{Deserialize, Serialize};

/// Fixed-range equi-width histogram over `[lo, hi]` with `bins` buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// New histogram over the inclusive value range `[lo, hi]`.
    ///
    /// Panics if `lo > hi` or `bins == 0`.
    pub fn new(lo: i64, hi: i64, bins: usize) -> Self {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Bin index for a value (values outside the range clamp to the edges).
    pub fn bin_of(&self, v: i64) -> usize {
        let v = v.clamp(self.lo, self.hi);
        let width = (self.hi - self.lo + 1) as f64 / self.counts.len() as f64;
        (((v - self.lo) as f64 / width) as usize).min(self.counts.len() - 1)
    }

    /// Record one observation.
    pub fn add(&mut self, v: i64) {
        let b = self.bin_of(v);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Remove one observation previously added (saturating at zero).
    pub fn remove(&mut self, v: i64) {
        let b = self.bin_of(v);
        if self.counts[b] > 0 {
            self.counts[b] -= 1;
            self.total -= 1;
        }
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count in a specific bin.
    pub fn count_in_bin(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Normalized bucket probabilities (all zero if empty).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram range mismatch");
        assert_eq!(self.hi, other.hi, "histogram range mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total-variation distance `½ Σ |p_i − q_i|` in `[0, 1]`.
    pub fn total_variation(&self, other: &Histogram) -> f64 {
        let p = self.probabilities();
        let q = other.probabilities();
        assert_eq!(p.len(), q.len(), "bin count mismatch");
        0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>()
    }

    /// Pearson χ² statistic of `self` against expected frequencies from
    /// `other` (bins where `other` is empty are skipped).
    pub fn chi_squared(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let mut stat = 0.0;
        for (&o, &e_count) in self.counts.iter().zip(&other.counts) {
            if e_count == 0 {
                continue;
            }
            let expected = e_count as f64 / other.total as f64 * self.total as f64;
            let diff = o as f64 - expected;
            stat += diff * diff / expected;
        }
        stat
    }

    /// Kolmogorov–Smirnov statistic: max CDF gap, in `[0, 1]`.
    pub fn ks_statistic(&self, other: &Histogram) -> f64 {
        let p = self.probabilities();
        let q = other.probabilities();
        assert_eq!(p.len(), q.len(), "bin count mismatch");
        let mut cp = 0.0;
        let mut cq = 0.0;
        let mut max_gap: f64 = 0.0;
        for (a, b) in p.iter().zip(&q) {
            cp += a;
            cq += b;
            max_gap = max_gap.max((cp - cq).abs());
        }
        max_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[i64]) -> Histogram {
        let mut h = Histogram::new(0, 99, 10);
        for &v in values {
            h.add(v);
        }
        h
    }

    #[test]
    fn bin_assignment_covers_range() {
        let h = Histogram::new(0, 99, 10);
        assert_eq!(h.bin_of(0), 0);
        assert_eq!(h.bin_of(9), 0);
        assert_eq!(h.bin_of(10), 1);
        assert_eq!(h.bin_of(99), 9);
        // Clamped:
        assert_eq!(h.bin_of(-5), 0);
        assert_eq!(h.bin_of(1000), 9);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut h = Histogram::new(0, 99, 10);
        h.add(42);
        h.add(42);
        assert_eq!(h.total(), 2);
        h.remove(42);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count_in_bin(4), 1);
        // Removing from an empty bin saturates.
        h.remove(99);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = filled(&[1, 11, 21, 31, 41, 51, 61, 71, 81, 91]);
        let b = filled(&[2, 12, 22, 32, 42, 52, 62, 72, 82, 92]);
        assert!(a.total_variation(&b) < 1e-12);
        assert!(a.ks_statistic(&b) < 1e-12);
        assert!(a.chi_squared(&b) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_max_tv() {
        let a = filled(&[1, 2, 3, 4]); // all in bin 0
        let b = filled(&[95, 96, 97, 98]); // all in bin 9
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
        assert!((a.ks_statistic(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_is_symmetric_and_bounded() {
        let a = filled(&[1, 15, 30, 77]);
        let b = filled(&[5, 5, 5, 88, 99]);
        let d1 = a.total_variation(&b);
        let d2 = b.total_variation(&a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = filled(&[1, 2, 3]);
        let b = filled(&[95, 96]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count_in_bin(0), 3);
        assert_eq!(a.count_in_bin(9), 2);
    }

    #[test]
    fn empty_histograms_are_benign() {
        let a = Histogram::new(0, 9, 5);
        let b = Histogram::new(0, 9, 5);
        assert_eq!(a.total_variation(&b), 0.0);
        assert_eq!(a.chi_squared(&b), 0.0);
        assert_eq!(a.probabilities(), vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn mismatched_bins_panic() {
        let a = Histogram::new(0, 9, 5);
        let b = Histogram::new(0, 9, 6);
        let _ = a.total_variation(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn total_matches_adds(values in proptest::collection::vec(-200i64..400, 0..300)) {
            let mut h = Histogram::new(0, 199, 16);
            for &v in &values {
                h.add(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        }

        #[test]
        fn tv_triangle_inequality(
            xs in proptest::collection::vec(0i64..100, 1..100),
            ys in proptest::collection::vec(0i64..100, 1..100),
            zs in proptest::collection::vec(0i64..100, 1..100),
        ) {
            let mk = |vals: &[i64]| {
                let mut h = Histogram::new(0, 99, 10);
                for &v in vals { h.add(v); }
                h
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let ab = a.total_variation(&b);
            let bc = b.total_variation(&c);
            let ac = a.total_variation(&c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
