//! Synthetic data distributions for the amnesia simulator.
//!
//! Paper §2.1 fixes four prototypical distributions of integer values in
//! `0..=DOMAIN`:
//!
//! * **serial** — an auto-increment key; models temporal insertion order,
//! * **uniform** — benchmark-style (TPC-H) uniform data,
//! * **normal** — centred on the domain mean with a σ of 20 % of the range,
//! * **skewed** — Zipfian, modelling the Pareto 80–20 rule where a few
//!   (random) values dominate.
//!
//! This crate implements all four behind the [`DataDistribution`] trait,
//! plus the extensions §4.4 gestures at: mixtures and drifting
//! distributions (the active data distribution "evolves as more and more
//! tuples are ingested"), and the [`histogram`] machinery used by the
//! distribution-aligned amnesia policy to compare the active set against
//! the full history.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distribution;
pub mod drift;
pub mod histogram;
pub mod mixture;
pub mod normal;
pub mod serial;
pub mod uniform;
pub mod zipf;

pub use distribution::{DataDistribution, DistributionKind};
pub use drift::DriftingDistribution;
pub use histogram::Histogram;
pub use mixture::MixtureDistribution;
pub use normal::NormalDistribution;
pub use serial::SerialDistribution;
pub use uniform::UniformDistribution;
pub use zipf::ZipfDistribution;
