//! Serial (auto-increment) value stream.

use amnesia_util::SimRng;

use crate::DataDistribution;

/// Auto-increment values: 0, 1, 2, …
///
/// Models both a surrogate key and the temporal order of insertions (paper
/// §2.1). Values keep growing past the configured domain — an
/// auto-increment column does not wrap — which is exactly what makes
/// query-based rot on serial data behave like FIFO (old keys fall out of
/// every fresh query range).
#[derive(Debug, Clone)]
pub struct SerialDistribution {
    next: i64,
    domain: i64,
}

impl SerialDistribution {
    /// Counter starting at zero.
    pub fn new(domain: i64) -> Self {
        Self { next: 0, domain }
    }

    /// Counter starting at a given value (useful for resuming streams).
    pub fn starting_at(domain: i64, start: i64) -> Self {
        Self {
            next: start,
            domain,
        }
    }
}

impl DataDistribution for SerialDistribution {
    fn sample(&mut self, _rng: &mut SimRng) -> i64 {
        let v = self.next;
        self.next += 1;
        v
    }

    fn domain(&self) -> i64 {
        self.domain
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_consecutive_values() {
        let mut d = SerialDistribution::new(100);
        let mut rng = SimRng::new(0);
        for expect in 0..500 {
            assert_eq!(d.sample(&mut rng), expect);
        }
    }

    #[test]
    fn starting_at_offsets() {
        let mut d = SerialDistribution::starting_at(100, 42);
        let mut rng = SimRng::new(0);
        assert_eq!(d.sample(&mut rng), 42);
        assert_eq!(d.sample(&mut rng), 43);
    }

    #[test]
    fn ignores_rng_state() {
        let mut d1 = SerialDistribution::new(10);
        let mut d2 = SerialDistribution::new(10);
        let mut r1 = SimRng::new(1);
        let mut r2 = SimRng::new(999);
        for _ in 0..50 {
            assert_eq!(d1.sample(&mut r1), d2.sample(&mut r2));
        }
    }
}
