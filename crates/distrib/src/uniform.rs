//! Uniform value stream.

use amnesia_util::SimRng;

use crate::DataDistribution;

/// Uniform over `0..=domain` — "data distributions mostly found in
/// benchmark tables such as TPC-H" (paper §2.1).
#[derive(Debug, Clone)]
pub struct UniformDistribution {
    domain: i64,
}

impl UniformDistribution {
    /// Uniform over `0..=domain`. Panics if `domain < 0`.
    pub fn new(domain: i64) -> Self {
        assert!(domain >= 0, "domain must be non-negative");
        Self { domain }
    }
}

impl DataDistribution for UniformDistribution {
    fn sample(&mut self, rng: &mut SimRng) -> i64 {
        rng.range_i64(0, self.domain + 1)
    }

    fn domain(&self) -> i64 {
        self.domain
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_domain_and_covers_it() {
        let mut d = UniformDistribution::new(9);
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((0..=9).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }

    #[test]
    fn mean_is_centered() {
        let mut d = UniformDistribution::new(1000);
        let mut rng = SimRng::new(6);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn degenerate_domain_zero() {
        let mut d = UniformDistribution::new(0);
        let mut rng = SimRng::new(7);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }
}
