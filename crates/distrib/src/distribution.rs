//! The [`DataDistribution`] trait and the serializable [`DistributionKind`]
//! configuration enum that builds concrete generators.

use amnesia_util::SimRng;
use serde::{Deserialize, Serialize};

use crate::{
    DriftingDistribution, MixtureDistribution, NormalDistribution, SerialDistribution,
    UniformDistribution, ZipfDistribution,
};

/// A stream of integer attribute values in `0..=domain`.
///
/// Generators are stateful (`serial` is a counter; `drift` moves between
/// epochs), so `sample` takes `&mut self`. Randomness always comes from the
/// caller-supplied [`SimRng`] to keep experiments deterministic.
pub trait DataDistribution: Send {
    /// Draw the next value.
    fn sample(&mut self, rng: &mut SimRng) -> i64;

    /// Inclusive upper bound of the value domain this generator was built
    /// for. `serial` may exceed it (an auto-increment key never stops).
    fn domain(&self) -> i64;

    /// Short stable name used in reports ("serial", "uniform", …).
    fn name(&self) -> &'static str;

    /// Hook invoked by the simulator when a new update batch begins.
    ///
    /// Stationary distributions ignore it; drifting ones move their mean.
    fn on_epoch(&mut self, _epoch: u64) {}
}

/// Serializable recipe for a [`DataDistribution`].
///
/// This is what experiment configs store; [`DistributionKind::build`]
/// produces the live generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistributionKind {
    /// Auto-increment key: 0, 1, 2, … (models temporal order, paper §2.1).
    Serial,
    /// Uniform over `0..=domain`.
    Uniform,
    /// Normal around `domain/2`; `sd_frac` is σ as a fraction of the domain
    /// (the paper uses 0.2). Samples are clamped to `0..=domain`.
    Normal {
        /// Standard deviation as a fraction of the domain width.
        sd_frac: f64,
    },
    /// Zipfian over the domain values with exponent `theta`; ranks are
    /// scrambled so the dominant values sit at random points of the domain
    /// (paper: "some (random) values are dominant").
    Zipfian {
        /// Skew exponent; 0 degenerates to uniform, typical value 0.99.
        theta: f64,
    },
    /// Two-component mixture: `weight` of the first component.
    Mixture {
        /// First component.
        first: Box<DistributionKind>,
        /// Second component.
        second: Box<DistributionKind>,
        /// Probability of sampling from `first`.
        weight: f64,
    },
    /// A base distribution whose values shift by `shift_per_epoch` every
    /// update batch (concept drift, §4.4).
    Drift {
        /// The underlying stationary recipe.
        base: Box<DistributionKind>,
        /// Added to every sample, multiplied by the epoch number.
        shift_per_epoch: i64,
    },
}

impl DistributionKind {
    /// The paper's default normal: σ = 20 % of the domain.
    pub fn normal_default() -> Self {
        DistributionKind::Normal { sd_frac: 0.2 }
    }

    /// The paper's default skewed distribution.
    pub fn zipfian_default() -> Self {
        DistributionKind::Zipfian { theta: 0.99 }
    }

    /// All four paper distributions, in the order Figure 2 lists them.
    pub fn paper_set() -> Vec<DistributionKind> {
        vec![
            DistributionKind::Serial,
            DistributionKind::Uniform,
            DistributionKind::normal_default(),
            DistributionKind::zipfian_default(),
        ]
    }

    /// Instantiate a generator over `0..=domain`.
    ///
    /// `seed` only matters for kinds that need internal precomputation with
    /// randomness (zipf rank scrambling).
    pub fn build(&self, domain: i64, seed: u64) -> Box<dyn DataDistribution> {
        match self {
            DistributionKind::Serial => Box::new(SerialDistribution::new(domain)),
            DistributionKind::Uniform => Box::new(UniformDistribution::new(domain)),
            DistributionKind::Normal { sd_frac } => {
                Box::new(NormalDistribution::new(domain, *sd_frac))
            }
            DistributionKind::Zipfian { theta } => {
                Box::new(ZipfDistribution::new(domain, *theta, seed))
            }
            DistributionKind::Mixture {
                first,
                second,
                weight,
            } => Box::new(MixtureDistribution::new(
                first.build(domain, seed),
                second.build(domain, seed ^ 0xA5A5_A5A5),
                *weight,
            )),
            DistributionKind::Drift {
                base,
                shift_per_epoch,
            } => Box::new(DriftingDistribution::new(
                base.build(domain, seed),
                *shift_per_epoch,
            )),
        }
    }

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DistributionKind::Serial => "serial",
            DistributionKind::Uniform => "uniform",
            DistributionKind::Normal { .. } => "normal",
            DistributionKind::Zipfian { .. } => "zipfian",
            DistributionKind::Mixture { .. } => "mixture",
            DistributionKind::Drift { .. } => "drift",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        let domain = 1000;
        for kind in DistributionKind::paper_set() {
            let dist = kind.build(domain, 1);
            assert_eq!(dist.name(), kind.name());
            assert_eq!(dist.domain(), domain);
        }
    }

    #[test]
    fn all_samples_within_domain() {
        let domain = 500;
        let mut rng = SimRng::new(11);
        for kind in DistributionKind::paper_set() {
            // serial exceeds the domain by design; skip the bound check.
            if kind == DistributionKind::Serial {
                continue;
            }
            let mut dist = kind.build(domain, 2);
            for _ in 0..5000 {
                let v = dist.sample(&mut rng);
                assert!(
                    (0..=domain).contains(&v),
                    "{} produced out-of-domain value {v}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn mixture_blends_components() {
        let kind = DistributionKind::Mixture {
            first: Box::new(DistributionKind::Uniform),
            second: Box::new(DistributionKind::Serial),
            weight: 0.5,
        };
        let mut dist = kind.build(100, 3);
        let mut rng = SimRng::new(4);
        // Just exercise: all values valid i64, no panic.
        for _ in 0..1000 {
            let _ = dist.sample(&mut rng);
        }
        assert_eq!(dist.name(), "mixture");
    }

    #[test]
    fn kind_serializes_roundtrip_via_debug() {
        // serde round-trip is covered in the workload crate's config tests;
        // here we only pin the names.
        assert_eq!(DistributionKind::Serial.name(), "serial");
        assert_eq!(DistributionKind::zipfian_default().name(), "zipfian");
    }
}
