//! Clamped normal value stream.

use amnesia_util::SimRng;

use crate::DataDistribution;

/// Normal distribution "around the DOMAIN range mean with a standard
/// deviation of 20 %" (paper §2.1). Samples outside `0..=domain` are
/// clamped to the boundary, which keeps the generator total while moving a
/// negligible 1.25 % of mass onto each edge at σ = 0.2·domain.
#[derive(Debug, Clone)]
pub struct NormalDistribution {
    domain: i64,
    mean: f64,
    sd: f64,
}

impl NormalDistribution {
    /// Normal centred at `domain/2` with σ = `sd_frac × domain`.
    pub fn new(domain: i64, sd_frac: f64) -> Self {
        assert!(domain >= 0, "domain must be non-negative");
        assert!(sd_frac > 0.0, "sd fraction must be positive");
        Self {
            domain,
            mean: domain as f64 / 2.0,
            sd: sd_frac * domain as f64,
        }
    }
}

impl DataDistribution for NormalDistribution {
    fn sample(&mut self, rng: &mut SimRng) -> i64 {
        let v = rng.normal(self.mean, self.sd).round() as i64;
        v.clamp(0, self.domain)
    }

    fn domain(&self) -> i64 {
        self.domain
    }

    fn name(&self) -> &'static str {
        "normal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_to_domain() {
        let mut d = NormalDistribution::new(100, 0.5); // wide: lots of clamping
        let mut rng = SimRng::new(8);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((0..=100).contains(&v));
        }
    }

    #[test]
    fn centre_heavy() {
        let mut d = NormalDistribution::new(1000, 0.2);
        let mut rng = SimRng::new(9);
        let n = 50_000;
        let mut centre = 0usize;
        let mut sum = 0i64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            sum += v;
            // within one sigma of the mean
            if (300..=700).contains(&v) {
                centre += 1;
            }
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
        let frac = centre as f64 / n as f64;
        // ~68 % within 1 sigma for a true normal.
        assert!((0.64..=0.72).contains(&frac), "centre fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "sd fraction")]
    fn zero_sd_rejected() {
        NormalDistribution::new(100, 0.0);
    }
}
