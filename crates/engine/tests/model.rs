//! Model-checked verification of the engine's concurrency surface.
//!
//! The morsel scheduler's claim/steal protocol runs entirely on Relaxed
//! atomics (see `morsel.rs` for the rationale comments); this suite is
//! the proof those comments cite: under every explored interleaving —
//! including steals racing the owner's own claims and stale re-check
//! reads — every morsel executes exactly once, no result is dropped,
//! and the output order is byte-identical to serial execution.
//!
//! Run with `cargo test -p amnesia-engine --features model --test model`.
//! Override exploration via `AMNESIA_MODEL_{ITERS,PREEMPTIONS,SEED,REPLAY}`.

use amnesia_engine::morsel::run_morsels;
use amnesia_sync::atomic::{AtomicUsize, Ordering};
use amnesia_sync::model::{explore, ModelConfig};

/// Exactly-once across steals: every morsel body runs once on some
/// worker, results land in morsel order, and the steal accounting adds
/// up. The per-morsel execution counters are shim atomics, so a
/// double-execute *or* a drop fails the in-body asserts on whichever
/// schedule produces it. Acceptance requires >=1000 distinct schedules.
#[test]
fn morsel_steal_is_exactly_once() {
    const N: usize = 4;
    const WORKERS: usize = 2;
    // Bound 4 (default 3): the steal loop's re-check/claim interleavings
    // need one extra preemption to expose their full schedule variety,
    // and acceptance wants >=1000 distinct schedules covered. Env
    // overrides (CI, replay) still win when set.
    let mut cfg = ModelConfig::from_env();
    if std::env::var("AMNESIA_MODEL_ITERS").is_err() {
        cfg = cfg.with_max_schedules(40_000);
    }
    if std::env::var("AMNESIA_MODEL_PREEMPTIONS").is_err() {
        cfg = cfg.with_preemption_bound(4);
    }
    let report = explore(cfg, || {
        let runs: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let (results, stats) = run_morsels(N, WORKERS, |i| {
            // Relaxed: the count is reconciled after the scope join
            // below; the join edge is the model-verified
            // happens-before, exactly as in the scheduler itself.
            runs[i].fetch_add(1, Ordering::Relaxed);
            i * 10
        });
        let expected: Vec<usize> = (0..N).map(|i| i * 10).collect();
        assert_eq!(results, expected, "morsel order must equal serial");
        assert_eq!(stats.morsels, N);
        for (i, c) in runs.iter().enumerate() {
            // Relaxed read: ordered by run_morsels' internal join.
            let count = c.load(Ordering::Relaxed);
            assert_eq!(count, 1, "morsel {i} ran {count} times, want 1");
        }
    });
    report.assert_clean();
    assert!(
        report.schedules >= 1000,
        "morsel proof must cover >=1000 schedules, got {}",
        report.schedules
    );
}

/// The single-worker fast path never spawns and is trivially serial —
/// one schedule, still exact.
#[test]
fn morsel_single_worker_is_serial() {
    let report = explore(ModelConfig::from_env(), || {
        let (results, stats) = run_morsels(4, 1, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3, 4]);
        assert_eq!(stats.morsels, 4);
        assert_eq!(stats.steals, 0);
    });
    report.assert_clean();
    assert_eq!(report.schedules, 1, "no spawn, no scheduling choice");
}
