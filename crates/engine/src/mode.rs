//! Forget-visibility modes.

use serde::{Deserialize, Serialize};

/// What query evaluation does with forgotten tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ForgetVisibility {
    /// Forgotten tuples never appear in results — the amnesia default
    /// ("data is forgotten and will never show up in query results",
    /// paper §5).
    #[default]
    ActiveOnly,
    /// The lighter option from §1: forgotten tuples are only dropped from
    /// *index* structures. A full scan still fetches them; only the fast
    /// index path skips them. Queries answered by scan are complete but
    /// slow; queries answered by index are fast but amnesiac.
    ScanSeesForgotten,
}

impl ForgetVisibility {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ForgetVisibility::ActiveOnly => "active-only",
            ForgetVisibility::ScanSeesForgotten => "scan-sees-forgotten",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_active_only() {
        assert_eq!(ForgetVisibility::default(), ForgetVisibility::ActiveOnly);
        assert_eq!(ForgetVisibility::ActiveOnly.name(), "active-only");
        assert_eq!(
            ForgetVisibility::ScanSeesForgotten.name(),
            "scan-sees-forgotten"
        );
    }
}
