//! Block-statistics cardinality estimation: the *estimate* step of the
//! cost-based planner's estimate → order → execute → feedback loop (the
//! diagram lives in [`crate::cost`]).
//!
//! The storage layer already pays for per-block statistics — every
//! [`FrozenBlock`](amnesia_columnar::FrozenBlock) caches a
//! [`BlockMeta`](amnesia_columnar::BlockMeta) (min/max over active rows
//! plus the active count) to drive zone-map pruning. This module reuses
//! those metas as a *pseudo-histogram*: each block contributes its
//! active mass spread across `[min, max]` of a shared
//! [`Histogram`] (the same bucket machinery
//! the workload generators are validated with), and the hot tail adds
//! its values directly (stride-sampled past a cap, mass-weighted so the
//! total still adds up). No extra per-row pass, no decode: the estimate
//! is free precisely because the tiering already summarized the data.
//!
//! On top of the histogram sit the two numbers the executor orders
//! conjuncts by:
//!
//! * **selectivity** — estimated fraction of active rows a
//!   [`ColPred`] keeps ([`ColumnStats::selectivity`]), and
//! * **evaluation cost** — the active-row-weighted blend of each
//!   block codec's [`CostModel::pred_eval_cost`]
//!   ([`ColumnStats::eval_cost`]): an RLE column is nearly free to
//!   filter, a delta column is not.
//!
//! [`order_predicates`] ranks a conjunction by `selectivity ×
//! eval_cost`, ascending (stable, so ties keep the query's syntactic
//! order), and [`q_error`] scores the estimates against actual
//! cardinalities after execution — the feedback half of the loop, which
//! the bench suite gates via `AMNESIA_QERROR_GATE`.

use amnesia_columnar::{Table, TieredColumn, Value};
use amnesia_distrib::Histogram;

use crate::cost::CostModel;
use crate::physical::ColPred;

/// Histogram resolution: enough buckets to separate selective from wide
/// predicates, few enough that building one is a handful of `add_mass`
/// calls per frozen block.
const HIST_BINS: usize = 64;

/// Hot-tail sampling cap: past this many hot values the builder strides,
/// weighting each sampled value by the stride so total mass is conserved.
const HOT_SAMPLE_CAP: usize = 65_536;

/// Per-column statistics assembled from cached block metadata: a
/// pseudo-histogram of the active value distribution plus the
/// codec-aware cost of evaluating one predicate against one row.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    hist: Option<Histogram>,
    total: f64,
    eval_cost: f64,
}

impl ColumnStats {
    /// Build statistics for one tiered column. Frozen blocks contribute
    /// `meta.active` mass spread over `[meta.min, meta.max]`; hot values
    /// are added individually (stride-sampled past `HOT_SAMPLE_CAP`).
    /// The per-row evaluation cost is the active-mass-weighted blend of
    /// [`CostModel::pred_eval_cost`] across the column's block codecs
    /// and its plain hot tail.
    pub fn from_tier(tier: &TieredColumn, model: &CostModel) -> Self {
        let hot = tier.hot_values();
        let mut lo = Value::MAX;
        let mut hi = Value::MIN;
        let mut frozen_active = 0usize;
        let mut cost_mass = 0.0f64;
        for b in 0..tier.frozen_blocks() {
            let meta = tier.meta(b);
            if meta.active == 0 {
                continue;
            }
            lo = lo.min(meta.min);
            hi = hi.max(meta.max);
            frozen_active += meta.active;
            let enc = tier.frozen(b).map(|f| f.encoded().encoding());
            cost_mass += meta.active as f64 * model.pred_eval_cost(enc);
        }
        for &v in hot {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        cost_mass += hot.len() as f64 * model.pred_eval_cost(None);
        let total = frozen_active as f64 + hot.len() as f64;
        if total == 0.0 {
            return Self {
                hist: None,
                total: 0.0,
                eval_cost: model.pred_eval_cost(None),
            };
        }
        let width = (hi - lo).unsigned_abs().saturating_add(1);
        let bins = HIST_BINS.min(width.min(HIST_BINS as u64) as usize).max(1);
        let mut hist = Histogram::new(lo, hi, bins);
        for b in 0..tier.frozen_blocks() {
            let meta = tier.meta(b);
            if meta.active > 0 {
                hist.add_mass(meta.min, meta.max, meta.active as u64);
            }
        }
        let stride = hot.len().div_ceil(HOT_SAMPLE_CAP).max(1);
        if stride == 1 {
            for &v in hot {
                hist.add(v);
            }
        } else {
            // Stride-sample, but conserve total mass: each sampled value
            // stands in for `stride` hot rows (the last sample may cover
            // a short remainder).
            let mut covered = 0usize;
            for v in hot.iter().step_by(stride) {
                let mass = stride.min(hot.len() - covered) as u64;
                hist.add_mass(*v, *v, mass);
                covered += mass as usize;
            }
        }
        Self {
            hist: Some(hist),
            total,
            eval_cost: cost_mass / total,
        }
    }

    /// Estimated active rows in the column (frozen active + hot tail).
    pub fn total_rows(&self) -> f64 {
        self.total
    }

    /// Blended per-row predicate evaluation cost in
    /// [`CostModel::row_scan`] units.
    pub fn eval_cost(&self) -> f64 {
        self.eval_cost
    }

    /// Estimated number of rows matching `p`, clamped to `[0, total]`.
    pub fn estimate_pred(&self, p: &ColPred) -> f64 {
        let Some(hist) = &self.hist else {
            return 0.0;
        };
        let mass = if p.is_empty_range() {
            0.0
        } else {
            hist.estimate_range(p.lo, p.hi)
        };
        let est = if p.negated { self.total - mass } else { mass };
        est.clamp(0.0, self.total)
    }

    /// Estimated fraction of active rows `p` keeps, in `[0, 1]`.
    pub fn selectivity(&self, p: &ColPred) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.estimate_pred(p) / self.total
    }

    /// The ordering key for conjunct ranking: estimated selectivity ×
    /// per-row evaluation cost. Low rank = run first (cheap predicates
    /// that kill many rows), high rank = run last over the sparse
    /// residual.
    pub fn rank(&self, p: &ColPred) -> f64 {
        self.selectivity(p) * self.eval_cost
    }
}

/// The costed ordering of one scan's predicate conjunction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredOrder {
    /// Execution order: indices into the syntactic predicate slice,
    /// cheapest-most-selective first. Stable — equal ranks keep the
    /// query's written order.
    pub order: Vec<usize>,
    /// Per-predicate estimated matching rows, indexed *syntactically*
    /// (parallel to the input slice, not to `order`).
    pub est_rows: Vec<f64>,
    /// Estimated rows surviving the whole conjunction, under the
    /// independence assumption (product of selectivities × active rows).
    pub est_out_rows: f64,
}

/// Rank a scan's predicate conjunction by estimated `selectivity ×
/// eval_cost` using per-column statistics built from cached block
/// metadata. Column statistics are built once per referenced column and
/// shared across that column's predicates.
pub fn order_predicates(table: &Table, preds: &[ColPred], model: &CostModel) -> PredOrder {
    if preds.is_empty() {
        return PredOrder::default();
    }
    let mut cols: Vec<(usize, ColumnStats)> = Vec::new();
    let stats_for = |col: usize, cols: &mut Vec<(usize, ColumnStats)>| -> usize {
        if let Some(i) = cols.iter().position(|(c, _)| *c == col) {
            return i;
        }
        cols.push((col, ColumnStats::from_tier(table.col_tier(col), model)));
        cols.len() - 1
    };
    let mut ranked: Vec<(usize, f64)> = Vec::with_capacity(preds.len());
    let mut est_rows = Vec::with_capacity(preds.len());
    let mut total = 0.0f64;
    let mut sel_product = 1.0f64;
    for (i, p) in preds.iter().enumerate() {
        let s = stats_for(p.col, &mut cols);
        let stats = &cols[s].1;
        total = total.max(stats.total_rows());
        ranked.push((i, stats.rank(p)));
        est_rows.push(stats.estimate_pred(p));
        sel_product *= stats.selectivity(p);
    }
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    PredOrder {
        order: ranked.into_iter().map(|(i, _)| i).collect(),
        est_rows,
        est_out_rows: total * sel_product,
    }
}

/// Estimated rows a filtered scan of `table` produces: active rows ×
/// the product of per-predicate selectivities (independence assumption).
/// No predicates estimates the full active count. This is what the join
/// planner compares to pick the build side.
pub fn estimate_scan_rows(table: &Table, preds: &[ColPred], model: &CostModel) -> f64 {
    if preds.is_empty() {
        return table.active_rows() as f64;
    }
    order_predicates(table, preds, model).est_out_rows
}

/// The symmetric q-error of an estimate: `max(est, act) / min(est, act)`
/// with both sides floored at one row, so a perfect estimate scores 1.0
/// and over- and under-estimation are penalized alike. The standard
/// cardinality-estimation quality metric, and the number
/// `AMNESIA_QERROR_GATE` bounds in the bench suite.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::compress::Encoding;
    use amnesia_columnar::Schema;

    fn frozen_table(values: &[Value], block_rows: usize, enc: Option<Encoding>) -> Table {
        let mut t = Table::with_block_rows(Schema::single("a"), block_rows);
        if enc.is_some() {
            t.pin_encoding(0, enc);
        }
        t.insert_batch(values, 0).unwrap();
        let frozen_rows = (values.len() / block_rows) * block_rows;
        t.freeze_upto(frozen_rows);
        t
    }

    #[test]
    fn uniform_column_estimates_are_tight() {
        // 0..8192 shuffled-ish uniform: every block spans most of the
        // domain, so the histogram sees overlapping wide blocks.
        let values: Vec<Value> = (0..8192)
            .map(|i| (i * 2654435761u64 % 8192) as Value)
            .collect();
        let t = frozen_table(&values, 1024, None);
        let stats = ColumnStats::from_tier(t.col_tier(0), &CostModel::default());
        assert_eq!(stats.total_rows(), 8192.0);
        // A ~25% range predicate.
        let p = ColPred::range(0, 0, 2047);
        let actual = values.iter().filter(|&&v| v <= 2047).count() as f64;
        assert!(
            q_error(stats.estimate_pred(&p), actual) < 2.0,
            "est {} vs actual {actual}",
            stats.estimate_pred(&p)
        );
    }

    #[test]
    fn sorted_column_estimates_are_nearly_exact() {
        let values: Vec<Value> = (0..4096).collect();
        let t = frozen_table(&values, 1024, None);
        let stats = ColumnStats::from_tier(t.col_tier(0), &CostModel::default());
        let p = ColPred::range(0, 100, 299);
        let est = stats.estimate_pred(&p);
        assert!(q_error(est, 200.0) < 1.5, "est {est} vs actual 200");
    }

    #[test]
    fn negated_predicate_complements_the_estimate() {
        let values: Vec<Value> = (0..4096).collect();
        let t = frozen_table(&values, 1024, None);
        let stats = ColumnStats::from_tier(t.col_tier(0), &CostModel::default());
        let inside = ColPred::range(0, 0, 1023);
        let mut outside = inside.clone();
        outside.negated = true;
        let sum = stats.estimate_pred(&inside) + stats.estimate_pred(&outside);
        assert!(
            (sum - 4096.0).abs() < 1.0,
            "complement masses sum to total, got {sum}"
        );
    }

    #[test]
    fn rle_column_ranks_cheaper_than_plain() {
        let runs: Vec<Value> = (0..4096).map(|i| i / 512).collect();
        let rle = frozen_table(&runs, 1024, Some(Encoding::Rle));
        let plain = frozen_table(&runs, 1024, Some(Encoding::Plain));
        let m = CostModel::default();
        let s_rle = ColumnStats::from_tier(rle.col_tier(0), &m);
        let s_plain = ColumnStats::from_tier(plain.col_tier(0), &m);
        assert!(s_rle.eval_cost() < s_plain.eval_cost());
        let p = ColPred::range(0, 0, 3);
        assert!(s_rle.rank(&p) < s_plain.rank(&p));
    }

    #[test]
    fn order_puts_selective_cheap_predicates_first() {
        // col 0: wide match (everything), col 1: selective match.
        let mut t = Table::with_block_rows(Schema::new(vec!["w", "s"]), 1024);
        for i in 0..4096i64 {
            t.insert(&[i % 100, i], 0).unwrap();
        }
        t.freeze_upto(4096);
        let preds = vec![ColPred::range(0, 0, 99), ColPred::range(1, 0, 40)];
        let po = order_predicates(&t, &preds, &CostModel::default());
        assert_eq!(po.order, vec![1, 0], "selective predicate runs first");
        assert!(po.est_rows[0] > po.est_rows[1]);
        assert!(po.est_out_rows <= po.est_rows[1] * 1.05);
    }

    #[test]
    fn empty_column_and_empty_preds_are_safe() {
        let t = Table::with_block_rows(Schema::single("a"), 1024);
        let stats = ColumnStats::from_tier(t.col_tier(0), &CostModel::default());
        assert_eq!(stats.total_rows(), 0.0);
        assert_eq!(stats.estimate_pred(&ColPred::range(0, 0, 10)), 0.0);
        let po = order_predicates(&t, &[], &CostModel::default());
        assert!(po.order.is_empty());
        assert_eq!(estimate_scan_rows(&t, &[], &CostModel::default()), 0.0);
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(200.0, 100.0), q_error(100.0, 200.0));
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(0.0, 50.0) >= 50.0);
    }
}
