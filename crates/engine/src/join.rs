//! Equi-join execution over amnesiac tables.
//!
//! The paper carves its workload out of "the unbounded space of
//! SELECT-PROJECT-JOIN queries" (§2.2) and flags joins as the place where
//! amnesia bites hardest: a forgotten tuple on *either* side removes all
//! its join partners from the result (§5's referential-integrity
//! discussion). The hash join here exposes both visibility regimes so the
//! JOIN-PREC experiment can compare the amnesiac answer with the
//! all-rows-ever ground truth kept by mark-only storage.

use std::collections::HashMap;

use amnesia_columnar::{RowId, Table, Value};

use crate::mode::ForgetVisibility;

/// Rows participating on one join side under a visibility mode: the
/// active count for the amnesiac answer, all physical rows for the
/// mark-only ground truth. Used to pre-size hash tables and outputs.
fn side_rows(table: &Table, visibility: ForgetVisibility) -> usize {
    match visibility {
        ForgetVisibility::ActiveOnly => table.active_rows(),
        ForgetVisibility::ScanSeesForgotten => table.num_rows(),
    }
}

/// Run `f(row)` over one join side: word-at-a-time over the activity
/// bitmap (via [`amnesia_util::Bitmap::iter_ones_in`]) for the amnesiac
/// answer, a straight slice walk for the mark-only ground truth.
#[inline]
fn for_each_side_row(table: &Table, visibility: ForgetVisibility, f: impl FnMut(usize)) {
    match visibility {
        ForgetVisibility::ActiveOnly => table
            .activity()
            .bitmap()
            .iter_ones_in(0, table.num_rows())
            .for_each(f),
        ForgetVisibility::ScanSeesForgotten => (0..table.num_rows()).for_each(f),
    }
}

/// Cardinalities observed while executing a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinStats {
    /// Rows hashed on the build side.
    pub build_rows: usize,
    /// Distinct keys in the build table.
    pub build_distinct_keys: usize,
    /// Rows streamed on the probe side.
    pub probe_rows: usize,
    /// Output pairs produced.
    pub output_pairs: usize,
}

/// A join answer: matching `(left row, right row)` pairs plus stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResult {
    /// Matching row pairs in probe order (right-major).
    pub pairs: Vec<(RowId, RowId)>,
    /// Execution cardinalities.
    pub stats: JoinStats,
}

/// Hash equi-join `left.left_col = right.right_col`.
///
/// Builds on the left input and probes with the right, so pairs come out
/// grouped by right row. `visibility` decides whether forgotten tuples
/// participate: [`ForgetVisibility::ActiveOnly`] is the amnesiac answer,
/// [`ForgetVisibility::ScanSeesForgotten`] the mark-only ground truth.
pub fn hash_join(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
    visibility: ForgetVisibility,
) -> JoinResult {
    let build_rows = side_rows(left, visibility);
    let probe_rows = side_rows(right, visibility);
    // Dense access: borrowed while fully hot, one decode pass when the
    // column holds frozen blocks (a hash join touches every row anyway).
    let left_vals = left.col_values_dense(left_col);
    let right_vals = right.col_values_dense(right_col);
    let left_vals = left_vals.as_ref();
    let right_vals = right_vals.as_ref();

    // Pre-size from the known build cardinality: one allocation instead
    // of O(log n) rehashes.
    let mut build: HashMap<Value, Vec<RowId>> = HashMap::with_capacity(build_rows);
    for_each_side_row(left, visibility, |r| {
        build.entry(left_vals[r]).or_default().push(RowId::from(r));
    });
    let build_distinct_keys = build.len();

    // Expected output: each probe row matches the average build-key
    // multiplicity (exact for foreign-key joins, an estimate otherwise).
    // Capped at the input cardinality so a skewed build side (one hot
    // key) cannot request a quadratic allocation up front — beyond the
    // cap, normal Vec growth takes over.
    let avg_multiplicity = build_rows.div_ceil(build_distinct_keys.max(1));
    let estimate = probe_rows
        .saturating_mul(avg_multiplicity)
        .min(probe_rows.max(build_rows));
    let mut pairs = Vec::with_capacity(estimate);
    for_each_side_row(right, visibility, |r| {
        if let Some(ls) = build.get(&right_vals[r]) {
            pairs.extend(ls.iter().map(|&l| (l, RowId::from(r))));
        }
    });

    let output_pairs = pairs.len();
    JoinResult {
        pairs,
        stats: JoinStats {
            build_rows,
            build_distinct_keys,
            probe_rows,
            output_pairs,
        },
    }
}

/// Number of matching pairs without materializing them.
pub fn hash_join_count(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
    visibility: ForgetVisibility,
) -> usize {
    // Count-only probe: hash build side key → multiplicity.
    let left_vals = left.col_values_dense(left_col);
    let right_vals = right.col_values_dense(right_col);
    let left_vals = left_vals.as_ref();
    let right_vals = right_vals.as_ref();
    let mut build: HashMap<Value, usize> = HashMap::with_capacity(side_rows(left, visibility));
    for_each_side_row(left, visibility, |r| {
        *build.entry(left_vals[r]).or_default() += 1;
    });
    let mut count = 0usize;
    for_each_side_row(right, visibility, |r| {
        if let Some(&m) = build.get(&right_vals[r]) {
            count += m;
        }
    });
    count
}

/// Join precision under amnesia: pairs surviving in the active join over
/// pairs in the all-rows ground truth (`RF/(RF+MF)` lifted to joins).
/// `None` when the ground-truth join is empty.
pub fn join_precision(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
) -> Option<f64> {
    let truth = hash_join_count(
        left,
        left_col,
        right,
        right_col,
        ForgetVisibility::ScanSeesForgotten,
    );
    if truth == 0 {
        return None;
    }
    let active = hash_join_count(
        left,
        left_col,
        right,
        right_col,
        ForgetVisibility::ActiveOnly,
    );
    Some(active as f64 / truth as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    /// parent(key), child(fk, payload).
    fn fixtures() -> (Table, Table) {
        let mut parent = Table::new(Schema::single("key"));
        for k in [1i64, 2, 3, 3] {
            parent.insert(&[k], 0).unwrap();
        }
        let mut child = Table::new(Schema::new(vec!["fk", "payload"]));
        for (fk, p) in [(1i64, 10i64), (1, 11), (3, 30), (4, 40)] {
            child.insert(&[fk, p], 0).unwrap();
        }
        (parent, child)
    }

    #[test]
    fn join_matches_expected_pairs() {
        let (parent, child) = fixtures();
        let r = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        // key 1 → child rows 0,1; key 3 appears twice in parent → child
        // row 2 pairs with both parent rows 2 and 3; key 4 dangles.
        assert_eq!(r.stats.output_pairs, 4);
        let mut pairs = r.pairs.clone();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (RowId(0), RowId(0)),
                (RowId(0), RowId(1)),
                (RowId(2), RowId(2)),
                (RowId(3), RowId(2)),
            ]
        );
        assert_eq!(r.stats.build_rows, 4);
        assert_eq!(r.stats.build_distinct_keys, 3);
        assert_eq!(r.stats.probe_rows, 4);
    }

    #[test]
    fn count_agrees_with_materialized_join() {
        let (parent, child) = fixtures();
        for vis in [
            ForgetVisibility::ActiveOnly,
            ForgetVisibility::ScanSeesForgotten,
        ] {
            let full = hash_join(&parent, 0, &child, 0, vis);
            let count = hash_join_count(&parent, 0, &child, 0, vis);
            assert_eq!(count, full.stats.output_pairs, "{vis:?}");
        }
    }

    #[test]
    fn forgetting_a_build_row_removes_its_pairs() {
        let (mut parent, child) = fixtures();
        parent.forget(RowId(0), 1).unwrap(); // key 1 forgotten
        let active = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(active.stats.output_pairs, 2, "only key-3 pairs remain");
        // Ground truth still sees everything.
        let truth = hash_join(&parent, 0, &child, 0, ForgetVisibility::ScanSeesForgotten);
        assert_eq!(truth.stats.output_pairs, 4);
    }

    #[test]
    fn forgetting_a_probe_row_removes_its_pairs() {
        let (parent, mut child) = fixtures();
        child.forget(RowId(2), 1).unwrap(); // fk=3 child forgotten
        let active = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(active.stats.output_pairs, 2, "key-1 pairs remain");
    }

    #[test]
    fn precision_tracks_forgotten_pairs() {
        let (mut parent, child) = fixtures();
        assert_eq!(join_precision(&parent, 0, &child, 0), Some(1.0));
        parent.forget(RowId(0), 1).unwrap(); // kills 2 of 4 pairs
        assert_eq!(join_precision(&parent, 0, &child, 0), Some(0.5));
    }

    #[test]
    fn empty_truth_yields_none() {
        let mut left = Table::new(Schema::single("a"));
        left.insert(&[1], 0).unwrap();
        let mut right = Table::new(Schema::single("a"));
        right.insert(&[2], 0).unwrap();
        assert_eq!(join_precision(&left, 0, &right, 0), None);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let left = Table::new(Schema::single("a"));
        let right = Table::new(Schema::single("a"));
        let r = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        assert!(r.pairs.is_empty());
        assert_eq!(r.stats.build_distinct_keys, 0);
    }

    #[test]
    fn self_join_counts_value_multiplicities() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[5, 5, 5, 9], 0).unwrap();
        let n = hash_join_count(&t, 0, &t, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(n, 9 + 1, "3×3 fives plus 1×1 nine");
    }
}
