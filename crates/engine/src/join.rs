//! Equi-join execution over amnesiac tables — tier-aware since the
//! tiered-join PR.
//!
//! The paper carves its workload out of "the unbounded space of
//! SELECT-PROJECT-JOIN queries" (§2.2) and flags joins as the place where
//! amnesia bites hardest: a forgotten tuple on *either* side removes all
//! its join partners from the result (§5's referential-integrity
//! discussion). The hash join here exposes both visibility regimes so the
//! JOIN-PREC experiment can compare the amnesiac answer with the
//! all-rows-ever ground truth kept by mark-only storage.
//!
//! # Tier-aware execution
//!
//! Compression is the table's *resting state* (see
//! [`amnesia_columnar::tier`]): cold blocks live as [`EncodedBlock`]s and
//! every scan/aggregate kernel reads them in place. Joins were the last
//! operator that silently undid that — `col_values_dense` re-materialized
//! every frozen block into a `Vec<Value>`, spending exactly the memory
//! tiering saved. Under [`ForgetVisibility::ActiveOnly`] both join sides
//! now run in compressed space:
//!
//! * **Build** streams each frozen block's active keys straight into the
//!   hash table via the codecs' structural visitors: RLE decodes a run's
//!   value once and touches the hash table once per run
//!   ([`rle::for_each_run`]), dictionaries insert each distinct value
//!   *once* and fan row ids out by code
//!   ([`dict::read_dictionary`] + [`dict::for_each_active_code`]),
//!   FOR/delta walk active rows in offset/prefix space
//!   ([`EncodedBlock::for_each_active`]). The hot tail is a raw slice
//!   walk. No dense `Vec<Value>` is ever allocated —
//!   [`amnesia_columnar::compress::block_decodes`] pins that in tests
//!   and `join_bench`.
//! * **Probe** runs [`crate::batch::probe_tiered`]: frozen probe blocks
//!   are pruned by their cached [`BlockMeta`](amnesia_columnar::BlockMeta)
//!   against the build side's `[min, max]` key range before the payload
//!   is touched ([`JoinStats::blocks_pruned`] /
//!   [`JoinStats::probe_rows_skipped`] report the skips), survivors probe
//!   in their codec's domain (one lookup per RLE run, a code→match table
//!   per block dictionary, offset/prefix walks for FOR/delta), and the
//!   hot tail probes as a direct slice.
//!
//! Output pairs are byte-identical to the dense join: ascending per key
//! on the build side, right-major in probe-row order on the probe side
//! (`tests/kernel_equivalence.rs` proves it across codecs × block sizes ×
//! freeze/forget/recompress interleavings).
//!
//! The [`ForgetVisibility::ScanSeesForgotten`] ground truth still
//! materializes densely on purpose: it must read *forgotten* rows, which
//! the active-only streaming never touches — and the store layer gates
//! every lossy tier transition (drop/recompress) off that regime. Those
//! deliberate decodes carry inline `lint: allow(dense)` waivers;
//! `amnesia-lint` statically bans dense materialization everywhere else
//! (the no-decode rule and its waiver policy live in `CONTRIBUTING.md`
//! at the repo root).
//!
//! [`EncodedBlock`]: amnesia_columnar::compress::EncodedBlock
//! [`EncodedBlock::for_each_active`]: amnesia_columnar::compress::EncodedBlock::for_each_active
//! [`rle::for_each_run`]: amnesia_columnar::compress::rle::for_each_run
//! [`dict::read_dictionary`]: amnesia_columnar::compress::dict::read_dictionary
//! [`dict::for_each_active_code`]: amnesia_columnar::compress::dict::for_each_active_code

use std::collections::HashMap;

use amnesia_columnar::compress::{dict, rle, Encoding};
use amnesia_columnar::{RowId, Table, Value};

use amnesia_util::bitmap::{any_set_bit_in, count_set_bits_in, for_each_set_bit_in};

use crate::batch;
use crate::mode::ForgetVisibility;

/// Cardinalities observed while executing a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinStats {
    /// Rows hashed on the build side.
    pub build_rows: usize,
    /// Distinct keys in the build table.
    pub build_distinct_keys: usize,
    /// Rows participating on the probe side (active rows under the
    /// amnesiac regime; [`Self::probe_rows_skipped`] of them may have
    /// been pruned without being streamed).
    pub probe_rows: usize,
    /// Output pairs produced.
    pub output_pairs: usize,
    /// Frozen probe blocks skipped because their cached meta cannot
    /// intersect the build side's key range (tiered probe only).
    pub blocks_pruned: usize,
    /// Active probe rows inside those skipped blocks — work the metadata
    /// saved.
    pub probe_rows_skipped: usize,
}

/// A join answer: matching `(left row, right row)` pairs plus stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResult {
    /// Matching row pairs in probe order (right-major).
    pub pairs: Vec<(RowId, RowId)>,
    /// Execution cardinalities.
    pub stats: JoinStats,
}

/// A build-side hash table (`key → ascending build rows`) plus the
/// inclusive `[min, max]` range of its keys (`None` when no active row
/// exists) — what the probe side prunes frozen blocks against.
type BuildTable = (HashMap<Value, Vec<RowId>>, Option<(Value, Value)>);

/// Widen an inclusive key range to cover `v`.
#[inline]
fn widen(range: &mut Option<(Value, Value)>, v: Value) {
    *range = Some(match *range {
        Some((lo, hi)) => (lo.min(v), hi.max(v)),
        None => (v, v),
    });
}

/// How a build-side accumulator ingests the keys streamed from the
/// tiers. The block dispatch — which codec streams how — lives once in
/// [`stream_active_keys`]; the two sinks below decide what accumulates
/// (ascending row lists for the pair join, multiplicities for the
/// count-only join).
trait BuildSink {
    /// An RLE run of `len` rows sharing `v`, starting at block-local row
    /// `start` of the block whose first global row is `base`; `bw` are
    /// the block-local activity words.
    fn run(&mut self, v: Value, bw: &[u64], base: usize, start: usize, len: usize);
    /// One distinct dictionary value with its ascending block-local
    /// active rows (never empty).
    fn code_group(&mut self, v: Value, base: usize, rows: &[u32]);
    /// A single active row at global `row` holding `v`.
    fn row(&mut self, v: Value, row: usize);
}

/// Stream the active keys of one column into a [`BuildSink`] without
/// dense materialization. Each codec feeds through its structure: RLE
/// hands whole runs over ([`rle::for_each_run`] — one sink call per
/// run), dict buckets active rows per code in one unpacking pass and
/// hands each distinct dictionary value over exactly once, FOR/delta/
/// plain stream `(row, value)` through
/// [`amnesia_columnar::compress::EncodedBlock::for_each_active`], and
/// the hot tail walks as a raw slice. Blocks ascend and every fan-out
/// ascends, so per key the accumulated rows are byte-identical to a
/// dense build's.
fn stream_active_keys(table: &Table, col: usize, sink: &mut impl BuildSink) {
    stream_selected_keys(table, col, table.activity_words(), sink)
}

/// [`stream_active_keys`] under an *external* selection-mask vector —
/// the physical plan's filtered build side. `words` stands in for the
/// activity words everywhere (the scan already ANDed activity in), so
/// only rows surviving the pushed-down predicates reach the sink; blocks
/// whose selection words are all zero skip before their payload is
/// touched.
fn stream_selected_keys(table: &Table, col: usize, words: &[u64], sink: &mut impl BuildSink) {
    let tier = table.col_tier(col);
    stream_selected_keys_blocks(table, col, words, 0, tier.frozen_blocks(), sink);
    stream_selected_keys_rows(table, col, words, tier.hot_start(), table.num_rows(), sink);
}

/// The frozen-block half of [`stream_selected_keys`], restricted to
/// blocks `[first, last)` — the morsel scheduler's build unit.
fn stream_selected_keys_blocks(
    table: &Table,
    col: usize,
    words: &[u64],
    first: usize,
    last: usize,
    sink: &mut impl BuildSink,
) {
    let tier = table.col_tier(col);
    let br = tier.block_rows();
    for b in first..last {
        let f = tier.frozen(b).expect("frozen block in range");
        if f.meta().active == 0 {
            continue; // dropped or fully-forgotten: payload never touched
        }
        let bw = batch::block_words(tier, words, b);
        if bw.iter().all(|&w| w == 0) {
            continue; // nothing selected in this block
        }
        tier.note_block_access(b);
        let base = b * br;
        let block = f.encoded();
        match block.encoding() {
            Encoding::Rle => rle::for_each_run(block.data(), |v, start, len| {
                sink.run(v, bw, base, start, len)
            }),
            Encoding::Dict => {
                let dictionary = dict::read_dictionary(block.data());
                let mut rows_per_code: Vec<Vec<u32>> = vec![Vec::new(); dictionary.len()];
                dict::for_each_active_code(block.data(), bw, |row, code| {
                    rows_per_code[code as usize].push(row as u32);
                });
                for (code, rows) in rows_per_code.iter().enumerate() {
                    if !rows.is_empty() {
                        sink.code_group(dictionary[code], base, rows);
                    }
                }
            }
            _ => block.for_each_active(bw, |row, v| sink.row(v, base + row)),
        }
    }
}

/// The hot half of [`stream_selected_keys`], restricted to absolute rows
/// `[lo, hi)` (word-aligned `lo`, rows at or past the column's
/// `hot_start`).
fn stream_selected_keys_rows(
    table: &Table,
    col: usize,
    words: &[u64],
    lo: usize,
    hi: usize,
    sink: &mut impl BuildSink,
) {
    let tier = table.col_tier(col);
    let hot = tier.hot_values();
    let start = tier.hot_start();
    for wi in lo / amnesia_util::WORD_BITS..hi.div_ceil(amnesia_util::WORD_BITS) {
        let base = wi * amnesia_util::WORD_BITS;
        let mut active = batch::tail_word(words, wi, (hi - base).min(amnesia_util::WORD_BITS));
        while active != 0 {
            let bit = active.trailing_zeros() as usize;
            active &= active - 1;
            sink.row(hot[base - start + bit], base + bit);
        }
    }
}

/// Accumulates `key → ascending build rows` — the pair join's build.
struct RowsSink {
    map: HashMap<Value, Vec<RowId>>,
    range: Option<(Value, Value)>,
}

impl BuildSink for RowsSink {
    fn run(&mut self, v: Value, bw: &[u64], base: usize, start: usize, len: usize) {
        // One entry lookup per run; runs with no active rows are skipped
        // so the table never learns rowless keys.
        if any_set_bit_in(bw, start, start + len) {
            widen(&mut self.range, v);
            let rows = self.map.entry(v).or_default();
            for_each_set_bit_in(bw, start, start + len, |row| {
                rows.push(RowId::from(base + row));
            });
        }
    }

    fn code_group(&mut self, v: Value, base: usize, rows: &[u32]) {
        widen(&mut self.range, v);
        self.map
            .entry(v)
            .or_default()
            .extend(rows.iter().map(|&row| RowId::from(base + row as usize)));
    }

    fn row(&mut self, v: Value, row: usize) {
        widen(&mut self.range, v);
        self.map.entry(v).or_default().push(RowId::from(row));
    }
}

/// Accumulates `key → multiplicity` — the count-only join's build (RLE
/// runs fold a whole popcount at once instead of fanning out rows).
struct CountsSink {
    map: HashMap<Value, usize>,
    range: Option<(Value, Value)>,
}

impl CountsSink {
    fn note(&mut self, v: Value, n: usize) {
        if n > 0 {
            widen(&mut self.range, v);
            *self.map.entry(v).or_default() += n;
        }
    }
}

impl BuildSink for CountsSink {
    fn run(&mut self, v: Value, bw: &[u64], _base: usize, start: usize, len: usize) {
        self.note(v, count_set_bits_in(bw, start, start + len));
    }

    fn code_group(&mut self, v: Value, _base: usize, rows: &[u32]) {
        self.note(v, rows.len());
    }

    fn row(&mut self, v: Value, _row: usize) {
        self.note(v, 1);
    }
}

/// Build the hash table `key → ascending build rows` from the active rows
/// of one column, streaming frozen blocks in compressed space (no dense
/// `Vec<Value>` detour), plus the inclusive `[min, max]` key range the
/// probe prunes against (`None` when no active row exists).
fn build_rows_map(table: &Table, col: usize) -> BuildTable {
    let mut sink = RowsSink {
        map: HashMap::with_capacity(table.active_rows()),
        range: None,
    };
    stream_active_keys(table, col, &mut sink);
    (sink.map, sink.range)
}

/// Build the pair-join hash table from the rows *selected* by an
/// external selection-mask vector (the physical plan's filtered build
/// side), streaming frozen blocks in compressed space exactly like
/// [`build_rows_map`]. Exposed for
/// [`Executor::execute_plan`](crate::exec::Executor::execute_plan).
pub(crate) fn build_rows_map_with(table: &Table, col: usize, words: &[u64]) -> BuildTable {
    let mut sink = RowsSink {
        map: HashMap::new(),
        range: None,
    };
    stream_selected_keys(table, col, words, &mut sink);
    (sink.map, sink.range)
}

/// [`build_rows_map_with`] restricted to one morsel of the build side.
/// Each per-morsel map holds ascending rows per key; the scheduler
/// concatenates the maps in span order, so a key's final row list is
/// byte-identical to the serial build's.
pub(crate) fn build_rows_map_span(
    table: &Table,
    col: usize,
    words: &[u64],
    span: &crate::morsel::Span,
) -> BuildTable {
    let mut sink = RowsSink {
        map: HashMap::new(),
        range: None,
    };
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            stream_selected_keys_blocks(table, col, words, first, last, &mut sink)
        }
        crate::morsel::Span::Rows { lo, hi } => {
            stream_selected_keys_rows(table, col, words, lo, hi, &mut sink)
        }
    }
    (sink.map, sink.range)
}

/// Build `key → multiplicity` for the count-only join.
fn build_counts_map(table: &Table, col: usize) -> (HashMap<Value, usize>, Option<(Value, Value)>) {
    let mut sink = CountsSink {
        map: HashMap::new(),
        range: None,
    };
    stream_active_keys(table, col, &mut sink);
    (sink.map, sink.range)
}

/// Pre-size the pair output: each probe row matches the average build-key
/// multiplicity (exact for foreign-key joins, an estimate otherwise).
/// Capped at the input cardinality so a skewed build side (one hot key)
/// cannot request a quadratic allocation up front — beyond the cap,
/// normal Vec growth takes over.
fn pair_estimate(build_rows: usize, build_distinct_keys: usize, probe_rows: usize) -> usize {
    let avg_multiplicity = build_rows.div_ceil(build_distinct_keys.max(1));
    probe_rows
        .saturating_mul(avg_multiplicity)
        .min(probe_rows.max(build_rows))
}

/// The amnesiac hash join: build and probe both run tier-aware — frozen
/// blocks stream/probe in compressed space, hot tails as raw slices, and
/// a fully hot table is simply the all-tail case of the same code path.
fn hash_join_active(left: &Table, left_col: usize, right: &Table, right_col: usize) -> JoinResult {
    let build_rows = left.active_rows();
    let probe_rows = right.active_rows();
    let (build, key_range) = build_rows_map(left, left_col);
    let build_distinct_keys = build.len();
    let mut pairs = Vec::with_capacity(pair_estimate(build_rows, build_distinct_keys, probe_rows));
    let probe = batch::probe_tiered(
        right.col_tier(right_col),
        right.activity_words(),
        &build,
        key_range,
        &mut pairs,
    );
    let output_pairs = pairs.len();
    JoinResult {
        pairs,
        stats: JoinStats {
            build_rows,
            build_distinct_keys,
            probe_rows,
            output_pairs,
            blocks_pruned: probe.blocks_pruned,
            probe_rows_skipped: probe.probe_rows_skipped,
        },
    }
}

/// The mark-only ground truth: every physical row participates, so both
/// sides materialize densely (forgotten rows' values live nowhere else).
/// The store layer gates lossy tier transitions (drop/recompress) off
/// this regime, which is what keeps the answer exact.
fn hash_join_all(left: &Table, left_col: usize, right: &Table, right_col: usize) -> JoinResult {
    let build_rows = left.num_rows();
    let probe_rows = right.num_rows();
    // lint: allow(dense) mark-only ground truth: forgotten rows' values survive nowhere but the dense decode
    let left_vals = left.col_values_dense(left_col);
    // lint: allow(dense) mark-only ground truth: forgotten rows' values survive nowhere but the dense decode
    let right_vals = right.col_values_dense(right_col);
    let left_vals = left_vals.as_ref();
    let right_vals = right_vals.as_ref();

    let mut build: HashMap<Value, Vec<RowId>> = HashMap::with_capacity(build_rows);
    for (r, &v) in left_vals.iter().enumerate() {
        build.entry(v).or_default().push(RowId::from(r));
    }
    let build_distinct_keys = build.len();
    let mut pairs = Vec::with_capacity(pair_estimate(build_rows, build_distinct_keys, probe_rows));
    for (r, &v) in right_vals.iter().enumerate() {
        if let Some(ls) = build.get(&v) {
            pairs.extend(ls.iter().map(|&l| (l, RowId::from(r))));
        }
    }
    let output_pairs = pairs.len();
    JoinResult {
        pairs,
        stats: JoinStats {
            build_rows,
            build_distinct_keys,
            probe_rows,
            output_pairs,
            blocks_pruned: 0,
            probe_rows_skipped: 0,
        },
    }
}

/// Hash equi-join `left.left_col = right.right_col`.
///
/// Builds on the left input and probes with the right, so pairs come out
/// grouped by right row. `visibility` decides whether forgotten tuples
/// participate: [`ForgetVisibility::ActiveOnly`] is the amnesiac answer
/// (tier-aware: frozen blocks build and probe in compressed space — see
/// the module docs), [`ForgetVisibility::ScanSeesForgotten`] the
/// mark-only ground truth (dense by necessity: it must read forgotten
/// rows).
pub fn hash_join(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
    visibility: ForgetVisibility,
) -> JoinResult {
    match visibility {
        ForgetVisibility::ActiveOnly => hash_join_active(left, left_col, right, right_col),
        ForgetVisibility::ScanSeesForgotten => hash_join_all(left, left_col, right, right_col),
    }
}

/// Number of matching pairs without materializing them. Tier-aware under
/// [`ForgetVisibility::ActiveOnly`]: the build folds multiplicities in
/// compressed space (one popcount per RLE run, a histogram per block
/// dictionary) and the probe adds `multiplicity` per hit without touching
/// row ids.
pub fn hash_join_count(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
    visibility: ForgetVisibility,
) -> usize {
    match visibility {
        ForgetVisibility::ActiveOnly => {
            let (build, key_range) = build_counts_map(left, left_col);
            let mut count = 0usize;
            batch::probe_tiered_with(
                right.col_tier(right_col),
                right.activity_words(),
                &build,
                key_range,
                |&m, _| count += m,
            );
            count
        }
        ForgetVisibility::ScanSeesForgotten => {
            // lint: allow(dense) ScanSeesForgotten is a whitelisted seam: it must see rows the tiered path hides
            let left_vals = left.col_values_dense(left_col);
            // lint: allow(dense) ScanSeesForgotten is a whitelisted seam: it must see rows the tiered path hides
            let right_vals = right.col_values_dense(right_col);
            let mut build: HashMap<Value, usize> = HashMap::with_capacity(left.num_rows());
            for &v in left_vals.as_ref() {
                *build.entry(v).or_default() += 1;
            }
            right_vals
                .as_ref()
                .iter()
                .filter_map(|v| build.get(v).copied())
                .sum()
        }
    }
}

/// Build the hash table `key → ascending build rows` for an external
/// (parallel) probe, plus the inclusive build-key range. Exposed for
/// [`crate::parallel::par_hash_join`], which shares the serial build and
/// chunks only the probe.
pub(crate) fn build_for_probe(table: &Table, col: usize) -> BuildTable {
    build_rows_map(table, col)
}

/// Join precision under amnesia: pairs surviving in the active join over
/// pairs in the all-rows ground truth (`RF/(RF+MF)` lifted to joins).
/// `None` when the ground-truth join is empty.
pub fn join_precision(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
) -> Option<f64> {
    let truth = hash_join_count(
        left,
        left_col,
        right,
        right_col,
        ForgetVisibility::ScanSeesForgotten,
    );
    if truth == 0 {
        return None;
    }
    let active = hash_join_count(
        left,
        left_col,
        right,
        right_col,
        ForgetVisibility::ActiveOnly,
    );
    Some(active as f64 / truth as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    /// parent(key), child(fk, payload).
    fn fixtures() -> (Table, Table) {
        let mut parent = Table::new(Schema::single("key"));
        for k in [1i64, 2, 3, 3] {
            parent.insert(&[k], 0).unwrap();
        }
        let mut child = Table::new(Schema::new(vec!["fk", "payload"]));
        for (fk, p) in [(1i64, 10i64), (1, 11), (3, 30), (4, 40)] {
            child.insert(&[fk, p], 0).unwrap();
        }
        (parent, child)
    }

    #[test]
    fn join_matches_expected_pairs() {
        let (parent, child) = fixtures();
        let r = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        // key 1 → child rows 0,1; key 3 appears twice in parent → child
        // row 2 pairs with both parent rows 2 and 3; key 4 dangles.
        assert_eq!(r.stats.output_pairs, 4);
        let mut pairs = r.pairs.clone();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (RowId(0), RowId(0)),
                (RowId(0), RowId(1)),
                (RowId(2), RowId(2)),
                (RowId(3), RowId(2)),
            ]
        );
        assert_eq!(r.stats.build_rows, 4);
        assert_eq!(r.stats.build_distinct_keys, 3);
        assert_eq!(r.stats.probe_rows, 4);
    }

    #[test]
    fn count_agrees_with_materialized_join() {
        let (parent, child) = fixtures();
        for vis in [
            ForgetVisibility::ActiveOnly,
            ForgetVisibility::ScanSeesForgotten,
        ] {
            let full = hash_join(&parent, 0, &child, 0, vis);
            let count = hash_join_count(&parent, 0, &child, 0, vis);
            assert_eq!(count, full.stats.output_pairs, "{vis:?}");
        }
    }

    #[test]
    fn forgetting_a_build_row_removes_its_pairs() {
        let (mut parent, child) = fixtures();
        parent.forget(RowId(0), 1).unwrap(); // key 1 forgotten
        let active = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(active.stats.output_pairs, 2, "only key-3 pairs remain");
        // Ground truth still sees everything.
        let truth = hash_join(&parent, 0, &child, 0, ForgetVisibility::ScanSeesForgotten);
        assert_eq!(truth.stats.output_pairs, 4);
    }

    #[test]
    fn forgetting_a_probe_row_removes_its_pairs() {
        let (parent, mut child) = fixtures();
        child.forget(RowId(2), 1).unwrap(); // fk=3 child forgotten
        let active = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(active.stats.output_pairs, 2, "key-1 pairs remain");
    }

    #[test]
    fn precision_tracks_forgotten_pairs() {
        let (mut parent, child) = fixtures();
        assert_eq!(join_precision(&parent, 0, &child, 0), Some(1.0));
        parent.forget(RowId(0), 1).unwrap(); // kills 2 of 4 pairs
        assert_eq!(join_precision(&parent, 0, &child, 0), Some(0.5));
    }

    #[test]
    fn empty_truth_yields_none() {
        let mut left = Table::new(Schema::single("a"));
        left.insert(&[1], 0).unwrap();
        let mut right = Table::new(Schema::single("a"));
        right.insert(&[2], 0).unwrap();
        assert_eq!(join_precision(&left, 0, &right, 0), None);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let left = Table::new(Schema::single("a"));
        let right = Table::new(Schema::single("a"));
        let r = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        assert!(r.pairs.is_empty());
        assert_eq!(r.stats.build_distinct_keys, 0);
    }

    #[test]
    fn self_join_counts_value_multiplicities() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[5, 5, 5, 9], 0).unwrap();
        let n = hash_join_count(&t, 0, &t, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(n, 9 + 1, "3×3 fives plus 1×1 nine");
    }

    /// Frozen fixtures: same logical tables as [`fixtures`], but every
    /// full 64-row block compressed (the tables are padded so freezing
    /// actually engages).
    fn frozen_fixtures() -> (Table, Table) {
        let mut parent = Table::with_block_rows(Schema::single("key"), 64);
        let mut keys = vec![1i64, 2, 3, 3];
        keys.extend(std::iter::repeat_n(1_000, 60)); // pad: never joins
        parent.insert_batch(&keys, 0).unwrap();
        let mut child = Table::new(Schema::new(vec!["fk", "payload"]));
        for (fk, p) in [(1i64, 10i64), (1, 11), (3, 30), (4, 40)] {
            child.insert(&[fk, p], 0).unwrap();
        }
        parent.freeze_upto(64);
        assert!(parent.has_frozen());
        (parent, child)
    }

    #[test]
    fn frozen_build_side_matches_dense_join() {
        let (parent, child) = frozen_fixtures();
        let r = hash_join(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
        let mut pairs = r.pairs.clone();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (RowId(0), RowId(0)),
                (RowId(0), RowId(1)),
                (RowId(2), RowId(2)),
                (RowId(3), RowId(2)),
            ]
        );
        assert_eq!(r.stats.build_distinct_keys, 4, "1, 2, 3 and the pad key");
        assert_eq!(
            hash_join_count(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly),
            4
        );
    }

    #[test]
    fn frozen_probe_blocks_prune_against_build_key_range() {
        // Build keys live in [0, 100); the probe column's second frozen
        // block holds only values ≥ 10_000, so its meta prunes it.
        let mut build = Table::new(Schema::single("k"));
        build
            .insert_batch(&(0..100).collect::<Vec<i64>>(), 0)
            .unwrap();
        let mut probe = Table::with_block_rows(Schema::single("k"), 64);
        let vals: Vec<i64> = (0..64)
            .map(|i| i % 50)
            .chain((0..64).map(|i| 10_000 + i))
            .chain([7, 8])
            .collect();
        probe.insert_batch(&vals, 0).unwrap();
        probe.freeze_upto(128);
        let r = hash_join(&build, 0, &probe, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(r.stats.blocks_pruned, 1, "the 10k block");
        assert_eq!(r.stats.probe_rows_skipped, 64);
        assert_eq!(r.stats.output_pairs, 64 + 2, "block 0 plus the hot tail");
        // Forgotten-inclusive ground truth is oblivious to pruning.
        let truth = hash_join(&build, 0, &probe, 0, ForgetVisibility::ScanSeesForgotten);
        assert_eq!(truth.stats.blocks_pruned, 0);
        assert_eq!(truth.stats.output_pairs, 66);
    }

    #[test]
    fn empty_build_side_prunes_every_probe_block() {
        let left = Table::new(Schema::single("a"));
        let mut right = Table::with_block_rows(Schema::single("a"), 64);
        right
            .insert_batch(&(0..128).collect::<Vec<i64>>(), 0)
            .unwrap();
        right.freeze_upto(128);
        let r = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        assert!(r.pairs.is_empty());
        assert_eq!(r.stats.blocks_pruned, 2);
        assert_eq!(r.stats.probe_rows_skipped, 128);
    }
}
