//! Word-at-a-time vectorized batch kernels with selection vectors.
//!
//! # Why this layer exists
//!
//! The paper's argument for amnesia is that bounding the active set keeps
//! scans fast (§1, §6). The original kernels threw that advantage away by
//! walking row-at-a-time: a `column.get(r)` bounds check plus an
//! `activity.is_active(id)` bitmap shift *per physical row*. This module
//! is the batch-execution footing underneath every scan, aggregate and
//! join kernel: raw `&[Value]` slices on one side, the packed `u64`
//! activity words of [`amnesia_util::Bitmap`] on the other.
//!
//! # The selection-vector contract
//!
//! Work proceeds in units of one **activity word** = [`WORD_BITS`] = 64
//! rows; a logical *batch* is [`BATCH_ROWS`] = 1024 rows = 16 words
//! (matching `amnesia_columnar::DEFAULT_BLOCK_ROWS`, so a zone-map block
//! is exactly one batch). For each word the kernels build a *selection
//! mask*:
//!
//! ```text
//! sel = predicate_mask(values[w*64 .. w*64+64]) & activity_word[w]
//! ```
//!
//! * `predicate_mask` evaluates the range test as one unsigned compare
//!   per value with no data-dependent branches, dispatching to an
//!   AVX-512/AVX2 kernel at runtime on x86-64 (portable byte-lane
//!   fallback elsewhere).
//! * An all-forgotten word (`activity == 0`) is skipped before its values
//!   are ever touched: forgetting data makes scans *cheaper*, which is the
//!   paper's point.
//! * Word processing is **density-adaptive**: words with at least
//!   `DENSE_WORD_MIN_ACTIVE` active rows take the vectorized mask path;
//!   sparser words iterate just their set bits, so heavily-forgotten
//!   regions never pay for 64 evaluations to select 3 rows.
//! * An all-selected word (`sel == !0`) takes a fused fast path that
//!   folds the whole 64-value slice without per-row bit tests; partial
//!   selections extract bits with `trailing_zeros`, costing one short
//!   dependency chain per *selected* row, not per physical row.
//!
//! Positions in a selection mask are row ids relative to the word's base
//! row (`word_index * 64`); consumers materialize them as [`RowId`]s, feed
//! them to the fused aggregate, or count them with one `popcount`.
//!
//! All kernels take explicit `[lo, hi)` row bounds with word-boundary
//! masking (via the same mask algebra as
//! [`Bitmap::masked_word`](amnesia_util::Bitmap::masked_word)), so
//! zone-map pruned blocks and parallel chunks run the identical code path
//! as full scans.
//!
//! # Zone-map pruning at word granularity
//!
//! The `*_zoned` kernel variants take a [`Zone`] slice — one min/max per
//! activity word, built by
//! [`WordZoneMap`](amnesia_columnar::zonemap::WordZoneMap) — checked *in
//! front of* the per-word work: a word whose zone proves the predicate
//! cannot match is skipped before its values are loaded, composing with
//! the all-forgotten (`activity == 0`) skip so cold and forgotten regions
//! cost one metadata compare per 64 rows. On sorted or clustered columns
//! a selective scan degenerates into a zone walk.
//!
//! # Fused scans over compressed blocks
//!
//! The `*_compressed` kernels run on a
//! [`SegmentedColumn`]: each frozen
//! block answers the predicate through its codec's fused
//! `filter_range_masks` (RLE compares once per run, dictionaries compare
//! bit-packed codes against a code range, FOR compares rebased offsets —
//! see `amnesia_columnar::compress`), producing exactly the selection-mask
//! words defined above. Those masks AND with the block's activity words
//! and feed the same emit/count loops as hot-path scans, so cold
//! compressed data is scanned without ever materializing a `Vec<Value>` —
//! the paper's bargain: compression postpones forgetting only if the
//! compressed form stays queryable at memory speed.
//!
//! The row-at-a-time originals live in [`scalar`] as the reference
//! implementations; `tests/kernel_equivalence.rs` holds the
//! vectorized == scalar == parallel == compressed property tests, and the
//! `scan_kernels`/`parallel_scan`/`compressed_scan` benches measure the
//! gaps.

use std::collections::HashMap;

use amnesia_columnar::compress::{dict, rle, BlockAgg, Encoding};
use amnesia_columnar::{
    RowId, SegmentedColumn, Table, TieredColumn, Value, Zone, DEFAULT_BLOCK_ROWS,
};
use amnesia_util::WORD_BITS;
use amnesia_workload::query::{AggKind, RangePredicate};

/// Rows per logical batch (16 activity words, one zone-map block —
/// tied to the storage block size so the identities in the module doc
/// hold by construction).
pub const BATCH_ROWS: usize = DEFAULT_BLOCK_ROWS;

const _: () = assert!(
    BATCH_ROWS.is_multiple_of(WORD_BITS),
    "a batch must be a whole number of activity words"
);

/// Streaming aggregate state: COUNT/SUM/MIN/MAX folded in one pass, AVG
/// derived at finalize. SUM accumulates in `i128` so no `i64` input can
/// overflow it.
#[derive(Debug, Clone, Copy)]
pub struct AggState {
    count: u64,
    sum: i128,
    min: Value,
    max: Value,
}

impl AggState {
    /// Empty state.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: Value::MAX,
            max: Value::MIN,
        }
    }

    /// Fold one value.
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.count += 1;
        self.sum += v as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold a pre-aggregated block (the all-selected word fast path).
    #[inline]
    pub fn push_block(&mut self, count: u64, sum: i128, min: Value, max: Value) {
        self.count += count;
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Number of folded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running sum of folded values.
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Minimum folded value (`None` when the selection was empty).
    pub fn min_value(&self) -> Option<Value> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum folded value (`None` when the selection was empty).
    pub fn max_value(&self) -> Option<Value> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another state in (parallel partial aggregation).
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalize for an aggregate kind; `None` when the selection was empty
    /// (COUNT returns 0 instead).
    pub fn finalize(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Count => Some(self.count as f64),
            AggKind::Sum => (self.count > 0).then_some(self.sum as f64),
            AggKind::Avg => (self.count > 0).then(|| self.sum as f64 / self.count as f64),
            AggKind::Min => (self.count > 0).then_some(self.min as f64),
            AggKind::Max => (self.count > 0).then_some(self.max as f64),
        }
    }
}

impl Default for AggState {
    fn default() -> Self {
        Self::new()
    }
}

/// Minimum active bits for a word to take the vectorized mask path.
///
/// Building a predicate mask costs ~64 branch-light compares regardless
/// of how many rows are active; iterating set bits costs ~2 ns per
/// *active* row. The crossover on current hardware sits around 20–25
/// active bits, so mostly-forgotten words keep the cheap sparse path —
/// forgetting data keeps making scans cheaper, per the paper's argument.
const DENSE_WORD_MIN_ACTIVE: u32 = 24;

/// Which predicate-mask kernel this CPU gets. Resolved once per kernel
/// invocation (not per 64-row word) so the detection's atomic loads and
/// branches stay out of the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MaskImpl {
    /// Byte-lane scalar loop; every architecture.
    Portable,
    /// AVX2 sign-bias compare + movmskpd (x86-64 only).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512F unsigned compare straight into kmasks (x86-64 only).
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// Environment variable that pins predicate evaluation to the portable
/// (non-SIMD) kernel when set to anything but `0` — CI's way of running
/// the whole suite down the fallback path that non-AVX hardware takes.
pub const PORTABLE_ONLY_ENV: &str = "AMNESIA_PORTABLE_ONLY";

/// True when [`PORTABLE_ONLY_ENV`] disables SIMD dispatch (read once).
fn portable_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED
        .get_or_init(|| std::env::var(PORTABLE_ONLY_ENV).is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Detect the best available mask kernel.
#[inline]
pub(crate) fn mask_impl() -> MaskImpl {
    if portable_forced() {
        return MaskImpl::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return MaskImpl::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return MaskImpl::Avx2;
        }
    }
    MaskImpl::Portable
}

/// Branch-light predicate evaluation over up to 64 values: bit `i` of the
/// result is set iff `pred` matches `values[i]`.
///
/// The range test is a single unsigned compare (`(v - lo) as u64 <
/// hi - lo`, the classic wrapping-subtract trick, valid for every `i64`
/// `lo < hi`). Full 64-value words dispatch on the pre-resolved
/// [`MaskImpl`]; the portable fallback builds eight independent byte
/// lanes so the dependency chain is 8 steps, not 64 — about 2x the naive
/// `mask |= test << i` loop.
#[inline]
fn predicate_mask(values: &[Value], lo: Value, hi: Value, imp: MaskImpl) -> u64 {
    debug_assert!(values.len() <= WORD_BITS);
    #[cfg(target_arch = "x86_64")]
    if values.len() == WORD_BITS {
        match imp {
            // SAFETY: mask_impl() verified the feature on this CPU.
            MaskImpl::Avx512 => return unsafe { simd::mask_avx512(values, lo, hi) },
            // SAFETY: mask_impl() verified the feature on this CPU.
            MaskImpl::Avx2 => return unsafe { simd::mask_avx2(values, lo, hi) },
            MaskImpl::Portable => {}
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = imp;
    let width = range_width(lo, hi);
    let mut bytes = [0u8; 8];
    let mut chunks = values.chunks_exact(8);
    let mut group = 0usize;
    for chunk in &mut chunks {
        let mut b = 0u8;
        for (i, &v) in chunk.iter().enumerate() {
            b |= ((((v as u64).wrapping_sub(lo as u64)) < width) as u8) << i;
        }
        bytes[group] = b;
        group += 1;
    }
    let mut mask = u64::from_le_bytes(bytes);
    let base = group * 8;
    for (i, &v) in chunks.remainder().iter().enumerate() {
        mask |= ((((v as u64).wrapping_sub(lo as u64)) < width) as u64) << (base + i);
    }
    mask
}

/// `hi - lo` in the unsigned domain (fits `u64` for every `i64` pair;
/// callers guarantee `lo < hi` via the `is_empty` guards).
#[inline]
fn range_width(lo: Value, hi: Value) -> u64 {
    (hi as i128 - lo as i128) as u64
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! SIMD predicate-mask kernels, selected at runtime.
    //!
    //! Both evaluate the same single-compare range test as the portable
    //! path. AVX-512 compares eight `i64` lanes straight into a `__mmask8`
    //! (`vpcmpuq`); AVX2 lacks unsigned 64-bit compares, so the operands
    //! are sign-bias-flipped and compared signed (`x <u w  ⇔
    //! x ^ MIN <s w ^ MIN`), then lane signs are extracted with
    //! `movmskpd`. Measured ~2x over the portable byte-lane loop at 1M
    //! rows (memory-bandwidth-bound from there).

    use super::{range_width, Value, WORD_BITS};

    /// Mask for exactly 64 values via AVX2.
    ///
    /// # Safety
    /// Caller must verify `avx2` is available and pass exactly 64 values.
    #[target_feature(enable = "avx2")]
    // SAFETY: sound iff `avx2` is present (callers dispatch through
    // `mask_impl()`, which feature-detects) and `values.len() == 64`, so
    // the 16 × 4-lane unaligned loads below never read past the slice.
    pub(super) unsafe fn mask_avx2(values: &[Value], lo: Value, hi: Value) -> u64 {
        use std::arch::x86_64::*;
        debug_assert_eq!(values.len(), WORD_BITS);
        let sign = _mm256_set1_epi64x(i64::MIN);
        let lo_v = _mm256_set1_epi64x(lo);
        let width_biased = _mm256_set1_epi64x((range_width(lo, hi) ^ (i64::MIN as u64)) as i64);
        let mut mask = 0u64;
        for group in 0..WORD_BITS / 4 {
            let v = _mm256_loadu_si256(values.as_ptr().add(group * 4) as *const __m256i);
            let t = _mm256_xor_si256(_mm256_sub_epi64(v, lo_v), sign);
            let m = _mm256_cmpgt_epi64(width_biased, t);
            let bits = _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u64;
            mask |= bits << (group * 4);
        }
        mask
    }

    /// Mask for exactly 64 values via AVX-512F.
    ///
    /// # Safety
    /// Caller must verify `avx512f` is available and pass exactly 64
    /// values.
    #[target_feature(enable = "avx512f")]
    // SAFETY: sound iff `avx512f` is present (callers dispatch through
    // `mask_impl()`, which feature-detects) and `values.len() == 64`, so
    // the 8 × 8-lane unaligned loads below never read past the slice.
    pub(super) unsafe fn mask_avx512(values: &[Value], lo: Value, hi: Value) -> u64 {
        use std::arch::x86_64::*;
        debug_assert_eq!(values.len(), WORD_BITS);
        let lo_v = _mm512_set1_epi64(lo);
        let width_v = _mm512_set1_epi64(range_width(lo, hi) as i64);
        let mut mask = 0u64;
        for group in 0..WORD_BITS / 8 {
            let v = _mm512_loadu_si512(values.as_ptr().add(group * 8) as *const __m512i);
            let t = _mm512_sub_epi64(v, lo_v);
            let m = _mm512_cmplt_epu64_mask(t, width_v) as u64;
            mask |= m << (group * 8);
        }
        mask
    }
}

// Boundary clipping lives in `amnesia_util::bitmap::clip_word` — one
// home for the algebra shared with `Bitmap::masked_word`.
use amnesia_util::bitmap::clip_word;
use amnesia_util::bitmap::for_each_set_bit_in;

/// Append `RowId`s for every set bit of `sel`, offset by `base` rows.
#[inline]
pub(crate) fn emit_selection(mut sel: u64, base: usize, out: &mut Vec<RowId>) {
    while sel != 0 {
        let bit = sel.trailing_zeros() as usize;
        sel &= sel - 1;
        out.push(RowId::from(base + bit));
    }
}

/// Selection mask for one word: `pred` over the values, restricted to
/// `active`. Density-adaptive: dense words evaluate all 64 values
/// branch-light (vectorizable), sparse words test only the active rows.
#[inline]
fn selection_word(chunk: &[Value], active: u64, pred: RangePredicate, imp: MaskImpl) -> u64 {
    if active.count_ones() >= DENSE_WORD_MIN_ACTIVE {
        predicate_mask(chunk, pred.lo, pred.hi, imp) & active
    } else {
        let mut sel = 0u64;
        let mut w = active;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            sel |= (pred.matches(chunk[bit]) as u64) << bit;
        }
        sel
    }
}

/// Bit `i` set iff `values[i]` lies in the *inclusive* range `[lo, hi]`.
/// Reuses the half-open SIMD kernels when `hi < i64::MAX`; the domain
/// edge takes a portable `<=` compare (the half-open width would
/// overflow there).
#[inline]
fn predicate_mask_incl(values: &[Value], lo: Value, hi: Value, imp: MaskImpl) -> u64 {
    debug_assert!(lo <= hi);
    if hi < Value::MAX {
        return predicate_mask(values, lo, hi + 1, imp);
    }
    // v in [lo, MAX] ⇔ (v - lo) as u64 <= (MAX - lo) as u64.
    let width = (Value::MAX as i128 - lo as i128) as u64;
    let mut mask = 0u64;
    for (i, &v) in values.iter().enumerate() {
        mask |= ((((v as u64).wrapping_sub(lo as u64)) <= width) as u64) << i;
    }
    mask
}

/// Narrow one word's selection by a pushed-down [`ColPred`]: surviving
/// bits of `sel` are those whose value passes the (possibly negated)
/// inclusive range. Density-adaptive like [`selection_word`]; negation
/// inverts the mask, and `& sel` clears any stray bits past the chunk.
#[inline]
pub(crate) fn conj_word(
    chunk: &[Value],
    sel: u64,
    p: &crate::physical::ColPred,
    imp: MaskImpl,
) -> u64 {
    if p.is_empty_range() {
        return if p.negated { sel } else { 0 };
    }
    if sel.count_ones() >= DENSE_WORD_MIN_ACTIVE {
        let m = predicate_mask_incl(chunk, p.lo, p.hi, imp);
        (if p.negated { !m } else { m }) & sel
    } else {
        let mut out = 0u64;
        let mut w = sel;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            out |= (p.matches(chunk[bit]) as u64) << bit;
        }
        out
    }
}

/// Selection-mask words for one frozen block under a [`ColPred`]: the
/// codec's fused `filter_range_masks` evaluates the inclusive range in
/// its own domain (run / code / offset space — the block is never
/// decoded), with negation folded in by complementing the mask words.
/// The `i64` domain edges route through the complement of the
/// representable half (`[lo, MAX]` = NOT `[MIN, lo)`). Stray high bits
/// in the last word are the caller's to clear via the activity AND.
pub(crate) fn conj_block_masks(
    block: &amnesia_columnar::compress::EncodedBlock,
    p: &crate::physical::ColPred,
    out: &mut Vec<u64>,
) {
    let nwords = block.len().div_ceil(WORD_BITS);
    let mut invert = p.negated;
    if p.is_empty_range() {
        out.clear();
        out.resize(nwords, 0);
    } else if p.hi < Value::MAX {
        block.filter_range_masks(p.lo, p.hi + 1, out);
    } else if p.lo > Value::MIN {
        // [lo, MAX] is the complement of [MIN, lo).
        block.filter_range_masks(Value::MIN, p.lo, out);
        invert = !invert;
    } else {
        // The whole domain.
        out.clear();
        out.resize(nwords, !0u64);
    }
    if invert {
        for w in out.iter_mut() {
            *w = !*w;
        }
    }
}

/// Sparse residual refinement: narrow an existing selection (`sel`) by a
/// further [`ColPred`](crate::physical::ColPred) without re-filtering the
/// whole block. When earlier conjuncts left only a few survivors and the
/// codec supports O(1) random access ([`EncodedBlock::value_at`] for
/// plain / FOR / dict), each surviving bit is tested individually in
/// codec space; otherwise the block-wide fused filter runs once and ANDs
/// in. Both paths compute the same conjunction (AND commutes), so the
/// selection is byte-identical to evaluating the predicate densely —
/// only the work differs. The block is never decoded either way.
///
/// [`EncodedBlock::value_at`]: amnesia_columnar::compress::EncodedBlock::value_at
pub(crate) fn refine_block_masks(
    block: &amnesia_columnar::compress::EncodedBlock,
    p: &crate::physical::ColPred,
    sel: &mut [u64],
    scratch: &mut Vec<u64>,
) {
    let surviving: usize = sel.iter().map(|w| w.count_ones() as usize).sum();
    if surviving == 0 {
        return;
    }
    let random_access = matches!(
        block.encoding(),
        Encoding::Plain | Encoding::ForPack | Encoding::Dict
    );
    if random_access && surviving * 8 <= block.len() {
        for (k, w) in sel.iter_mut().enumerate() {
            let mut m = *w;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                m &= m - 1;
                if !p.matches(block.value_at(k * WORD_BITS + bit)) {
                    *w &= !(1u64 << bit);
                }
            }
        }
    } else {
        conj_block_masks(block, p, scratch);
        for (w, &m) in sel.iter_mut().zip(scratch.iter()) {
            *w &= m;
        }
    }
}

/// Fold the selected values of one word into `state`.
///
/// The hot accumulation runs on a word-local `i64` sum — `checked_add`
/// spills to the `i128` total on the (practically never taken) overflow
/// branch — because an `i128` add per row measurably drags the loop. A
/// fully-selected full word folds the slice with no bit tests at all.
#[inline]
pub(crate) fn fold_selection(state: &mut AggState, chunk: &[Value], sel: u64) {
    if sel == 0 {
        return;
    }
    let mut count = 0u64;
    let mut sum = 0i64;
    let mut spill = 0i128;
    let mut min = Value::MAX;
    let mut max = Value::MIN;
    if sel == !0u64 && chunk.len() == WORD_BITS {
        for &v in chunk {
            count += 1;
            match sum.checked_add(v) {
                Some(s) => sum = s,
                None => {
                    spill += sum as i128;
                    sum = v;
                }
            }
            min = min.min(v);
            max = max.max(v);
        }
    } else {
        let mut sel = sel;
        while sel != 0 {
            let bit = sel.trailing_zeros() as usize;
            sel &= sel - 1;
            let v = chunk[bit];
            count += 1;
            match sum.checked_add(v) {
                Some(s) => sum = s,
                None => {
                    spill += sum as i128;
                    sum = v;
                }
            }
            min = min.min(v);
            max = max.max(v);
        }
    }
    state.push_block(count, spill + sum as i128, min, max);
}

/// Collect active rows in `[lo, hi)` matching `pred` into `out`
/// (ascending row order). `values` and `words` span the whole table.
pub fn scan_active_into(
    values: &[Value],
    words: &[u64],
    lo: usize,
    hi: usize,
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) {
    let hi = hi.min(values.len());
    if lo >= hi || pred.is_empty() {
        return;
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        if active == 0 {
            continue; // all-forgotten word: values never touched
        }
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        emit_selection(selection_word(chunk, active, pred, imp), base, out);
    }
}

/// Collect *all* physical rows in `[lo, hi)` matching `pred` (forgotten
/// included) into `out` — the "complete scan" regime of paper §1.
pub fn scan_all_into(
    values: &[Value],
    lo: usize,
    hi: usize,
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) {
    let hi = hi.min(values.len());
    if lo >= hi || pred.is_empty() {
        return;
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    for wi in first..=last {
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        let sel = clip_word(predicate_mask(chunk, pred.lo, pred.hi, imp), wi, lo, hi);
        emit_selection(sel, base, out);
    }
}

/// Count active rows in `[lo, hi)` matching `pred` without materializing
/// row ids: one popcount per word of selected rows.
pub fn count_active(
    values: &[Value],
    words: &[u64],
    lo: usize,
    hi: usize,
    pred: RangePredicate,
) -> usize {
    let hi = hi.min(values.len());
    if lo >= hi || pred.is_empty() {
        return 0;
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    let mut count = 0usize;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        if active == 0 {
            continue;
        }
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        count += selection_word(chunk, active, pred, imp).count_ones() as usize;
    }
    count
}

/// Fused filter + aggregate over active rows in `[lo, hi)`: one pass
/// builds the selection mask and folds matching values. Returns the state
/// and the number of *active* rows examined (the executor's
/// `rows_scanned`). All-selected words fold slice-at-a-time.
pub fn aggregate_active(
    values: &[Value],
    words: &[u64],
    lo: usize,
    hi: usize,
    pred: Option<RangePredicate>,
) -> (AggState, usize) {
    let hi = hi.min(values.len());
    let mut state = AggState::new();
    if lo >= hi {
        return (state, 0);
    }
    if pred.is_some_and(|p| p.is_empty()) {
        // Predicate selects nothing, but the scan still visits every
        // active row (scanned mirrors the row-at-a-time semantics).
        // masked_word tolerates a words slice shorter than the value
        // range, matching the iterator-driven loops below.
        let scanned: usize = (lo / WORD_BITS..=(hi - 1) / WORD_BITS)
            .map(|wi| amnesia_util::bitmap::masked_word(words, wi, lo, hi).count_ones() as usize)
            .sum();
        return (state, scanned);
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    let mut scanned = 0usize;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        scanned += active.count_ones() as usize;
        if active == 0 {
            continue;
        }
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        let sel = match pred {
            Some(p) => selection_word(chunk, active, p, imp),
            None => active,
        };
        fold_selection(&mut state, chunk, sel);
    }
    (state, scanned)
}

/// Can any active value in the zone's word satisfy `pred`?
///
/// Zones carry *inclusive* bounds over active rows; `pred.hi` is
/// exclusive. A stale zone is only ever wider than the truth, so a `false`
/// here is always safe to skip on.
#[inline]
fn zone_may_match(z: &Zone, pred: RangePredicate) -> bool {
    z.active > 0 && z.min < pred.hi && z.max >= pred.lo
}

/// Work accounting returned by the zone-pruned kernels: how many words
/// the zones skipped outright and how many active rows were actually
/// examined. The gap between `rows_scanned` and the table's active count
/// is the work the metadata saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneStats {
    /// Words skipped because min/max proved the predicate can't match.
    pub words_pruned: usize,
    /// Active rows whose values were examined.
    pub rows_scanned: usize,
}

impl ZoneStats {
    /// Fold in another chunk's accounting (parallel partials).
    pub fn merge(&mut self, other: ZoneStats) {
        self.words_pruned += other.words_pruned;
        self.rows_scanned += other.rows_scanned;
    }
}

/// Zone-pruned [`scan_active_into`]: identical results, but each word
/// consults `zones[word_index]` (from
/// [`WordZoneMap::zones`](amnesia_columnar::zonemap::WordZoneMap::zones))
/// before touching values. Words beyond `zones` are scanned unpruned, so
/// a short zone slice degrades to correctness, never to wrong answers.
pub fn scan_active_zoned_into(
    values: &[Value],
    words: &[u64],
    zones: &[Zone],
    lo: usize,
    hi: usize,
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) -> ZoneStats {
    let hi = hi.min(values.len());
    let mut stats = ZoneStats::default();
    if lo >= hi || pred.is_empty() {
        return stats;
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        if active == 0 {
            continue; // all-forgotten word: free before zones even apply
        }
        if let Some(z) = zones.get(wi) {
            if !zone_may_match(z, pred) {
                stats.words_pruned += 1;
                continue;
            }
        }
        stats.rows_scanned += active.count_ones() as usize;
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        emit_selection(selection_word(chunk, active, pred, imp), base, out);
    }
    stats
}

/// Zone-pruned [`count_active`]: returns the match count plus accounting.
pub fn count_active_zoned(
    values: &[Value],
    words: &[u64],
    zones: &[Zone],
    lo: usize,
    hi: usize,
    pred: RangePredicate,
) -> (usize, ZoneStats) {
    let hi = hi.min(values.len());
    let mut stats = ZoneStats::default();
    if lo >= hi || pred.is_empty() {
        return (0, stats);
    }
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    let mut count = 0usize;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        if active == 0 {
            continue;
        }
        if let Some(z) = zones.get(wi) {
            if !zone_may_match(z, pred) {
                stats.words_pruned += 1;
                continue;
            }
        }
        stats.rows_scanned += active.count_ones() as usize;
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        count += selection_word(chunk, active, pred, imp).count_ones() as usize;
    }
    (count, stats)
}

/// Zone-pruned fused filter+aggregate. Zone pruning *reduces*
/// `rows_scanned` relative to [`aggregate_active`] — the delta is work
/// the metadata saved, which the executor reports per query.
pub fn aggregate_active_zoned(
    values: &[Value],
    words: &[u64],
    zones: &[Zone],
    lo: usize,
    hi: usize,
    pred: Option<RangePredicate>,
) -> (AggState, ZoneStats) {
    let hi = hi.min(values.len());
    let mut state = AggState::new();
    let mut stats = ZoneStats::default();
    if lo >= hi {
        return (state, stats);
    }
    let fallthrough = match pred {
        // No predicate: zones cannot prune (every active row
        // contributes); empty predicate: nothing to prune toward.
        None => true,
        Some(p) => p.is_empty(),
    };
    if fallthrough {
        let (state, scanned) = aggregate_active(values, words, lo, hi, pred);
        stats.rows_scanned = scanned;
        return (state, stats);
    }
    let p = pred.expect("non-empty predicate");
    let imp = mask_impl();
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let active = clip_word(word, wi, lo, hi);
        if active == 0 {
            continue;
        }
        if let Some(z) = zones.get(wi) {
            if !zone_may_match(z, p) {
                stats.words_pruned += 1;
                continue;
            }
        }
        stats.rows_scanned += active.count_ones() as usize;
        let base = wi * WORD_BITS;
        let chunk = &values[base..hi.min(base + WORD_BITS)];
        fold_selection(&mut state, chunk, selection_word(chunk, active, p, imp));
    }
    (state, stats)
}

/// Scan one frozen compressed block: fused decode+filter through the
/// codec, masks ANDed with the block's activity words, positions emitted
/// relative to `base_row` (which must be word-aligned). `mask_buf` is a
/// scratch buffer reused across blocks.
fn scan_frozen_block_into(
    block: &amnesia_columnar::compress::EncodedBlock,
    words: &[u64],
    base_row: usize,
    pred: RangePredicate,
    mask_buf: &mut Vec<u64>,
    out: &mut Vec<RowId>,
) {
    debug_assert!(base_row.is_multiple_of(WORD_BITS));
    let base_word = base_row / WORD_BITS;
    let nwords = block.len().div_ceil(WORD_BITS);
    // All-forgotten block: skip the decode entirely — forgetting keeps
    // making scans cheaper, even compressed ones.
    let block_words = words
        .get(base_word..(base_word + nwords).min(words.len()))
        .unwrap_or(&[]);
    if block_words.iter().all(|&w| w == 0) {
        return;
    }
    block.filter_range_masks(pred.lo, pred.hi, mask_buf);
    for (k, &m) in mask_buf.iter().enumerate() {
        let sel = m & block_words.get(k).copied().unwrap_or(0);
        emit_selection(sel, base_row + k * WORD_BITS, out);
    }
}

/// Assert the segmented column's blocks tile whole activity words — the
/// alignment every compressed kernel relies on.
#[inline]
fn assert_word_aligned(col: &SegmentedColumn) {
    assert!(
        col.block_rows().is_multiple_of(WORD_BITS),
        "block size {} must be a whole number of {WORD_BITS}-row words",
        col.block_rows()
    );
}

/// Scan the frozen blocks `[first_block, last_block)` of a compressed
/// column — the parallel kernels' per-chunk primitive. Blocks are
/// word-aligned by construction, so chunking at block boundaries never
/// splits an activity word across threads.
pub fn scan_compressed_blocks_into(
    col: &SegmentedColumn,
    words: &[u64],
    first_block: usize,
    last_block: usize,
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) {
    assert_word_aligned(col);
    let br = col.block_rows();
    let mut mask_buf = Vec::new();
    for b in first_block..last_block.min(col.frozen_segments()) {
        let block = col.frozen_block(b).expect("frozen block in range");
        scan_frozen_block_into(block, words, b * br, pred, &mut mask_buf, out);
    }
}

/// Scan the uncompressed tail of a compressed column with the regular
/// raw-slice kernel (the tail start is word-aligned because every frozen
/// block is).
pub fn scan_compressed_tail_into(
    col: &SegmentedColumn,
    words: &[u64],
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) {
    assert_word_aligned(col);
    let tail = col.tail_values();
    let tail_start = col.frozen_segments() * col.block_rows();
    let imp = mask_impl();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let active = tail_word(words, wi, chunk.len());
        if active == 0 {
            continue;
        }
        let base = tail_start + j * WORD_BITS;
        emit_selection(selection_word(chunk, active, pred, imp), base, out);
    }
}

/// Activity word `wi` clipped to the `chunk_len` rows the compressed
/// snapshot actually covers. The live table may have grown past the
/// snapshot, in which case the word carries activity bits for rows the
/// snapshot does not hold — scanning those would index past the chunk.
#[inline]
pub(crate) fn tail_word(words: &[u64], wi: usize, chunk_len: usize) -> u64 {
    let word = words.get(wi).copied().unwrap_or(0);
    if chunk_len >= WORD_BITS {
        word
    } else {
        word & ((1u64 << chunk_len) - 1)
    }
}

/// Scan a compressed (segmented) column for active rows matching `pred`:
/// every frozen block runs the fused decode+filter path, the uncompressed
/// tail runs the regular raw-slice kernel. `words` spans the whole
/// column. The column's block size must be a whole number of activity
/// words (the default, 1024, is 16 words).
pub fn scan_compressed_active_into(
    col: &SegmentedColumn,
    words: &[u64],
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) {
    if pred.is_empty() || col.is_empty() {
        return;
    }
    scan_compressed_blocks_into(col, words, 0, col.frozen_segments(), pred, out);
    scan_compressed_tail_into(col, words, pred, out);
}

/// Count active matches in a compressed column without materializing row
/// ids — one popcount per selection word, runs and dictionary fast paths
/// included.
pub fn count_compressed_active(
    col: &SegmentedColumn,
    words: &[u64],
    pred: RangePredicate,
) -> usize {
    if pred.is_empty() || col.is_empty() {
        return 0;
    }
    assert_word_aligned(col);
    let br = col.block_rows();
    let mut count = 0usize;
    let mut mask_buf = Vec::new();
    for b in 0..col.frozen_segments() {
        let block = col.frozen_block(b).expect("frozen block in range");
        let base_word = b * br / WORD_BITS;
        let nwords = block.len().div_ceil(WORD_BITS);
        let block_words = words
            .get(base_word..(base_word + nwords).min(words.len()))
            .unwrap_or(&[]);
        if block_words.iter().all(|&w| w == 0) {
            continue;
        }
        block.filter_range_masks(pred.lo, pred.hi, &mut mask_buf);
        for (k, &m) in mask_buf.iter().enumerate() {
            count += (m & block_words.get(k).copied().unwrap_or(0)).count_ones() as usize;
        }
    }
    let tail = col.tail_values();
    let tail_start = col.frozen_segments() * br;
    let imp = mask_impl();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let active = tail_word(words, wi, chunk.len());
        if active == 0 {
            continue;
        }
        count += selection_word(chunk, active, pred, imp).count_ones() as usize;
    }
    count
}

// ---------------------------------------------------------------------
// Tier-aware kernels: scans and aggregates straight over a TieredColumn
// (frozen compressed blocks + hot tail) — the storage's resting state,
// not a snapshot.
// ---------------------------------------------------------------------

/// Work accounting for the tier-aware kernels: how many frozen blocks the
/// cached [`BlockMeta`](amnesia_columnar::BlockMeta) pruned before their
/// payloads were touched, and how many active rows were examined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Frozen blocks skipped because meta proved the predicate can't
    /// match (fully-forgotten blocks included).
    pub blocks_pruned: usize,
    /// Active rows whose values (compressed or hot) were examined.
    pub rows_scanned: usize,
}

impl TierStats {
    /// Fold in another chunk's accounting (parallel partials).
    pub fn merge(&mut self, other: TierStats) {
        self.blocks_pruned += other.blocks_pruned;
        self.rows_scanned += other.rows_scanned;
    }
}

/// The activity words covering frozen block `b` of `tier` (block-local
/// indexing: bit `i` of word `i/64` is row `b * block_rows + i`). Blocks
/// are word-aligned by construction.
#[inline]
pub(crate) fn block_words<'a>(tier: &TieredColumn, words: &'a [u64], b: usize) -> &'a [u64] {
    let base_word = b * tier.block_rows() / WORD_BITS;
    let nwords = tier.block_rows() / WORD_BITS;
    words
        .get(base_word..(base_word + nwords).min(words.len()))
        .unwrap_or(&[])
}

/// Scan frozen blocks `[first, last)` of a tiered column for active rows
/// matching `pred` — the per-chunk primitive behind both the serial and
/// the parallel tiered scans. Each block is pruned by its cached meta
/// (min/max over active rows, active count) before the codec's fused
/// `filter_range_masks` runs; surviving masks AND with the activity
/// words and feed the shared emit loop.
pub fn scan_tiered_blocks_into(
    tier: &TieredColumn,
    words: &[u64],
    first: usize,
    last: usize,
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) -> TierStats {
    let mut stats = TierStats::default();
    let br = tier.block_rows();
    let mut mask_buf = Vec::new();
    for b in first..last.min(tier.frozen_blocks()) {
        let f = tier.frozen(b).expect("frozen block in range");
        let meta = f.meta();
        if !meta.may_match(pred.lo, pred.hi) {
            stats.blocks_pruned += 1;
            continue;
        }
        tier.note_block_access(b);
        let bw = block_words(tier, words, b);
        f.encoded()
            .filter_range_masks(pred.lo, pred.hi, &mut mask_buf);
        stats.rows_scanned += meta.active;
        for (k, &m) in mask_buf.iter().enumerate() {
            let sel = m & bw.get(k).copied().unwrap_or(0);
            emit_selection(sel, b * br + k * WORD_BITS, out);
        }
    }
    stats
}

/// Scan the hot tail of a tiered column with the raw-slice selection
/// kernel (the tail start is word-aligned because frozen blocks tile
/// whole activity words). Returns active rows examined.
pub fn scan_tiered_tail_into(
    tier: &TieredColumn,
    words: &[u64],
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) -> usize {
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    let imp = mask_impl();
    let mut scanned = 0usize;
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let active = tail_word(words, wi, chunk.len());
        if active == 0 {
            continue;
        }
        scanned += active.count_ones() as usize;
        let base = tail_start + j * WORD_BITS;
        emit_selection(selection_word(chunk, active, pred, imp), base, out);
    }
    scanned
}

/// Scan a tiered column for active rows matching `pred`: frozen blocks
/// run meta-pruned fused decode+filter, the hot tail runs the raw-slice
/// kernel. Results are identical to a flat scan of the same logical
/// column.
pub fn scan_tiered_active_into(
    tier: &TieredColumn,
    words: &[u64],
    pred: RangePredicate,
    out: &mut Vec<RowId>,
) -> TierStats {
    if pred.is_empty() || tier.is_empty() {
        return TierStats::default();
    }
    let mut stats = scan_tiered_blocks_into(tier, words, 0, tier.frozen_blocks(), pred, out);
    stats.rows_scanned += scan_tiered_tail_into(tier, words, pred, out);
    stats
}

/// Count active matches in a tiered column without materializing row ids.
pub fn count_tiered_active(
    tier: &TieredColumn,
    words: &[u64],
    pred: RangePredicate,
) -> (usize, TierStats) {
    let mut stats = TierStats::default();
    if pred.is_empty() || tier.is_empty() {
        return (0, stats);
    }
    let mut count = 0usize;
    let mut mask_buf = Vec::new();
    for b in 0..tier.frozen_blocks() {
        let f = tier.frozen(b).expect("frozen block in range");
        let meta = f.meta();
        if !meta.may_match(pred.lo, pred.hi) {
            stats.blocks_pruned += 1;
            continue;
        }
        tier.note_block_access(b);
        let bw = block_words(tier, words, b);
        f.encoded()
            .filter_range_masks(pred.lo, pred.hi, &mut mask_buf);
        stats.rows_scanned += meta.active;
        for (k, &m) in mask_buf.iter().enumerate() {
            count += (m & bw.get(k).copied().unwrap_or(0)).count_ones() as usize;
        }
    }
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    let imp = mask_impl();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let active = tail_word(words, wi, chunk.len());
        if active == 0 {
            continue;
        }
        stats.rows_scanned += active.count_ones() as usize;
        count += selection_word(chunk, active, pred, imp).count_ones() as usize;
    }
    (count, stats)
}

/// Fold frozen blocks `[first, last)` into an aggregate state via the
/// codecs' fused `fold_range_masked` — SUM/COUNT/MIN/MAX accumulate in
/// code/offset/run space and the block is never decoded (the
/// `agg_compressed` path the compressed benches measure).
pub fn agg_compressed_blocks(
    tier: &TieredColumn,
    words: &[u64],
    first: usize,
    last: usize,
    pred: Option<RangePredicate>,
) -> (AggState, TierStats) {
    let mut state = AggState::new();
    let mut stats = TierStats::default();
    let filter = pred.map(|p| (p.lo, p.hi));
    for b in first..last.min(tier.frozen_blocks()) {
        let f = tier.frozen(b).expect("frozen block in range");
        let meta = f.meta();
        if meta.active == 0 {
            stats.blocks_pruned += 1;
            continue;
        }
        if let Some(p) = pred {
            if !meta.may_match(p.lo, p.hi) {
                stats.blocks_pruned += 1;
                continue;
            }
        }
        tier.note_block_access(b);
        let mut agg = BlockAgg::new();
        f.encoded()
            .fold_range_masked(filter, block_words(tier, words, b), &mut agg);
        stats.rows_scanned += meta.active;
        if agg.count > 0 {
            state.push_block(agg.count, agg.sum, agg.min, agg.max);
        }
    }
    (state, stats)
}

/// Fold the hot tail of a tiered column (fused filter+aggregate over the
/// raw slice). Returns the partial state and active rows examined.
pub fn agg_tiered_tail(
    tier: &TieredColumn,
    words: &[u64],
    pred: Option<RangePredicate>,
) -> (AggState, usize) {
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    let imp = mask_impl();
    let mut state = AggState::new();
    let mut scanned = 0usize;
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let active = tail_word(words, wi, chunk.len());
        scanned += active.count_ones() as usize;
        if active == 0 {
            continue;
        }
        let sel = match pred {
            Some(p) => selection_word(chunk, active, p, imp),
            None => active,
        };
        fold_selection(&mut state, chunk, sel);
    }
    (state, scanned)
}

/// Fused filter+aggregate over a tiered column: frozen blocks fold
/// through [`agg_compressed_blocks`] (no decode), the hot tail through
/// the raw-slice path. `rows_scanned` mirrors the flat kernels' contract
/// (active rows examined; meta-pruned blocks are skipped, which is the
/// work the metadata saved). An empty predicate still reports every
/// active row as scanned, matching [`aggregate_active`].
pub fn aggregate_tiered_active(
    tier: &TieredColumn,
    words: &[u64],
    pred: Option<RangePredicate>,
) -> (AggState, TierStats) {
    let mut stats = TierStats::default();
    if tier.is_empty() {
        return (AggState::new(), stats);
    }
    if pred.is_some_and(|p| p.is_empty()) {
        // Predicate selects nothing, but the scan still visits every
        // active row (mirrors the flat kernel's accounting).
        let n = tier.len();
        let scanned: usize = (0..n.div_ceil(WORD_BITS))
            .map(|wi| amnesia_util::bitmap::masked_word(words, wi, 0, n).count_ones() as usize)
            .sum();
        stats.rows_scanned = scanned;
        return (AggState::new(), stats);
    }
    let (mut state, mut stats2) = agg_compressed_blocks(tier, words, 0, tier.frozen_blocks(), pred);
    let (tail_state, tail_scanned) = agg_tiered_tail(tier, words, pred);
    state.merge(&tail_state);
    stats2.rows_scanned += tail_scanned;
    stats.merge(stats2);
    (state, stats)
}

/// Complete-scan variant over a tiered column: *all* physical rows
/// matching `pred`, forgotten included (paper §1's "a complete scan will
/// fetch all data"). Frozen blocks answer through `filter_range_masks`
/// with no activity AND; dropped blocks contribute nothing — their
/// values were surrendered, which is the one place the complete-scan
/// regime observes tiering (the store layer never drops blocks under
/// that regime).
pub fn scan_tiered_all_into(tier: &TieredColumn, pred: RangePredicate, out: &mut Vec<RowId>) {
    if pred.is_empty() || tier.is_empty() {
        return;
    }
    let br = tier.block_rows();
    let mut mask_buf = Vec::new();
    for b in 0..tier.frozen_blocks() {
        let f = tier.frozen(b).expect("frozen block in range");
        if f.is_dropped() {
            continue;
        }
        f.encoded()
            .filter_range_masks(pred.lo, pred.hi, &mut mask_buf);
        for (k, &m) in mask_buf.iter().enumerate() {
            emit_selection(m, b * br + k * WORD_BITS, out);
        }
    }
    let tail_start = tier.hot_start();
    let imp = mask_impl();
    for (j, chunk) in tier.hot_values().chunks(WORD_BITS).enumerate() {
        let sel = predicate_mask(chunk, pred.lo, pred.hi, imp);
        emit_selection(sel, tail_start + j * WORD_BITS, out);
    }
}

// ---------------------------------------------------------------------
// Tier-aware join kernels: hash-probe frozen blocks in compressed space.
//
// The build side streams keys through `EncodedBlock::for_each_active`
// (and its run/dictionary specializations) in `crate::join`; the probe
// side lives here because it shares the tier plumbing (block words, meta
// pruning, tail clipping) with the scan kernels above. The contract
// mirrors the scans: results are identical to materializing the probe
// column densely and walking it row-at-a-time, but frozen blocks are
// probed in their compressed domain — RLE touches the hash table once
// per run, dictionaries translate the whole lookup into a per-code match
// table computed once per block, FOR/delta/plain stream active rows
// through `for_each_active` without a `Vec<Value>` detour — and blocks
// whose cached meta cannot intersect the build side's key range are
// skipped before their payload is touched.
// ---------------------------------------------------------------------

/// Work accounting for the tiered join probe: frozen probe blocks pruned
/// against the build side's key range, and the active probe rows those
/// skips avoided streaming. The gap between the probe side's active count
/// and `probe_rows_skipped` is the work actually done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Frozen probe blocks skipped (meta disjoint from the build keys,
    /// fully-forgotten, or probed against an empty build side).
    pub blocks_pruned: usize,
    /// Active probe rows inside those skipped blocks.
    pub probe_rows_skipped: usize,
}

impl ProbeStats {
    /// Fold in another chunk's accounting (parallel partials).
    pub fn merge(&mut self, other: ProbeStats) {
        self.blocks_pruned += other.blocks_pruned;
        self.probe_rows_skipped += other.probe_rows_skipped;
    }
}

/// Probe frozen blocks `[first, last)` of a tiered column against a hash
/// table *in compressed space* — the per-chunk primitive behind
/// [`probe_tiered`] and the parallel join. `on_hit(payload, probe_row)`
/// fires for every active probe row whose key is in `build`, in ascending
/// probe-row order (the order a dense probe would emit). `key_range` is
/// the inclusive `[min, max]` of the build keys; blocks whose cached meta
/// cannot intersect it are skipped before their payload is touched
/// (`None` means the build side is empty and every block skips).
pub fn probe_tiered_blocks_with<T>(
    tier: &TieredColumn,
    words: &[u64],
    first: usize,
    last: usize,
    build: &HashMap<Value, T>,
    key_range: Option<(Value, Value)>,
    mut on_hit: impl FnMut(&T, usize),
) -> ProbeStats {
    let mut stats = ProbeStats::default();
    let br = tier.block_rows();
    for b in first..last.min(tier.frozen_blocks()) {
        let f = tier.frozen(b).expect("frozen block in range");
        let meta = f.meta();
        if meta.active == 0 {
            stats.blocks_pruned += 1;
            continue;
        }
        let in_range = match key_range {
            Some((lo, hi)) => meta.may_match_inclusive(lo, hi),
            None => false,
        };
        if !in_range {
            stats.blocks_pruned += 1;
            stats.probe_rows_skipped += meta.active;
            continue;
        }
        tier.note_block_access(b);
        let bw = block_words(tier, words, b);
        let base = b * br;
        let block = f.encoded();
        match block.encoding() {
            // One hash lookup per *run*, fanned over the run's active
            // rows — a long matching run costs its emits, a long missing
            // run costs one lookup.
            Encoding::Rle => rle::for_each_run(block.data(), |v, start, len| {
                if let Some(t) = build.get(&v) {
                    for_each_set_bit_in(bw, start, start + len, |row| on_hit(t, base + row));
                }
            }),
            // The whole hash lookup collapses to a code → match table
            // computed once per block dictionary; the row walk then tests
            // packed codes without reconstructing a single value.
            Encoding::Dict => {
                let dictionary = dict::read_dictionary(block.data());
                let matches: Vec<Option<&T>> = dictionary.iter().map(|v| build.get(v)).collect();
                dict::for_each_active_code(block.data(), bw, |row, code| {
                    if let Some(t) = matches[code as usize] {
                        on_hit(t, base + row);
                    }
                });
            }
            // FOR / delta / plain stream active rows in their own domain
            // (offset rebase, prefix walk, raw reads) — parsed once, no
            // dense materialization.
            _ => block.for_each_active(bw, |row, v| {
                if let Some(t) = build.get(&v) {
                    on_hit(t, base + row);
                }
            }),
        }
    }
    stats
}

/// Probe the hot tail of a tiered column: a direct slice walk over the
/// uncompressed values, one hash lookup per active row, ascending.
pub fn probe_tiered_tail_with<T>(
    tier: &TieredColumn,
    words: &[u64],
    build: &HashMap<Value, T>,
    mut on_hit: impl FnMut(&T, usize),
) {
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let mut active = tail_word(words, wi, chunk.len());
        let base = tail_start + j * WORD_BITS;
        while active != 0 {
            let bit = active.trailing_zeros() as usize;
            active &= active - 1;
            if let Some(t) = build.get(&chunk[bit]) {
                on_hit(t, base + bit);
            }
        }
    }
}

/// Probe rows `[lo, hi)` of a flat (fully hot) column slice: the
/// word-masked equivalent of the tail probe, used by the parallel join to
/// chunk a hot probe side. `values` and `words` span the whole column.
pub fn probe_hot_with<T>(
    values: &[Value],
    words: &[u64],
    lo: usize,
    hi: usize,
    build: &HashMap<Value, T>,
    mut on_hit: impl FnMut(&T, usize),
) {
    let hi = hi.min(values.len());
    if lo >= hi {
        return;
    }
    let first = lo / WORD_BITS;
    let last = (hi - 1) / WORD_BITS;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let mut active = clip_word(word, wi, lo, hi);
        let base = wi * WORD_BITS;
        while active != 0 {
            let bit = active.trailing_zeros() as usize;
            active &= active - 1;
            if let Some(t) = build.get(&values[base + bit]) {
                on_hit(t, base + bit);
            }
        }
    }
}

/// Probe a whole tiered column against a hash table: frozen blocks in
/// compressed space behind key-range meta pruning, then the hot tail as a
/// direct slice walk. `on_hit` fires in ascending probe-row order —
/// identical to probing a dense materialization of the column.
pub fn probe_tiered_with<T>(
    tier: &TieredColumn,
    words: &[u64],
    build: &HashMap<Value, T>,
    key_range: Option<(Value, Value)>,
    mut on_hit: impl FnMut(&T, usize),
) -> ProbeStats {
    let stats = probe_tiered_blocks_with(
        tier,
        words,
        0,
        tier.frozen_blocks(),
        build,
        key_range,
        &mut on_hit,
    );
    probe_tiered_tail_with(tier, words, build, on_hit);
    stats
}

/// Pair-emitting [`probe_tiered_with`]: the hash-join probe. Appends
/// `(build row, probe row)` pairs grouped by probe row (right-major), the
/// exact order the dense hash join emits.
pub fn probe_tiered(
    tier: &TieredColumn,
    words: &[u64],
    build: &HashMap<Value, Vec<RowId>>,
    key_range: Option<(Value, Value)>,
    out: &mut Vec<(RowId, RowId)>,
) -> ProbeStats {
    probe_tiered_with(tier, words, build, key_range, |ls, row| {
        out.extend(ls.iter().map(|&l| (l, RowId::from(row))));
    })
}

pub mod scalar {
    //! Row-at-a-time reference kernels.
    //!
    //! These are the pre-vectorization implementations, kept verbatim as
    //! the behavioral reference: `tests/kernel_equivalence.rs` asserts the
    //! batch kernels return identical results, and the `scan_kernels` /
    //! `parallel_scan` benches measure the speedup against them.

    use super::*;

    /// Row-at-a-time [`scan_active_into`] equivalent.
    pub fn range_scan_active(table: &Table, col: usize, pred: RangePredicate) -> Vec<RowId> {
        let mut out = Vec::new();
        let column = table.column(col);
        for row in table.iter_active() {
            if pred.matches(column.get(row.as_usize())) {
                out.push(row);
            }
        }
        out
    }

    /// Row-at-a-time [`scan_all_into`] equivalent.
    pub fn range_scan_all(table: &Table, col: usize, pred: RangePredicate) -> Vec<RowId> {
        let column = table.column(col);
        (0..table.num_rows())
            .filter(|&r| pred.matches(column.get(r)))
            .map(RowId::from)
            .collect()
    }

    /// Row-at-a-time [`count_active`] equivalent.
    pub fn count_active_matches(table: &Table, col: usize, pred: RangePredicate) -> usize {
        let column = table.column(col);
        table
            .iter_active()
            .filter(|r| pred.matches(column.get(r.as_usize())))
            .count()
    }

    /// Row-at-a-time [`aggregate_active`](super::aggregate_active).
    pub fn aggregate_active(
        table: &Table,
        col: usize,
        pred: Option<RangePredicate>,
        kind: AggKind,
    ) -> (Option<f64>, usize) {
        let column = table.column(col);
        let mut state = AggState::new();
        let mut scanned = 0usize;
        for row in table.iter_active() {
            scanned += 1;
            let v = column.get(row.as_usize());
            if pred.is_none_or(|p| p.matches(v)) {
                state.push(v);
            }
        }
        (state.finalize(kind), scanned)
    }

    /// Row-at-a-time blocked scan (zone-map pruned path reference).
    pub fn range_scan_blocks(
        table: &Table,
        col: usize,
        pred: RangePredicate,
        blocks: &[usize],
        block_rows: usize,
    ) -> Vec<RowId> {
        let mut out = Vec::new();
        let column = table.column(col);
        let activity = table.activity();
        let n = table.num_rows();
        for &b in blocks {
            let lo = b * block_rows;
            let hi = (lo + block_rows).min(n);
            for r in lo..hi {
                let id = RowId::from(r);
                if activity.is_active(id) && pred.matches(column.get(r)) {
                    out.push(id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;
    use amnesia_util::SimRng;

    fn table(n: usize, forget_every: usize) -> Table {
        let mut rng = SimRng::new(42);
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 1000)).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        if forget_every > 0 {
            for r in (0..n).step_by(forget_every) {
                t.forget(RowId::from(r), 1).unwrap();
            }
        }
        t
    }

    #[test]
    fn predicate_mask_bits_match_predicate() {
        let values: Vec<i64> = (0..64).collect();
        let m = predicate_mask(&values, 10, 20, mask_impl());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(m >> i & 1 == 1, (10..20).contains(&v), "bit {i}");
        }
        // Short (tail) chunk: high bits stay clear.
        let m = predicate_mask(&values[..5], 0, 1000, mask_impl());
        assert_eq!(m, 0b11111);
    }

    #[test]
    fn clip_word_bounds() {
        // Algebra lives in amnesia_util; spot-check it from the consumer
        // side so kernel assumptions stay pinned.
        assert_eq!(clip_word(!0, 0, 0, 64), !0);
        assert_eq!(clip_word(!0, 0, 3, 64), !0 << 3);
        assert_eq!(clip_word(!0, 1, 0, 70), (1 << 6) - 1);
        assert_eq!(clip_word(!0, 1, 130, 200), 0);
        assert_eq!(clip_word(!0, 3, 0, 64), 0);
    }

    #[test]
    fn scan_matches_scalar_on_awkward_sizes() {
        for n in [0usize, 1, 63, 64, 65, 1023, 1024, 1025] {
            for forget_every in [0usize, 3] {
                let t = table(n, forget_every);
                let pred = RangePredicate::new(100, 600);
                let mut got = Vec::new();
                scan_active_into(t.col_values(0), t.activity_words(), 0, n, pred, &mut got);
                assert_eq!(
                    got,
                    scalar::range_scan_active(&t, 0, pred),
                    "n={n} forget_every={forget_every}"
                );
            }
        }
    }

    #[test]
    fn subrange_scan_masks_boundaries() {
        let t = table(300, 4);
        let pred = RangePredicate::new(0, 1000); // everything matches
        for (lo, hi) in [
            (0, 300),
            (1, 299),
            (63, 65),
            (64, 128),
            (100, 100),
            (170, 300),
        ] {
            let mut got = Vec::new();
            scan_active_into(t.col_values(0), t.activity_words(), lo, hi, pred, &mut got);
            let expect: Vec<RowId> = t
                .iter_active()
                .filter(|r| (lo..hi).contains(&r.as_usize()))
                .collect();
            assert_eq!(got, expect, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn count_equals_scan_len() {
        let t = table(5000, 7);
        let pred = RangePredicate::new(250, 500);
        let mut rows = Vec::new();
        scan_active_into(
            t.col_values(0),
            t.activity_words(),
            0,
            5000,
            pred,
            &mut rows,
        );
        assert_eq!(
            count_active(t.col_values(0), t.activity_words(), 0, 5000, pred),
            rows.len()
        );
    }

    #[test]
    fn fused_aggregate_matches_scalar() {
        let t = table(4097, 5);
        for pred in [None, Some(RangePredicate::new(200, 800))] {
            let (state, scanned) =
                aggregate_active(t.col_values(0), t.activity_words(), 0, 4097, pred);
            for kind in AggKind::ALL {
                let (expect, expect_scanned) = scalar::aggregate_active(&t, 0, pred, kind);
                assert_eq!(state.finalize(kind), expect, "{kind:?} pred={pred:?}");
                assert_eq!(scanned, expect_scanned);
            }
        }
    }

    #[test]
    fn aggregate_empty_predicate_still_scans() {
        let t = table(100, 3);
        let (state, scanned) = aggregate_active(
            t.col_values(0),
            t.activity_words(),
            0,
            100,
            Some(RangePredicate::new(50, 10)),
        );
        assert_eq!(state.count(), 0);
        assert_eq!(scanned, t.active_rows());
    }

    #[test]
    fn all_selected_fast_path_engages() {
        // No forgetting, predicate matches everything: every full word
        // takes the slice-fold path; result must still be exact.
        let t = table(640, 0);
        let (state, scanned) = aggregate_active(
            t.col_values(0),
            t.activity_words(),
            0,
            640,
            Some(RangePredicate::new(0, 1000)),
        );
        assert_eq!(state.count(), 640);
        assert_eq!(scanned, 640);
        let expect_sum: i128 = t.col_values(0).iter().map(|&v| v as i128).sum();
        assert_eq!(state.sum(), expect_sum);
    }

    #[test]
    fn agg_state_extremes() {
        let mut s = AggState::new();
        s.push(i64::MAX);
        s.push(i64::MAX);
        assert_eq!(s.finalize(AggKind::Sum), Some(2.0 * i64::MAX as f64));
        assert_eq!(s.finalize(AggKind::Avg), Some(i64::MAX as f64));
        let mut other = AggState::new();
        other.push(i64::MIN);
        s.merge(&other);
        assert_eq!(s.finalize(AggKind::Min), Some(i64::MIN as f64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn zoned_scan_matches_and_prunes() {
        use amnesia_columnar::WordZoneMap;
        // Sorted column: zones are tight, a narrow predicate prunes hard.
        let values: Vec<i64> = (0..10_000).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        for r in (0..10_000).step_by(9) {
            t.forget(RowId::from(r), 1).unwrap();
        }
        let wz = WordZoneMap::build(&t, 0);
        let pred = RangePredicate::new(4_000, 4_100);
        let n = t.num_rows();

        let mut plain = Vec::new();
        scan_active_into(t.col_values(0), t.activity_words(), 0, n, pred, &mut plain);
        let mut zoned = Vec::new();
        let stats = scan_active_zoned_into(
            t.col_values(0),
            t.activity_words(),
            wz.zones(),
            0,
            n,
            pred,
            &mut zoned,
        );
        assert_eq!(zoned, plain);
        // 10k rows = 157 words; ~2 words can match; everything else prunes.
        assert!(
            stats.words_pruned > 150,
            "pruned only {} words",
            stats.words_pruned
        );
        assert!(
            stats.rows_scanned < 200,
            "scanned {} rows",
            stats.rows_scanned
        );

        let (count, cstats) =
            count_active_zoned(t.col_values(0), t.activity_words(), wz.zones(), 0, n, pred);
        assert_eq!(count, plain.len());
        assert_eq!(cstats, stats);

        let (state, astats) = aggregate_active_zoned(
            t.col_values(0),
            t.activity_words(),
            wz.zones(),
            0,
            n,
            Some(pred),
        );
        let (want, want_scanned) =
            aggregate_active(t.col_values(0), t.activity_words(), 0, n, Some(pred));
        assert_eq!(state.finalize(AggKind::Sum), want.finalize(AggKind::Sum));
        assert_eq!(astats, stats);
        assert!(
            astats.rows_scanned < want_scanned,
            "zones must shrink scanned rows"
        );
    }

    #[test]
    fn zoned_kernels_tolerate_short_zone_slices() {
        let t = table(200, 3);
        let pred = RangePredicate::new(100, 600);
        let mut want = Vec::new();
        scan_active_into(t.col_values(0), t.activity_words(), 0, 200, pred, &mut want);
        // Empty zone slice: no pruning, same answer.
        let mut got = Vec::new();
        let stats = scan_active_zoned_into(
            t.col_values(0),
            t.activity_words(),
            &[],
            0,
            200,
            pred,
            &mut got,
        );
        assert_eq!(got, want);
        assert_eq!(stats.words_pruned, 0);
    }

    #[test]
    fn compressed_scan_matches_flat_scan() {
        let mut rng = amnesia_util::SimRng::new(9);
        let values: Vec<i64> = (0..5_000).map(|_| rng.range_i64(0, 500)).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        for r in (0..5_000).step_by(4) {
            t.forget(RowId::from(r), 1).unwrap();
        }
        let seg = t.compress_column(0);
        assert!(seg.frozen_segments() >= 4, "test must cover frozen blocks");
        assert!(!seg.tail_values().is_empty(), "test must cover the tail");
        for pred in [
            RangePredicate::new(100, 200),
            RangePredicate::new(0, 500),
            RangePredicate::new(900, 100),
        ] {
            let mut want = Vec::new();
            scan_active_into(
                t.col_values(0),
                t.activity_words(),
                0,
                5_000,
                pred,
                &mut want,
            );
            let mut got = Vec::new();
            scan_compressed_active_into(&seg, t.activity_words(), pred, &mut got);
            assert_eq!(got, want, "pred {pred:?}");
            assert_eq!(
                count_compressed_active(&seg, t.activity_words(), pred),
                want.len()
            );
        }
    }

    #[test]
    fn compressed_scan_tolerates_table_grown_past_snapshot() {
        // Regression: a compressed snapshot is a point-in-time copy; if
        // the live table grows afterwards, its activity words carry bits
        // for rows the snapshot's tail chunk does not hold. Those bits
        // must be clipped, not indexed.
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&(0..1_000).collect::<Vec<i64>>(), 0)
            .unwrap();
        for r in 960..1_000 {
            t.forget(RowId::from(r), 1).unwrap();
        }
        let seg = t.compress_column(0); // covers rows 0..1000
        t.insert_batch(&(1_000..1_010).collect::<Vec<i64>>(), 1)
            .unwrap();
        let pred = RangePredicate::new(0, 2_000);
        let mut got = Vec::new();
        scan_compressed_active_into(&seg, t.activity_words(), pred, &mut got);
        let expect: Vec<RowId> = (0..960).map(RowId::from).collect();
        assert_eq!(got, expect, "snapshot scan covers snapshot rows only");
        assert_eq!(
            count_compressed_active(&seg, t.activity_words(), pred),
            expect.len()
        );
    }

    #[test]
    fn tiered_kernels_match_flat_kernels() {
        let mut rng = amnesia_util::SimRng::new(13);
        let values: Vec<i64> = (0..6_000).map(|_| rng.range_i64(0, 700)).collect();
        let mut flat = Table::new(Schema::single("a"));
        flat.insert_batch(&values, 0).unwrap();
        let mut tiered = flat.clone();
        for r in (0..6_000).step_by(3) {
            flat.forget(RowId::from(r), 1).unwrap();
            tiered.forget(RowId::from(r), 1).unwrap();
        }
        tiered.freeze_upto(5_000); // 4 frozen blocks + hot tail
        assert_eq!(tiered.frozen_blocks(), 4);
        let words = tiered.activity_words();
        let tier = tiered.col_tier(0);
        for pred in [
            RangePredicate::new(100, 300),
            RangePredicate::new(0, 700),
            RangePredicate::new(650, 100),
        ] {
            let mut want = Vec::new();
            scan_active_into(
                flat.col_values(0),
                flat.activity_words(),
                0,
                6_000,
                pred,
                &mut want,
            );
            let mut got = Vec::new();
            scan_tiered_active_into(tier, words, pred, &mut got);
            assert_eq!(got, want, "scan {pred:?}");
            let (count, _) = count_tiered_active(tier, words, pred);
            assert_eq!(count, want.len(), "count {pred:?}");
            for predicate in [None, Some(pred)] {
                let (want_state, want_scanned) = aggregate_active(
                    flat.col_values(0),
                    flat.activity_words(),
                    0,
                    6_000,
                    predicate,
                );
                let (state, stats) = aggregate_tiered_active(tier, words, predicate);
                assert_eq!(state.count(), want_state.count(), "agg count {predicate:?}");
                assert_eq!(state.sum(), want_state.sum(), "agg sum {predicate:?}");
                for kind in AggKind::ALL {
                    assert_eq!(
                        state.finalize(kind),
                        want_state.finalize(kind),
                        "agg {kind:?} {predicate:?}"
                    );
                }
                assert!(
                    stats.rows_scanned <= want_scanned,
                    "meta may only shrink work"
                );
            }
            // Complete scan sees forgotten rows too.
            let mut want_all = Vec::new();
            scan_all_into(flat.col_values(0), 0, 6_000, pred, &mut want_all);
            let mut got_all = Vec::new();
            scan_tiered_all_into(tier, pred, &mut got_all);
            assert_eq!(got_all, want_all, "scan-all {pred:?}");
        }
    }

    #[test]
    fn tiered_meta_prunes_blocks() {
        // Sorted column: block meta is tight; a narrow predicate prunes
        // every frozen block but one.
        let values: Vec<i64> = (0..8_192).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        t.freeze_upto(8_192);
        assert_eq!(t.frozen_blocks(), 8);
        let tier = t.col_tier(0);
        let pred = RangePredicate::new(3_100, 3_200); // inside block 3
        let mut out = Vec::new();
        let stats = scan_tiered_active_into(tier, t.activity_words(), pred, &mut out);
        assert_eq!(out.len(), 100);
        assert_eq!(stats.blocks_pruned, 7, "only block 3 survives");
        assert!(stats.rows_scanned <= 1024);
        // Fully-forgotten blocks prune without the payload being touched.
        let mut t2 = Table::new(Schema::single("a"));
        t2.insert_batch(&values, 0).unwrap();
        for r in 0..1_024u64 {
            t2.forget(RowId(r), 1).unwrap();
        }
        t2.freeze_upto(8_192);
        let (state, stats) = aggregate_tiered_active(t2.col_tier(0), t2.activity_words(), None);
        assert_eq!(state.count(), 8_192 - 1_024);
        assert_eq!(stats.blocks_pruned, 1, "the dead block");
    }

    #[test]
    fn compressed_scan_skips_forgotten_blocks() {
        // Whole first block forgotten: the scan must not decode it (we
        // can't observe the skip directly, but the result must hold).
        let values: Vec<i64> = (0..2_048).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        for r in 0..1_024 {
            t.forget(RowId::from(r), 1).unwrap();
        }
        let seg = t.compress_column(0);
        let mut got = Vec::new();
        scan_compressed_active_into(
            &seg,
            t.activity_words(),
            RangePredicate::new(0, 3_000),
            &mut got,
        );
        let expect: Vec<RowId> = (1_024..2_048).map(RowId::from).collect();
        assert_eq!(got, expect);
    }
}
