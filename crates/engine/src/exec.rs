//! The executor: runs queries under a forget-visibility mode, with
//! optional zone map, index and summary support, reporting per-query
//! execution statistics.

use amnesia_columnar::{
    Estimate, ModelStore, SortedIndex, SummaryStore, Table, ValueRange, WordZoneMap, ZoneMap,
};
use amnesia_workload::query::{AggKind, Query, RangePredicate};
use amnesia_workload::Query as Q;
use serde::{Deserialize, Serialize};

use crate::batch::AggState;
use crate::cost::CostModel;
use crate::group::GroupTable;
use crate::kernels;
use crate::mode::ForgetVisibility;
use crate::morsel::{self, ExecMode, SchedStats};
use crate::physical::{
    finalize_scalar, ColPred, PhysItem, PhysicalPlan, PlanHint, Scalar, SortDir,
};
use crate::plan::{Plan, Planner};

use amnesia_columnar::{RowId, Value};
use amnesia_util::WORD_BITS;

/// Auxiliary structures available to the executor.
#[derive(Default)]
pub struct Aux<'a> {
    /// Zone map over the queried column, if maintained.
    pub zonemap: Option<&'a ZoneMap>,
    /// Word-granularity zone map over the queried column: min/max per
    /// 64-row activity word, consulted inside the batch kernels so scans
    /// skip words the predicate cannot hit.
    pub word_zones: Option<&'a WordZoneMap>,
    /// Sorted index over the queried column, if built.
    pub index: Option<&'a SortedIndex>,
    /// Summaries of forgotten data (enables whole-table aggregates that
    /// account for what rotted away).
    pub summaries: Option<&'a SummaryStore>,
    /// Micro-models of forgotten data (paper §5 \[15\]): unlike summaries
    /// they also *interpolate* range-restricted aggregates.
    pub models: Option<&'a ModelStore>,
}

/// Result rows or an aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Matching row ids (insertion order for scans, value order for index
    /// probes).
    Rows(Vec<RowId>),
    /// Aggregate value; `None` encodes SQL NULL (empty selection).
    Agg(Option<f64>),
}

impl QueryOutput {
    /// Row count for row outputs, 0 for aggregates.
    pub fn cardinality(&self) -> usize {
        match self {
            QueryOutput::Rows(rows) => rows.len(),
            QueryOutput::Agg(_) => 0,
        }
    }

    /// The rows, if this is a row output.
    pub fn rows(&self) -> Option<&[RowId]> {
        match self {
            QueryOutput::Rows(r) => Some(r),
            QueryOutput::Agg(_) => None,
        }
    }

    /// The aggregate value, if this is an aggregate output.
    pub fn agg(&self) -> Option<Option<f64>> {
        match self {
            QueryOutput::Agg(v) => Some(*v),
            QueryOutput::Rows(_) => None,
        }
    }
}

/// Per-query execution statistics — the one accounting struct every
/// execution surface reports (it absorbed the SQL crate's old
/// `QueryStats`, so SQL, the workload driver and the benches all speak
/// the same numbers).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows examined.
    pub rows_scanned: usize,
    /// Blocks skipped thanks to zone-map / block-meta / join-key-range
    /// pruning.
    pub blocks_pruned: usize,
    /// 64-row words skipped thanks to the word-granularity zone map.
    pub words_pruned: usize,
    /// Result cardinality: matching rows for scans and joins, output
    /// rows (the group count) for executed plans with aggregation, 0
    /// for the workload driver's scalar-aggregate path.
    pub result_rows: usize,
    /// Join pairs produced (0 without a join).
    pub join_pairs: usize,
    /// Groups produced (0 without aggregation; 1 for a global
    /// aggregate's implicit group).
    pub groups: usize,
    /// Abstract cost charged by the cost model.
    pub cost: f64,
    /// Which plan ran ("full-scan", "pruned-scan", "index-probe").
    pub plan: PlanTag,
    /// Morsels the scheduler executed across all plan stages (0 when
    /// every stage ran serially).
    pub morsels: usize,
    /// Morsels a worker claimed from another worker's range.
    pub morsel_steals: usize,
    /// Nanoseconds spent merging per-worker partial state at pipeline
    /// breakers.
    pub merge_ns: u64,
    /// Per-predicate execution breakdown for cost-ordered conjunctive
    /// scans: one entry per pushed-down predicate across all scan slots,
    /// in the order the executor actually evaluated them. Empty when the
    /// plan ran under [`crate::physical::PlanHint::SyntacticOrder`] or
    /// carried no multi-predicate conjunction.
    pub pred_stats: Vec<PredStat>,
    /// Estimated vs. actual output cardinality per plan stage (one entry
    /// per scan slot, plus one for the join when present), in stage
    /// order. Empty under the syntactic escape hatch.
    pub stage_estimates: Vec<StageEstimate>,
    /// Which scan slot the hash join built its table from (`Some(1)`
    /// means the cost model swapped the syntactic build side). `None`
    /// without a join or under the syntactic hint.
    pub build_side: Option<usize>,
}

/// Execution accounting for one pushed-down predicate of a cost-ordered
/// conjunctive scan (see [`crate::stats::order_predicates`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredStat {
    /// Scan slot the predicate belongs to.
    pub slot: usize,
    /// Human-readable predicate, as the plan would display it.
    pub display: String,
    /// Position in the plan's syntactic (as-written) conjunction.
    pub syntactic_pos: usize,
    /// Position the cost model ran it at (0 = evaluated first).
    pub exec_rank: usize,
    /// Estimated surviving rows for this predicate alone.
    pub est_rows: f64,
    /// Frozen blocks this predicate's block meta pruned outright
    /// (attributed to the first predicate in execution order whose meta
    /// check failed).
    pub blocks_pruned: usize,
    /// Frozen blocks where this predicate ran as a sparse residual
    /// refinement over the prior predicates' survivors instead of a
    /// dense block kernel.
    pub blocks_refined: usize,
}

/// Estimated vs. actual cardinality for one executed plan stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageEstimate {
    /// Stage label: the scan's table label, or `"join"`.
    pub label: String,
    /// Rows the statistics layer predicted the stage would output.
    pub est_rows: f64,
    /// Rows the stage actually output.
    pub actual_rows: usize,
}

/// Compact plan identifier for stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlanTag {
    /// Full table scan.
    #[default]
    FullScan,
    /// Zone-map pruned scan.
    PrunedScan,
    /// Sorted-index probe.
    IndexProbe,
    /// Tier-aware scan: frozen blocks run the fused compressed kernels
    /// behind their cached block meta, the hot tail runs the flat
    /// kernel. Chosen automatically once a table holds frozen blocks.
    TieredScan,
    /// Tier-aware hash join: the build side streams frozen blocks' keys
    /// in compressed space, the probe side prunes frozen blocks against
    /// the build key range and probes survivors in their codec's domain
    /// (see [`crate::join`]). Chosen automatically once either side holds
    /// frozen blocks.
    TieredJoin,
    /// Sort-merge join over frozen-sorted key columns: both sides'
    /// cached block metadata proves the key columns nondecreasing, so
    /// the selected keys gather in order and merge without building a
    /// hash table. Chosen by the cost-based planner when both sides
    /// carry the sorted hint (and verified against the gathered keys,
    /// falling back to the hash join otherwise).
    MergeJoin,
}

/// A query result with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Rows or aggregate.
    pub output: QueryOutput,
    /// Statistics.
    pub stats: ExecStats,
}

/// Query executor.
#[derive(Debug, Clone)]
pub struct Executor {
    mode: ForgetVisibility,
    planner: Planner,
    exec_mode: ExecMode,
    morsel_rows: usize,
}

impl Default for Executor {
    /// Serial unless `AMNESIA_TEST_THREADS` selects a parallel pool
    /// (morsel size likewise overridable via `AMNESIA_MORSEL_ROWS`) — so
    /// CI's thread matrix drives every default-constructed executor
    /// through the morsel scheduler without touching call sites.
    fn default() -> Self {
        Self {
            mode: ForgetVisibility::default(),
            planner: Planner::default(),
            exec_mode: ExecMode::from_env(),
            morsel_rows: morsel::morsel_rows_from_env(),
        }
    }
}

impl Executor {
    /// Executor with explicit mode and cost model (execution mode still
    /// comes from the environment, as in [`Executor::default`]).
    pub fn new(mode: ForgetVisibility, cost: CostModel) -> Self {
        Self {
            mode,
            planner: Planner::new(cost),
            ..Self::default()
        }
    }

    /// The forget-visibility mode.
    pub fn mode(&self) -> ForgetVisibility {
        self.mode
    }

    /// Select how [`Self::execute_plan`] runs: serial, or morsel-driven
    /// across a fixed worker pool.
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }

    /// Override the target rows per morsel (floored at one 64-row
    /// activity word) — tests shrink it to force multi-morsel schedules
    /// on small tables.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(WORD_BITS);
        self
    }

    /// The configured execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Execute a query against column `col` of `table`. The workload
    /// algebra is a trivial lowering onto the physical-plan operators:
    /// `Range`/`Point` run the shared scan operator ([`Self::run_scan`],
    /// the same code path SQL's lowered scans take), aggregates run the
    /// fused filter+aggregate operator (the same [`AggState`] machinery
    /// the plan's aggregation stages fold with).
    pub fn execute(&self, table: &Table, col: usize, query: &Query, aux: &Aux<'_>) -> ExecResult {
        match query {
            Q::Range(pred) => self.execute_scan_query(table, col, *pred, aux),
            Q::Point(v) => self.execute_scan_query(
                table,
                col,
                RangePredicate::new(*v, v.saturating_add(1)),
                aux,
            ),
            Q::Aggregate { kind, predicate } => {
                self.execute_aggregate(table, col, *kind, *predicate, aux)
            }
        }
    }

    /// Lower a single range predicate onto the shared scan operator and
    /// materialize the selection as row ids (index probes keep their
    /// value order through [`Selection::Rows`]).
    fn execute_scan_query(
        &self,
        table: &Table,
        col: usize,
        pred: RangePredicate,
        aux: &Aux<'_>,
    ) -> ExecResult {
        let preds = [ColPred::from_range(col, pred)];
        let (sel, mut stats) = self.run_scan(table, &preds, aux);
        let rows = sel.into_rows();
        stats.result_rows = rows.len();
        ExecResult {
            output: QueryOutput::Rows(rows),
            stats,
        }
    }

    /// Execute a hash equi-join `left.left_col = right.right_col` under
    /// the executor's visibility mode, surfacing the join kernel's tier
    /// accounting through [`ExecStats`]: `blocks_pruned` counts frozen
    /// probe blocks skipped against the build side's key range, and
    /// `rows_scanned` is the build rows plus the probe rows actually
    /// streamed (pruned probe rows subtract out — the work the block
    /// metadata saved). The plan reports [`PlanTag::TieredJoin`] once
    /// either side holds frozen blocks under the amnesiac regime.
    pub fn execute_join(
        &self,
        left: &Table,
        left_col: usize,
        right: &Table,
        right_col: usize,
    ) -> (crate::join::JoinResult, ExecStats) {
        let r = crate::join::hash_join(left, left_col, right, right_col, self.mode);
        let rows_scanned = r.stats.build_rows + r.stats.probe_rows - r.stats.probe_rows_skipped;
        let tiered =
            self.mode == ForgetVisibility::ActiveOnly && (left.has_frozen() || right.has_frozen());
        let stats = ExecStats {
            rows_scanned,
            blocks_pruned: r.stats.blocks_pruned,
            words_pruned: 0,
            result_rows: r.stats.output_pairs,
            join_pairs: r.stats.output_pairs,
            groups: 0,
            cost: self.planner.cost_model().full_scan(rows_scanned),
            plan: if tiered {
                PlanTag::TieredJoin
            } else {
                PlanTag::FullScan
            },
            ..Default::default()
        };
        (r, stats)
    }

    /// Run one physical scan — the shared operator underneath both the
    /// workload driver's queries and the SQL surface's lowered plans.
    ///
    /// A single representable range predicate routes through the
    /// cost-based planner exactly like [`Executor::execute`]'s range
    /// queries (zone-map pruned scans and index probes included, when
    /// the [`Aux`] structures exist); everything else — the empty
    /// conjunction, multi-predicate conjunctions, negations, domain-edge
    /// ranges — evaluates as fused 64-bit selection masks via
    /// [`kernels::selection_scan`].
    pub fn run_scan(
        &self,
        table: &Table,
        preds: &[ColPred],
        aux: &Aux<'_>,
    ) -> (Selection, ExecStats) {
        if preds.len() == 1 {
            if let Some(range) = preds[0].as_range() {
                let res = self.execute_range(table, preds[0].col, range, aux);
                let rows = match res.output {
                    QueryOutput::Rows(r) => r,
                    QueryOutput::Agg(_) => unreachable!("range scans return rows"),
                };
                return (Selection::Rows(rows), res.stats);
            }
        }
        let (sel, ts) = kernels::selection_scan(table, preds);
        let stats = ExecStats {
            rows_scanned: ts.rows_scanned,
            blocks_pruned: ts.blocks_pruned,
            cost: self.planner.cost_model().full_scan(ts.rows_scanned),
            plan: if table.has_frozen() {
                PlanTag::TieredScan
            } else {
                PlanTag::FullScan
            },
            ..Default::default()
        };
        (Selection::Words(sel), stats)
    }

    /// Execute a full [`PhysicalPlan`] — scans with pushed-down
    /// predicate conjunctions, optional tiered hash join, fused or
    /// grouped aggregation, projection gather, sort + limit — returning
    /// the output rows and one unified [`ExecStats`].
    ///
    /// The plan always runs under the amnesiac (active-only) visibility:
    /// a query surface lowered onto physical plans sees exactly the
    /// active data, per the paper's §1 contract that forgotten tuples
    /// "will never show up in query results". `auxes` supplies per-slot
    /// zone maps / indexes (missing slots scan unassisted).
    ///
    /// Under [`ExecMode::Parallel`] every stage dispatches through the
    /// [`morsel`] scheduler — tier-aligned morsels, a work-stealing
    /// worker pool, deterministic merges — and returns rows
    /// byte-identical to the serial path (aux access paths are bypassed:
    /// the fused selection kernels compute the same selection the
    /// planner's assisted scans would). Scheduler accounting lands in
    /// [`ExecStats::morsels`], [`ExecStats::morsel_steals`] and
    /// [`ExecStats::merge_ns`].
    pub fn execute_plan(
        &self,
        tables: &[&Table],
        auxes: &[Aux<'_>],
        plan: &PhysicalPlan,
    ) -> PhysResult {
        assert_eq!(
            tables.len(),
            plan.scans.len(),
            "one table per plan scan slot"
        );
        let default_aux = Aux::default();
        let mut stats = ExecStats::default();
        let mut sched = SchedStats::default();
        let threads = self.exec_mode.threads();
        let cost_based = plan.hint == PlanHint::CostBased;
        let model = self.planner.cost_model();

        // 1. Scans: per-slot selection masks under the pushed-down
        //    conjunction. Under the cost hint, multi-predicate
        //    conjunctions run in estimated `selectivity × eval_cost`
        //    order with sparse residual refinement (AND commutes, so the
        //    selection is byte-identical to the syntactic order).
        let mut sels: Vec<Vec<u64>> = Vec::with_capacity(tables.len());
        let mut scan_estimates: Vec<f64> = Vec::with_capacity(tables.len());
        for (slot, scan) in plan.scans.iter().enumerate() {
            let nwords = tables[slot].num_rows().div_ceil(WORD_BITS);
            if cost_based && scan.preds.len() >= 2 {
                let po = crate::stats::order_predicates(tables[slot], &scan.preds, model);
                let (sel, ts, per_pred) = if threads > 1 {
                    let (sel, ts, per_pred, s) = morsel::par_selection_scan_ordered(
                        tables[slot],
                        &scan.preds,
                        &po.order,
                        threads,
                        self.morsel_rows,
                    );
                    sched.absorb(&s);
                    (sel, ts, per_pred)
                } else {
                    let mut per_pred = vec![kernels::PredScanStats::default(); scan.preds.len()];
                    let (sel, ts) = kernels::selection_scan_ordered(
                        tables[slot],
                        &scan.preds,
                        &po.order,
                        &mut per_pred,
                    );
                    (sel, ts, per_pred)
                };
                stats.rows_scanned += ts.rows_scanned;
                stats.blocks_pruned += ts.blocks_pruned;
                stats.cost += model.full_scan(ts.rows_scanned);
                if slot == 0 {
                    stats.plan = if tables[slot].has_frozen() {
                        PlanTag::TieredScan
                    } else {
                        PlanTag::FullScan
                    };
                }
                for (rank, &i) in po.order.iter().enumerate() {
                    stats.pred_stats.push(PredStat {
                        slot,
                        display: scan.preds[i].display.clone(),
                        syntactic_pos: i,
                        exec_rank: rank,
                        est_rows: po.est_rows[i],
                        blocks_pruned: per_pred[i].blocks_pruned,
                        blocks_refined: per_pred[i].blocks_refined,
                    });
                }
                stats.stage_estimates.push(StageEstimate {
                    label: scan.label.clone(),
                    est_rows: po.est_out_rows,
                    actual_rows: kernels::selection_count(&sel),
                });
                scan_estimates.push(po.est_out_rows);
                sels.push(sel);
                continue;
            }
            // 0- or 1-predicate scans keep the legacy execution paths
            // (including the planner's zone-map / index access paths on
            // the serial route) — the cost hint still records their
            // estimate for join-side choice and EXPLAIN.
            let est = if cost_based {
                let e = crate::stats::estimate_scan_rows(tables[slot], &scan.preds, model);
                scan_estimates.push(e);
                Some(e)
            } else {
                None
            };
            if threads > 1 {
                let (sel, ts, s) = morsel::par_selection_scan(
                    tables[slot],
                    &scan.preds,
                    threads,
                    self.morsel_rows,
                );
                sched.absorb(&s);
                stats.rows_scanned += ts.rows_scanned;
                stats.blocks_pruned += ts.blocks_pruned;
                stats.cost += model.full_scan(ts.rows_scanned);
                if slot == 0 {
                    stats.plan = if tables[slot].has_frozen() {
                        PlanTag::TieredScan
                    } else {
                        PlanTag::FullScan
                    };
                }
                if let Some(e) = est {
                    stats.stage_estimates.push(StageEstimate {
                        label: scan.label.clone(),
                        est_rows: e,
                        actual_rows: kernels::selection_count(&sel),
                    });
                }
                sels.push(sel);
                continue;
            }
            let aux = auxes.get(slot).unwrap_or(&default_aux);
            let (sel, s) = self.run_scan(tables[slot], &scan.preds, aux);
            stats.rows_scanned += s.rows_scanned;
            stats.blocks_pruned += s.blocks_pruned;
            stats.words_pruned += s.words_pruned;
            stats.cost += s.cost;
            if slot == 0 {
                stats.plan = s.plan;
            }
            if let Some(e) = est {
                let actual = match &sel {
                    Selection::Words(w) => kernels::selection_count(w),
                    Selection::Rows(rows) => rows.len(),
                };
                stats.stage_estimates.push(StageEstimate {
                    label: scan.label.clone(),
                    est_rows: e,
                    actual_rows: actual,
                });
            }
            sels.push(match sel {
                Selection::Words(w) => w,
                Selection::Rows(rows) => rows_to_words(&rows, nwords),
            });
        }

        // 2. Join. The physical choice is cost-driven and
        //    mode-independent (the same strategy runs serial and
        //    parallel, so rows *and* accounting agree across modes):
        //    a merge join when both key columns are provably
        //    frozen-sorted, otherwise a hash join building on the side
        //    with the smaller estimated post-filter cardinality.
        let pairs: Option<Vec<(RowId, RowId)>> = plan.join.as_ref().map(|join| {
            let est_l = scan_estimates.first().copied().unwrap_or(0.0);
            let est_r = scan_estimates.get(1).copied().unwrap_or(0.0);
            if cost_based
                && tables[0].col_tier(join.left_col).sorted_hint()
                && tables[1].col_tier(join.right_col).sorted_hint()
            {
                if let Some(p) = merge_join_sorted(
                    tables[0],
                    join.left_col,
                    &sels[0],
                    tables[1],
                    join.right_col,
                    &sels[1],
                ) {
                    stats.join_pairs = p.len();
                    stats.plan = PlanTag::MergeJoin;
                    stats.stage_estimates.push(StageEstimate {
                        label: "join".into(),
                        est_rows: est_l.max(est_r),
                        actual_rows: p.len(),
                    });
                    return p;
                }
            }
            // Hash join: under the cost hint, build on the smaller
            // estimated side (syntactically the build side is slot 0).
            let swap = cost_based && est_r < est_l;
            let (bslot, pslot, bcol, pcol) = if swap {
                (1usize, 0usize, join.right_col, join.left_col)
            } else {
                (0usize, 1usize, join.left_col, join.right_col)
            };
            let (mut p, probe) = if threads > 1 {
                let ((build, key_range), s) = morsel::par_build_rows_map(
                    tables[bslot],
                    bcol,
                    &sels[bslot],
                    threads,
                    self.morsel_rows,
                );
                sched.absorb(&s);
                let (p, probe, s) = morsel::par_probe(
                    tables[pslot],
                    pcol,
                    &sels[pslot],
                    &build,
                    key_range,
                    threads,
                    self.morsel_rows,
                );
                sched.absorb(&s);
                (p, probe)
            } else {
                let (build, key_range) =
                    crate::join::build_rows_map_with(tables[bslot], bcol, &sels[bslot]);
                let mut p = Vec::new();
                let probe = crate::batch::probe_tiered(
                    tables[pslot].col_tier(pcol),
                    &sels[pslot],
                    &build,
                    key_range,
                    &mut p,
                );
                (p, probe)
            };
            if swap {
                // The kernel emitted (build=right, probe=left) pairs in
                // probe-major order; restore the canonical
                // (left, right) pairs sorted by (right, left).
                for pr in p.iter_mut() {
                    *pr = (pr.1, pr.0);
                }
                p.sort_unstable_by_key(|&(l, r)| (r.as_usize(), l.as_usize()));
            }
            stats.blocks_pruned += probe.blocks_pruned;
            // Mirror `execute_join`'s accounting: probe rows the key-range
            // meta pruned were never streamed, so they subtract from
            // `rows_scanned`. Only exact when the probe scan pushed no
            // predicates down (then its selection is the activity map,
            // which is what `probe_rows_skipped` counts); a filtered
            // probe side keeps the scan-phase count.
            if plan.scans[pslot].preds.is_empty() {
                stats.rows_scanned = stats.rows_scanned.saturating_sub(probe.probe_rows_skipped);
            }
            stats.join_pairs = p.len();
            if tables.iter().any(|t| t.has_frozen()) {
                stats.plan = PlanTag::TieredJoin;
            }
            if cost_based {
                stats.build_side = Some(bslot);
                stats.stage_estimates.push(StageEstimate {
                    label: "join".into(),
                    est_rows: est_l.max(est_r),
                    actual_rows: p.len(),
                });
            }
            p
        });

        // 3. Projection or (grouped) aggregation.
        let mut rows: Vec<Vec<Scalar>> = match (&pairs, plan.has_aggregates()) {
            (None, false) => {
                self.project_selection(tables[0], &sels[0], &plan.items, threads, &mut sched)
            }
            (None, true) => self.aggregate_selection_rows(
                tables[0], &sels[0], plan, threads, &mut stats, &mut sched,
            ),
            (Some(pairs), false) => project_pairs(
                tables,
                pairs,
                &plan.items,
                threads,
                self.morsel_rows,
                &mut sched,
            ),
            (Some(pairs), true) => aggregate_pairs(
                tables,
                pairs,
                plan,
                threads,
                self.morsel_rows,
                &mut stats,
                &mut sched,
            ),
        };

        // 4. Sort + limit over the materialized scalars (type-aware
        //    total order: i64 keys never collapse through f64). The
        //    parallel path chunk-sorts and k-way merges with leftmost
        //    tie preference — exactly the serial stable sort's order.
        if let Some((idx, dir)) = plan.order_by {
            let cmp = |a: &Vec<Scalar>, b: &Vec<Scalar>| {
                let ord = a[idx].total_cmp(&b[idx]);
                match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                }
            };
            if threads > 1 && rows.len() > self.morsel_rows {
                sched.merge_ns += morsel::par_sort_by(&mut rows, threads, cmp);
            } else {
                rows.sort_by(cmp);
            }
        }
        if let Some(limit) = plan.limit {
            rows.truncate(limit as usize);
        }
        stats.result_rows = rows.len();
        stats.morsels = sched.morsels;
        stats.morsel_steals = sched.steals;
        stats.merge_ns = sched.merge_ns;
        PhysResult { rows, stats }
    }

    /// Projection gather over a single-table selection: each output
    /// column streams through the tier-aware gather (compressed blocks
    /// are never decoded), then rows zip positionally. With a parallel
    /// pool each column's gather fans out over morsels and concatenates
    /// in ascending row order.
    fn project_selection(
        &self,
        table: &Table,
        sel: &[u64],
        items: &[PhysItem],
        threads: usize,
        sched: &mut SchedStats,
    ) -> Vec<Vec<Scalar>> {
        let n_out = kernels::selection_count(sel);
        let mut bufs: Vec<Vec<Value>> = Vec::with_capacity(items.len());
        for item in items {
            let PhysItem::Column { col, .. } = item else {
                unreachable!("projection plans carry only column items");
            };
            if threads > 1 {
                let (buf, s) =
                    morsel::par_gather_column(table, sel, *col, threads, self.morsel_rows);
                sched.absorb(&s);
                bufs.push(buf);
            } else {
                let mut buf = Vec::with_capacity(n_out);
                kernels::gather_column(table, sel, *col, &mut buf);
                bufs.push(buf);
            }
        }
        (0..n_out)
            .map(|i| bufs.iter().map(|b| Scalar::Int(b[i])).collect())
            .collect()
    }

    /// Global or grouped aggregation over a single-table selection.
    fn aggregate_selection_rows(
        &self,
        table: &Table,
        sel: &[u64],
        plan: &PhysicalPlan,
        threads: usize,
        stats: &mut ExecStats,
        sched: &mut SchedStats,
    ) -> Vec<Vec<Scalar>> {
        if let Some((_, gcol, _)) = &plan.group_by {
            // The vectorized hash group-by: folds over compressed blocks,
            // morsel-parallel with a deterministic first-seen-order merge
            // under a worker pool.
            let agg_cols: Vec<Option<usize>> = agg_specs(&plan.items)
                .iter()
                .map(|(_, arg)| arg.map(|(_, c)| c))
                .collect();
            let groups = if threads > 1 {
                let (groups, s) = morsel::par_grouped_fold(
                    table,
                    sel,
                    *gcol,
                    &agg_cols,
                    threads,
                    self.morsel_rows,
                );
                sched.absorb(&s);
                groups
            } else {
                crate::group::grouped_fold(table, sel, *gcol, &agg_cols)
            };
            stats.groups = groups.len();
            return finalize_groups(&groups, &plan.items);
        }
        // Global aggregates: one fused fold per distinct input column,
        // COUNT(*) is a popcount of the selection.
        stats.groups = 1;
        let mut cache: Vec<(usize, AggState)> = Vec::new();
        let row = plan
            .items
            .iter()
            .map(|item| match item {
                PhysItem::Aggregate {
                    kind,
                    arg: Some((_, c)),
                    ..
                } => {
                    let state = match cache.iter().find(|(col, _)| col == c) {
                        Some((_, s)) => *s,
                        None => {
                            let s = if threads > 1 {
                                let (s, sc) = morsel::par_aggregate_selection(
                                    table,
                                    sel,
                                    *c,
                                    threads,
                                    self.morsel_rows,
                                );
                                sched.absorb(&sc);
                                s
                            } else {
                                kernels::aggregate_selection(table, sel, *c)
                            };
                            cache.push((*c, s));
                            s
                        }
                    };
                    finalize_scalar(&state, *kind)
                }
                PhysItem::Aggregate { arg: None, .. } => {
                    Scalar::Int(kernels::selection_count(sel) as i64)
                }
                PhysItem::Column { .. } => {
                    unreachable!("plain columns require GROUP BY")
                }
            })
            .collect();
        vec![row]
    }

    fn execute_range(
        &self,
        table: &Table,
        col: usize,
        pred: RangePredicate,
        aux: &Aux<'_>,
    ) -> ExecResult {
        if pred.is_empty() {
            return ExecResult {
                output: QueryOutput::Rows(Vec::new()),
                stats: ExecStats::default(),
            };
        }
        // In ScanSeesForgotten mode the *complete scan* is the only plan
        // that still covers forgotten tuples: zone maps and indexes track
        // active data only (paper §1: "a complete scan will fetch all
        // data, but a fast index-based query evaluation will skip the
        // forgotten data"). Completeness costs a full physical scan.
        //
        // A frozen table drops the external zone map from planning: the
        // tier's cached block meta prunes equivalently inside the scan
        // kernel, and the flat blocked kernel no longer applies.
        let zonemap = if table.has_frozen() {
            None
        } else {
            aux.zonemap
        };
        let (plan, cost) = match self.mode {
            ForgetVisibility::ScanSeesForgotten => (
                Plan::FullScan,
                self.planner.cost_model().full_scan(table.num_rows()),
            ),
            ForgetVisibility::ActiveOnly => {
                self.planner.plan_range(table, pred, zonemap, aux.index)
            }
        };
        let (rows, rows_scanned, blocks_pruned, words_pruned, tag) = match &plan {
            Plan::FullScan if table.has_frozen() && self.mode == ForgetVisibility::ActiveOnly => {
                // Tier-aware scan: block meta prunes frozen blocks, the
                // codecs' fused filters run on the survivors.
                let (rows, ts) = kernels::range_scan_tiered(table, col, pred);
                (
                    rows,
                    ts.rows_scanned,
                    ts.blocks_pruned,
                    0,
                    PlanTag::TieredScan,
                )
            }
            Plan::FullScan => {
                // Word-granularity zones slot into the full-scan plan:
                // same results, but the kernel skips words whose min/max
                // can't intersect the predicate. The complete-scan mode
                // must keep reading forgotten tuples, which zone entries
                // do not cover.
                let word_zones = match self.mode {
                    ForgetVisibility::ActiveOnly => aux.word_zones.filter(|wz| wz.column() == col),
                    ForgetVisibility::ScanSeesForgotten => None,
                };
                if let Some(wz) = word_zones {
                    let (rows, zs) = kernels::range_scan_active_zoned(table, col, wz, pred);
                    (rows, zs.rows_scanned, 0, zs.words_pruned, PlanTag::FullScan)
                } else {
                    let rows = match self.mode {
                        ForgetVisibility::ActiveOnly => {
                            kernels::range_scan_active(table, col, pred)
                        }
                        ForgetVisibility::ScanSeesForgotten => {
                            kernels::range_scan_all(table, col, pred)
                        }
                    };
                    let scanned = match self.mode {
                        ForgetVisibility::ActiveOnly => table.active_rows(),
                        ForgetVisibility::ScanSeesForgotten => table.num_rows(),
                    };
                    (rows, scanned, 0, 0, PlanTag::FullScan)
                }
            }
            Plan::PrunedScan { blocks, block_rows } => {
                let total_blocks = aux.zonemap.map(ZoneMap::num_blocks).unwrap_or(blocks.len());
                let rows = kernels::range_scan_blocks(table, col, pred, blocks, *block_rows);
                (
                    rows,
                    blocks.len() * block_rows,
                    total_blocks - blocks.len(),
                    0,
                    PlanTag::PrunedScan,
                )
            }
            Plan::IndexProbe => {
                let idx = aux.index.expect("planner only picks built indexes");
                let rows = idx.probe_range_active(table, pred.lo, pred.hi_inclusive());
                let scanned = rows.len();
                (rows, scanned, 0, 0, PlanTag::IndexProbe)
            }
        };
        let result_rows = rows.len();
        ExecResult {
            output: QueryOutput::Rows(rows),
            stats: ExecStats {
                rows_scanned,
                blocks_pruned,
                words_pruned,
                result_rows,
                cost,
                plan: tag,
                ..Default::default()
            },
        }
    }

    fn execute_aggregate(
        &self,
        table: &Table,
        col: usize,
        kind: AggKind,
        predicate: Option<RangePredicate>,
        aux: &Aux<'_>,
    ) -> ExecResult {
        // One fused filter+aggregate pass yields every statistic the
        // combiners below might need (COUNT, SUM, MIN, MAX), so folding in
        // summaries or micro-models no longer rescans the table. A word-
        // granularity zone map slots straight into that pass when the
        // aggregate is predicated; a frozen table instead folds its
        // frozen blocks in code/offset space behind the cached block
        // meta (no decode, no zone map needed).
        let (active_state, scanned, blocks_pruned, words_pruned) = if table.has_frozen() {
            let (state, ts) = kernels::aggregate_state_tiered(table, col, predicate);
            (state, ts.rows_scanned, ts.blocks_pruned, 0)
        } else {
            match aux
                .word_zones
                .filter(|wz| wz.column() == col && predicate.is_some())
            {
                Some(wz) => {
                    let (state, zs) =
                        kernels::aggregate_state_active_zoned(table, col, wz, predicate);
                    (state, zs.rows_scanned, 0, zs.words_pruned)
                }
                None => {
                    let (state, scanned) = kernels::aggregate_state_active(table, col, predicate);
                    (state, scanned, 0, 0)
                }
            }
        };

        // Whole-table aggregates can fold in summaries of forgotten data
        // (paper §1: summaries answer "specific aggregation queries" only —
        // a predicate disables them because cell membership is unknown).
        // The cell folds into the running state, so a micro-model combine
        // below still sees the summary contribution.
        let mut state = active_state;
        if predicate.is_none() {
            if let Some(summaries) = aux.summaries {
                let cell = summaries.combined();
                if cell.count > 0 {
                    state.push_block(cell.count, cell.sum, cell.min, cell.max);
                }
            }
        }
        let mut value = state.finalize(kind);

        // Micro-models go further: their histograms pro-rate the
        // forgotten mass inside a predicate, so ranged aggregates get an
        // estimate instead of an active-only answer.
        if let Some(models) = aux.models {
            let range = predicate.map(|p| ValueRange { lo: p.lo, hi: p.hi });
            let est = models.estimate(range);
            if est.count > 1e-12 {
                value = Some(combine_with_estimate(&state, kind, &est));
            }
        }

        let cost = self.planner.cost_model().full_scan(scanned);
        ExecResult {
            output: QueryOutput::Agg(value),
            stats: ExecStats {
                rows_scanned: scanned,
                blocks_pruned,
                words_pruned,
                cost,
                plan: if table.has_frozen() {
                    PlanTag::TieredScan
                } else {
                    PlanTag::FullScan
                },
                ..Default::default()
            },
        }
    }
}

/// A scan operator's output: selection-mask words (one per 64 rows), or
/// an explicit row list when the access path yields an order masks
/// cannot express (index probes return value order).
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// One 64-bit selection word per activity word, ascending row order.
    Words(Vec<u64>),
    /// Explicit rows in access-path order.
    Rows(Vec<RowId>),
}

impl Selection {
    /// Materialize as row ids (ascending for [`Selection::Words`]).
    pub fn into_rows(self) -> Vec<RowId> {
        match self {
            Selection::Rows(rows) => rows,
            Selection::Words(words) => kernels::selection_rows(&words),
        }
    }
}

/// The result of executing a [`PhysicalPlan`]: materialized output rows
/// plus the unified [`ExecStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhysResult {
    /// Output rows, one [`Scalar`] per plan item.
    pub rows: Vec<Vec<Scalar>>,
    /// Execution statistics across every operator.
    pub stats: ExecStats,
}

/// Sort-merge join over two selections whose key columns the cached
/// block metadata proved frozen-sorted
/// ([`sorted_hint`](amnesia_columnar::TieredColumn::sorted_hint)):
/// gather each side's selected rows and keys in row order (which *is*
/// key order for a sorted column), verify the gathered keys really are
/// nondecreasing (returning `None` — hash-join fallback — otherwise),
/// then two-pointer merge the equal-key groups. Pairs emit in the hash
/// join's canonical probe-major order, so the physical choice never
/// changes results.
fn merge_join_sorted(
    left: &Table,
    left_col: usize,
    lsel: &[u64],
    right: &Table,
    right_col: usize,
    rsel: &[u64],
) -> Option<Vec<(RowId, RowId)>> {
    let lrows = kernels::selection_rows(lsel);
    let rrows = kernels::selection_rows(rsel);
    let mut lkeys = Vec::with_capacity(lrows.len());
    kernels::gather_column(left, lsel, left_col, &mut lkeys);
    let mut rkeys = Vec::with_capacity(rrows.len());
    kernels::gather_column(right, rsel, right_col, &mut rkeys);
    if lkeys.windows(2).any(|w| w[0] > w[1]) || rkeys.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lkeys.len() && j < rkeys.len() {
        match lkeys[i].cmp(&rkeys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let k = lkeys[i];
                let i0 = i;
                while i < lkeys.len() && lkeys[i] == k {
                    i += 1;
                }
                let j0 = j;
                while j < rkeys.len() && rkeys[j] == k {
                    j += 1;
                }
                for &rr in &rrows[j0..j] {
                    for &lr in &lrows[i0..i] {
                        out.push((lr, rr));
                    }
                }
            }
        }
    }
    Some(out)
}

/// Pack explicit row ids into selection-mask words.
fn rows_to_words(rows: &[RowId], nwords: usize) -> Vec<u64> {
    let mut words = vec![0u64; nwords];
    for r in rows {
        let i = r.as_usize();
        words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }
    words
}

/// The aggregate items of a plan, in item order.
fn agg_specs(
    items: &[PhysItem],
) -> Vec<(amnesia_workload::query::AggKind, Option<(usize, usize)>)> {
    items
        .iter()
        .filter_map(|i| match i {
            PhysItem::Aggregate { kind, arg, .. } => Some((*kind, *arg)),
            PhysItem::Column { .. } => None,
        })
        .collect()
}

/// Materialize a [`GroupTable`] as output rows in first-seen group
/// order: plain columns replay the group key, aggregates finalize with
/// the checked (overflow-widening) conversion.
fn finalize_groups(groups: &GroupTable, items: &[PhysItem]) -> Vec<Vec<Scalar>> {
    (0..groups.len())
        .map(|g| {
            let states = groups.group_states(g);
            let mut agg_i = 0usize;
            items
                .iter()
                .map(|item| match item {
                    PhysItem::Column { .. } => Scalar::Int(groups.keys()[g]),
                    PhysItem::Aggregate { kind, .. } => {
                        let s = finalize_scalar(&states[agg_i], *kind);
                        agg_i += 1;
                        s
                    }
                })
                .collect()
        })
        .collect()
}

/// Row id of `slot` within a join pair.
#[inline]
fn pair_row(pair: &(RowId, RowId), slot: usize) -> RowId {
    if slot == 0 {
        pair.0
    } else {
        pair.1
    }
}

/// Project join pairs: per-item tier-aware point reads (codec
/// `value_at`, never a block decode). Under a parallel pool the pair
/// vector splits into index-range morsels whose projected rows
/// concatenate back in pair order.
fn project_pairs(
    tables: &[&Table],
    pairs: &[(RowId, RowId)],
    items: &[PhysItem],
    threads: usize,
    morsel_rows: usize,
    sched: &mut SchedStats,
) -> Vec<Vec<Scalar>> {
    let project_range = |range: &std::ops::Range<usize>| -> Vec<Vec<Scalar>> {
        pairs[range.clone()]
            .iter()
            .map(|pair| {
                items
                    .iter()
                    .map(|item| match item {
                        PhysItem::Column { slot, col, .. } => {
                            Scalar::Int(tables[*slot].value(*col, pair_row(pair, *slot)))
                        }
                        PhysItem::Aggregate { .. } => {
                            unreachable!("projection plans carry only column items")
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let chunks = morsel::index_chunks(pairs.len(), morsel_rows);
    if threads <= 1 || chunks.len() <= 1 {
        return project_range(&(0..pairs.len()));
    }
    let (parts, s) = morsel::run_morsels(chunks.len(), threads, |i| {
        project_range(&(chunks[i].0..chunks[i].1))
    });
    sched.absorb(&s);
    let mut out = Vec::with_capacity(pairs.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Aggregate join pairs, grouped or global, via tier-aware point reads.
/// Under a parallel pool each index-range morsel folds a local
/// [`GroupTable`] keyed with the *pair index* as its first-seen marker;
/// the merged table re-sorts by that marker, reproducing the serial
/// first-seen group order (global aggregates merge integer-exact
/// states in morsel order).
fn aggregate_pairs(
    tables: &[&Table],
    pairs: &[(RowId, RowId)],
    plan: &PhysicalPlan,
    threads: usize,
    morsel_rows: usize,
    stats: &mut ExecStats,
    sched: &mut SchedStats,
) -> Vec<Vec<Scalar>> {
    let specs = agg_specs(&plan.items);
    let chunks = morsel::index_chunks(pairs.len(), morsel_rows);
    let parallel = threads > 1 && chunks.len() > 1;
    if let Some((gslot, gcol, _)) = &plan.group_by {
        let fold_range = |lo: usize, hi: usize| -> GroupTable {
            let mut groups = GroupTable::new(specs.len());
            for (i, pair) in pairs[lo..hi].iter().enumerate() {
                let key = tables[*gslot].value(*gcol, pair_row(pair, *gslot));
                let slot = groups.slot_at(key, lo + i);
                for (a, (_, arg)) in specs.iter().enumerate() {
                    match arg {
                        Some((aslot, acol)) => groups
                            .state_mut(slot, a)
                            .push(tables[*aslot].value(*acol, pair_row(pair, *aslot))),
                        None => groups.bump(slot, a),
                    }
                }
            }
            groups
        };
        let groups = if parallel {
            let (parts, s) = morsel::run_morsels(chunks.len(), threads, |i| {
                fold_range(chunks[i].0, chunks[i].1)
            });
            sched.absorb(&s);
            let mut merged = GroupTable::new(specs.len());
            for part in &parts {
                merged.absorb(part);
            }
            merged.sort_by_first_row();
            merged
        } else {
            fold_range(0, pairs.len())
        };
        stats.groups = groups.len();
        return finalize_groups(&groups, &plan.items);
    }
    stats.groups = 1;
    let fold_range = |lo: usize, hi: usize| -> Vec<AggState> {
        let mut states = vec![AggState::new(); specs.len()];
        for pair in &pairs[lo..hi] {
            for (state, (_, arg)) in states.iter_mut().zip(&specs) {
                match arg {
                    Some((aslot, acol)) => {
                        state.push(tables[*aslot].value(*acol, pair_row(pair, *aslot)))
                    }
                    None => state.push_block(1, 0, Value::MAX, Value::MIN),
                }
            }
        }
        states
    };
    let states = if parallel {
        let (parts, s) = morsel::run_morsels(chunks.len(), threads, |i| {
            fold_range(chunks[i].0, chunks[i].1)
        });
        sched.absorb(&s);
        let mut states = vec![AggState::new(); specs.len()];
        for part in &parts {
            for (state, p) in states.iter_mut().zip(part) {
                state.merge(p);
            }
        }
        states
    } else {
        fold_range(0, pairs.len())
    };
    let mut agg_i = 0usize;
    let row = plan
        .items
        .iter()
        .map(|item| match item {
            PhysItem::Aggregate { kind, .. } => {
                let s = finalize_scalar(&states[agg_i], *kind);
                agg_i += 1;
                s
            }
            PhysItem::Column { .. } => unreachable!("plain columns require GROUP BY"),
        })
        .collect();
    vec![row]
}

/// Merge the aggregate state (active rows, plus any summary cell already
/// folded in by the executor) with a micro-model estimate of the
/// forgotten mass. The state is already restricted to the query's
/// predicate, so its COUNT/SUM slot straight into the combination.
fn combine_with_estimate(state: &kernels::AggState, kind: AggKind, est: &Estimate) -> f64 {
    let n_active = state.count() as f64;
    match kind {
        AggKind::Count => n_active + est.count,
        AggKind::Sum => state.sum() as f64 + est.sum,
        AggKind::Avg => (state.sum() as f64 + est.sum) / (n_active + est.count),
        AggKind::Min => {
            let m = est.min.map(|v| v as f64);
            match (state.finalize(AggKind::Min), m) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => f64::NAN,
            }
        }
        AggKind::Max => {
            let m = est.max.map(|v| v as f64);
            match (state.finalize(AggKind::Max), m) {
                (Some(a), Some(b)) => a.max(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => f64::NAN,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    fn table() -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30, 40, 50], 0).unwrap();
        t.forget(RowId(1), 1).unwrap(); // 20 forgotten
        t
    }

    #[test]
    fn range_active_only() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(15, 45)),
            &Aux::default(),
        );
        assert_eq!(r.output.rows().unwrap(), &[RowId(2), RowId(3)]);
        assert_eq!(r.stats.result_rows, 2);
        assert_eq!(r.stats.plan, PlanTag::FullScan);
    }

    #[test]
    fn scan_sees_forgotten_mode() {
        let t = table();
        let ex = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(15, 45)),
            &Aux::default(),
        );
        // The complete scan fetches the forgotten 20 as well.
        assert_eq!(r.output.rows().unwrap(), &[RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn index_path_always_skips_forgotten() {
        let t = table();
        let mut idx = SortedIndex::build(&t, 0);
        idx.rebuild(&t);
        // Force index choice by making the table "large" conceptually:
        // probe directly through the executor with aux present on a narrow
        // predicate. With only 5 rows the planner may still choose scans,
        // so call the probe path explicitly.
        let rows = idx.probe_range_active(&t, 15, 44);
        assert_eq!(rows, vec![RowId(2), RowId(3)]);
    }

    #[test]
    fn point_query() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(&t, 0, &Q::Point(30), &Aux::default());
        assert_eq!(r.output.rows().unwrap(), &[RowId(2)]);
        let miss = ex.execute(&t, 0, &Q::Point(20), &Aux::default());
        assert!(miss.output.rows().unwrap().is_empty(), "forgotten point");
    }

    #[test]
    fn aggregate_without_summaries_drifts() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Aggregate {
                kind: AggKind::Avg,
                predicate: None,
            },
            &Aux::default(),
        );
        // Active: 10,30,40,50 → 32.5 (true avg over history is 30).
        assert_eq!(r.output.agg().unwrap(), Some(32.5));
    }

    #[test]
    fn aggregate_with_summaries_recovers_exact_answer() {
        let t = table();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20); // the forgotten value
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            ..Default::default()
        };
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(30.0), "summary restores the exact average");

        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0));

        let min = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Min,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(min, Some(10.0));
    }

    #[test]
    fn predicated_aggregate_ignores_summaries() {
        let t = table();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20);
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            ..Default::default()
        };
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: Some(RangePredicate::new(0, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        // Summaries cannot be sliced by value: active-only answer.
        assert_eq!(avg, Some(32.5));
    }

    #[test]
    fn predicated_aggregate_uses_models() {
        let t = table();
        let mut models = ModelStore::new(8);
        models.absorb(1, 20); // the forgotten value
        models.seal();
        let ex = Executor::default();
        let aux = Aux {
            models: Some(&models),
            ..Default::default()
        };
        // Range [0, 100) contains the forgotten 20: COUNT recovers it.
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: Some(RangePredicate::new(0, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0), "model restores the ranged count");
        // Range [35, 100) excludes it: no model contribution.
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: Some(RangePredicate::new(35, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(2.0), "40 and 50 only");
        // Whole-table AVG is exact from model totals.
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(30.0));
    }

    #[test]
    fn summaries_and_models_chain() {
        // Forget 20 (absorbed by the summary) and 30 (absorbed by the
        // model): both contributions must land in the final answer.
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30, 40, 50], 0).unwrap();
        t.forget(RowId(1), 1).unwrap();
        t.forget(RowId(2), 1).unwrap();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20);
        let mut models = ModelStore::new(8);
        models.absorb(1, 30);
        models.seal();
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            models: Some(&models),
            ..Default::default()
        };
        let sum = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Sum,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        // Active 10+40+50 = 100, summary adds 20, model adds 30.
        assert_eq!(sum, Some(150.0));
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0));
    }

    #[test]
    fn empty_predicate_short_circuits() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(50, 10)),
            &Aux::default(),
        );
        assert!(r.output.rows().unwrap().is_empty());
        assert_eq!(r.stats.rows_scanned, 0);
    }

    #[test]
    fn word_zones_prune_full_scans() {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        t.insert_batch(&values, 0).unwrap();
        let wz = WordZoneMap::build(&t, 0);
        let ex = Executor::default();
        let q = Q::Range(RangePredicate::new(100, 200));
        let plain = ex.execute(&t, 0, &q, &Aux::default());
        let aux = Aux {
            word_zones: Some(&wz),
            ..Default::default()
        };
        let zoned = ex.execute(&t, 0, &q, &aux);
        assert_eq!(zoned.output, plain.output, "zones never change results");
        assert_eq!(zoned.stats.plan, PlanTag::FullScan);
        // 50k rows = 782 words; the sorted column leaves ~3 live.
        assert!(
            zoned.stats.words_pruned > 770,
            "{}",
            zoned.stats.words_pruned
        );
        assert!(zoned.stats.rows_scanned < plain.stats.rows_scanned);

        // Predicated aggregates ride the same zones.
        let agg = Q::Aggregate {
            kind: AggKind::Sum,
            predicate: Some(RangePredicate::new(100, 200)),
        };
        let plain_agg = ex.execute(&t, 0, &agg, &Aux::default());
        let zoned_agg = ex.execute(&t, 0, &agg, &aux);
        assert_eq!(zoned_agg.output, plain_agg.output);
        assert!(zoned_agg.stats.words_pruned > 770);
    }

    #[test]
    fn frozen_table_takes_tiered_plan_with_identical_results() {
        let mut flat = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        flat.insert_batch(&values, 0).unwrap();
        for r in (0..50_000u64).step_by(7) {
            flat.forget(RowId(r), 1).unwrap();
        }
        let mut frozen = flat.clone();
        frozen.freeze_upto(48_000);
        assert!(frozen.has_frozen());
        let ex = Executor::default();
        let queries = [
            Q::Range(RangePredicate::new(100, 220)),
            Q::Point(10_000),
            Q::Aggregate {
                kind: AggKind::Avg,
                predicate: Some(RangePredicate::new(1_000, 40_000)),
            },
            Q::Aggregate {
                kind: AggKind::Sum,
                predicate: None,
            },
        ];
        for q in &queries {
            let want = ex.execute(&flat, 0, q, &Aux::default());
            let got = ex.execute(&frozen, 0, q, &Aux::default());
            assert_eq!(got.output, want.output, "{q:?}");
            assert_eq!(got.stats.plan, PlanTag::TieredScan, "{q:?}");
        }
        // The narrow range prunes nearly every frozen block via meta.
        let narrow = ex.execute(
            &frozen,
            0,
            &Q::Range(RangePredicate::new(100, 220)),
            &Aux::default(),
        );
        assert!(
            narrow.stats.blocks_pruned > 40,
            "{}",
            narrow.stats.blocks_pruned
        );
        assert!(narrow.stats.rows_scanned < flat.active_rows());
        // The complete-scan regime still sees forgotten rows.
        let ex_all = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let r = ex_all.execute(
            &frozen,
            0,
            &Q::Range(RangePredicate::new(0, 100)),
            &Aux::default(),
        );
        assert_eq!(r.output.cardinality(), 100);
    }

    #[test]
    fn execute_join_surfaces_tier_accounting() {
        let mut left = Table::new(Schema::single("k"));
        left.insert_batch(&(0..100).collect::<Vec<i64>>(), 0)
            .unwrap();
        let mut right = Table::new(Schema::single("k"));
        // Second block disjoint from the build keys: prunes under meta.
        let vals: Vec<i64> = (0..1024)
            .map(|i| i % 100)
            .chain((0..1024).map(|i| 50_000 + i))
            .collect();
        right.insert_batch(&vals, 0).unwrap();
        let ex = Executor::default();
        let (hot_r, hot_stats) = ex.execute_join(&left, 0, &right, 0);
        assert_eq!(hot_stats.plan, PlanTag::FullScan);
        assert_eq!(hot_stats.result_rows, hot_r.stats.output_pairs);
        right.freeze_upto(2048);
        let (r, stats) = ex.execute_join(&left, 0, &right, 0);
        assert_eq!(r.pairs, hot_r.pairs, "freezing never changes the join");
        assert_eq!(stats.plan, PlanTag::TieredJoin);
        assert_eq!(stats.blocks_pruned, 1, "the 50k block");
        assert_eq!(
            stats.rows_scanned,
            left.active_rows() + right.active_rows() - 1024,
            "pruned probe rows subtract from the scanned accounting"
        );
        // The ground-truth executor reports a dense full-scan join.
        let ex_all = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let (truth, tstats) = ex_all.execute_join(&left, 0, &right, 0);
        assert_eq!(tstats.plan, PlanTag::FullScan);
        assert_eq!(truth.stats.output_pairs, 1024, "forgotten-inclusive");
    }

    #[test]
    fn pruned_scan_engages_with_zonemap() {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        t.insert_batch(&values, 0).unwrap();
        let zm = ZoneMap::build(&t, 0);
        let ex = Executor::default();
        let aux = Aux {
            zonemap: Some(&zm),
            ..Default::default()
        };
        let r = ex.execute(&t, 0, &Q::Range(RangePredicate::new(100, 200)), &aux);
        assert_eq!(r.stats.plan, PlanTag::PrunedScan);
        assert!(r.stats.blocks_pruned > 40);
        assert_eq!(r.output.cardinality(), 100);
    }
}
