//! The executor: runs queries under a forget-visibility mode, with
//! optional zone map, index and summary support, reporting per-query
//! execution statistics.

use amnesia_columnar::{
    Estimate, ModelStore, SortedIndex, SummaryStore, Table, ValueRange, WordZoneMap, ZoneMap,
};
use amnesia_workload::query::{AggKind, Query, RangePredicate};
use amnesia_workload::Query as Q;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::kernels;
use crate::mode::ForgetVisibility;
use crate::plan::{Plan, Planner};

use amnesia_columnar::RowId;

/// Auxiliary structures available to the executor.
#[derive(Default)]
pub struct Aux<'a> {
    /// Zone map over the queried column, if maintained.
    pub zonemap: Option<&'a ZoneMap>,
    /// Word-granularity zone map over the queried column: min/max per
    /// 64-row activity word, consulted inside the batch kernels so scans
    /// skip words the predicate cannot hit.
    pub word_zones: Option<&'a WordZoneMap>,
    /// Sorted index over the queried column, if built.
    pub index: Option<&'a SortedIndex>,
    /// Summaries of forgotten data (enables whole-table aggregates that
    /// account for what rotted away).
    pub summaries: Option<&'a SummaryStore>,
    /// Micro-models of forgotten data (paper §5 \[15\]): unlike summaries
    /// they also *interpolate* range-restricted aggregates.
    pub models: Option<&'a ModelStore>,
}

/// Result rows or an aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Matching row ids (insertion order for scans, value order for index
    /// probes).
    Rows(Vec<RowId>),
    /// Aggregate value; `None` encodes SQL NULL (empty selection).
    Agg(Option<f64>),
}

impl QueryOutput {
    /// Row count for row outputs, 0 for aggregates.
    pub fn cardinality(&self) -> usize {
        match self {
            QueryOutput::Rows(rows) => rows.len(),
            QueryOutput::Agg(_) => 0,
        }
    }

    /// The rows, if this is a row output.
    pub fn rows(&self) -> Option<&[RowId]> {
        match self {
            QueryOutput::Rows(r) => Some(r),
            QueryOutput::Agg(_) => None,
        }
    }

    /// The aggregate value, if this is an aggregate output.
    pub fn agg(&self) -> Option<Option<f64>> {
        match self {
            QueryOutput::Agg(v) => Some(*v),
            QueryOutput::Rows(_) => None,
        }
    }
}

/// Per-query execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows examined.
    pub rows_scanned: usize,
    /// Blocks skipped thanks to the zone map.
    pub blocks_pruned: usize,
    /// 64-row words skipped thanks to the word-granularity zone map.
    pub words_pruned: usize,
    /// Result cardinality (rows) or 0 for aggregates.
    pub result_rows: usize,
    /// Abstract cost charged by the cost model.
    pub cost: f64,
    /// Which plan ran ("full-scan", "pruned-scan", "index-probe").
    pub plan: PlanTag,
}

/// Compact plan identifier for stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlanTag {
    /// Full table scan.
    #[default]
    FullScan,
    /// Zone-map pruned scan.
    PrunedScan,
    /// Sorted-index probe.
    IndexProbe,
    /// Tier-aware scan: frozen blocks run the fused compressed kernels
    /// behind their cached block meta, the hot tail runs the flat
    /// kernel. Chosen automatically once a table holds frozen blocks.
    TieredScan,
    /// Tier-aware hash join: the build side streams frozen blocks' keys
    /// in compressed space, the probe side prunes frozen blocks against
    /// the build key range and probes survivors in their codec's domain
    /// (see [`crate::join`]). Chosen automatically once either side holds
    /// frozen blocks.
    TieredJoin,
}

/// A query result with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Rows or aggregate.
    pub output: QueryOutput,
    /// Statistics.
    pub stats: ExecStats,
}

/// Query executor.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    mode: ForgetVisibility,
    planner: Planner,
}

impl Executor {
    /// Executor with explicit mode and cost model.
    pub fn new(mode: ForgetVisibility, cost: CostModel) -> Self {
        Self {
            mode,
            planner: Planner::new(cost),
        }
    }

    /// The forget-visibility mode.
    pub fn mode(&self) -> ForgetVisibility {
        self.mode
    }

    /// Execute a query against column `col` of `table`.
    pub fn execute(&self, table: &Table, col: usize, query: &Query, aux: &Aux<'_>) -> ExecResult {
        match query {
            Q::Range(pred) => self.execute_range(table, col, *pred, aux),
            Q::Point(v) => self.execute_range(
                table,
                col,
                RangePredicate::new(*v, v.saturating_add(1)),
                aux,
            ),
            Q::Aggregate { kind, predicate } => {
                self.execute_aggregate(table, col, *kind, *predicate, aux)
            }
        }
    }

    /// Execute a hash equi-join `left.left_col = right.right_col` under
    /// the executor's visibility mode, surfacing the join kernel's tier
    /// accounting through [`ExecStats`]: `blocks_pruned` counts frozen
    /// probe blocks skipped against the build side's key range, and
    /// `rows_scanned` is the build rows plus the probe rows actually
    /// streamed (pruned probe rows subtract out — the work the block
    /// metadata saved). The plan reports [`PlanTag::TieredJoin`] once
    /// either side holds frozen blocks under the amnesiac regime.
    pub fn execute_join(
        &self,
        left: &Table,
        left_col: usize,
        right: &Table,
        right_col: usize,
    ) -> (crate::join::JoinResult, ExecStats) {
        let r = crate::join::hash_join(left, left_col, right, right_col, self.mode);
        let rows_scanned = r.stats.build_rows + r.stats.probe_rows - r.stats.probe_rows_skipped;
        let tiered =
            self.mode == ForgetVisibility::ActiveOnly && (left.has_frozen() || right.has_frozen());
        let stats = ExecStats {
            rows_scanned,
            blocks_pruned: r.stats.blocks_pruned,
            words_pruned: 0,
            result_rows: r.stats.output_pairs,
            cost: self.planner.cost_model().full_scan(rows_scanned),
            plan: if tiered {
                PlanTag::TieredJoin
            } else {
                PlanTag::FullScan
            },
        };
        (r, stats)
    }

    fn execute_range(
        &self,
        table: &Table,
        col: usize,
        pred: RangePredicate,
        aux: &Aux<'_>,
    ) -> ExecResult {
        if pred.is_empty() {
            return ExecResult {
                output: QueryOutput::Rows(Vec::new()),
                stats: ExecStats::default(),
            };
        }
        // In ScanSeesForgotten mode the *complete scan* is the only plan
        // that still covers forgotten tuples: zone maps and indexes track
        // active data only (paper §1: "a complete scan will fetch all
        // data, but a fast index-based query evaluation will skip the
        // forgotten data"). Completeness costs a full physical scan.
        //
        // A frozen table drops the external zone map from planning: the
        // tier's cached block meta prunes equivalently inside the scan
        // kernel, and the flat blocked kernel no longer applies.
        let zonemap = if table.has_frozen() {
            None
        } else {
            aux.zonemap
        };
        let (plan, cost) = match self.mode {
            ForgetVisibility::ScanSeesForgotten => (
                Plan::FullScan,
                self.planner.cost_model().full_scan(table.num_rows()),
            ),
            ForgetVisibility::ActiveOnly => {
                self.planner.plan_range(table, pred, zonemap, aux.index)
            }
        };
        let (rows, rows_scanned, blocks_pruned, words_pruned, tag) = match &plan {
            Plan::FullScan if table.has_frozen() && self.mode == ForgetVisibility::ActiveOnly => {
                // Tier-aware scan: block meta prunes frozen blocks, the
                // codecs' fused filters run on the survivors.
                let (rows, ts) = kernels::range_scan_tiered(table, col, pred);
                (
                    rows,
                    ts.rows_scanned,
                    ts.blocks_pruned,
                    0,
                    PlanTag::TieredScan,
                )
            }
            Plan::FullScan => {
                // Word-granularity zones slot into the full-scan plan:
                // same results, but the kernel skips words whose min/max
                // can't intersect the predicate. The complete-scan mode
                // must keep reading forgotten tuples, which zone entries
                // do not cover.
                let word_zones = match self.mode {
                    ForgetVisibility::ActiveOnly => aux.word_zones.filter(|wz| wz.column() == col),
                    ForgetVisibility::ScanSeesForgotten => None,
                };
                if let Some(wz) = word_zones {
                    let (rows, zs) = kernels::range_scan_active_zoned(table, col, wz, pred);
                    (rows, zs.rows_scanned, 0, zs.words_pruned, PlanTag::FullScan)
                } else {
                    let rows = match self.mode {
                        ForgetVisibility::ActiveOnly => {
                            kernels::range_scan_active(table, col, pred)
                        }
                        ForgetVisibility::ScanSeesForgotten => {
                            kernels::range_scan_all(table, col, pred)
                        }
                    };
                    let scanned = match self.mode {
                        ForgetVisibility::ActiveOnly => table.active_rows(),
                        ForgetVisibility::ScanSeesForgotten => table.num_rows(),
                    };
                    (rows, scanned, 0, 0, PlanTag::FullScan)
                }
            }
            Plan::PrunedScan { blocks, block_rows } => {
                let total_blocks = aux.zonemap.map(ZoneMap::num_blocks).unwrap_or(blocks.len());
                let rows = kernels::range_scan_blocks(table, col, pred, blocks, *block_rows);
                (
                    rows,
                    blocks.len() * block_rows,
                    total_blocks - blocks.len(),
                    0,
                    PlanTag::PrunedScan,
                )
            }
            Plan::IndexProbe => {
                let idx = aux.index.expect("planner only picks built indexes");
                let rows = idx.probe_range_active(table, pred.lo, pred.hi_inclusive());
                let scanned = rows.len();
                (rows, scanned, 0, 0, PlanTag::IndexProbe)
            }
        };
        let result_rows = rows.len();
        ExecResult {
            output: QueryOutput::Rows(rows),
            stats: ExecStats {
                rows_scanned,
                blocks_pruned,
                words_pruned,
                result_rows,
                cost,
                plan: tag,
            },
        }
    }

    fn execute_aggregate(
        &self,
        table: &Table,
        col: usize,
        kind: AggKind,
        predicate: Option<RangePredicate>,
        aux: &Aux<'_>,
    ) -> ExecResult {
        // One fused filter+aggregate pass yields every statistic the
        // combiners below might need (COUNT, SUM, MIN, MAX), so folding in
        // summaries or micro-models no longer rescans the table. A word-
        // granularity zone map slots straight into that pass when the
        // aggregate is predicated; a frozen table instead folds its
        // frozen blocks in code/offset space behind the cached block
        // meta (no decode, no zone map needed).
        let (active_state, scanned, blocks_pruned, words_pruned) = if table.has_frozen() {
            let (state, ts) = kernels::aggregate_state_tiered(table, col, predicate);
            (state, ts.rows_scanned, ts.blocks_pruned, 0)
        } else {
            match aux
                .word_zones
                .filter(|wz| wz.column() == col && predicate.is_some())
            {
                Some(wz) => {
                    let (state, zs) =
                        kernels::aggregate_state_active_zoned(table, col, wz, predicate);
                    (state, zs.rows_scanned, 0, zs.words_pruned)
                }
                None => {
                    let (state, scanned) = kernels::aggregate_state_active(table, col, predicate);
                    (state, scanned, 0, 0)
                }
            }
        };

        // Whole-table aggregates can fold in summaries of forgotten data
        // (paper §1: summaries answer "specific aggregation queries" only —
        // a predicate disables them because cell membership is unknown).
        // The cell folds into the running state, so a micro-model combine
        // below still sees the summary contribution.
        let mut state = active_state;
        if predicate.is_none() {
            if let Some(summaries) = aux.summaries {
                let cell = summaries.combined();
                if cell.count > 0 {
                    state.push_block(cell.count, cell.sum, cell.min, cell.max);
                }
            }
        }
        let mut value = state.finalize(kind);

        // Micro-models go further: their histograms pro-rate the
        // forgotten mass inside a predicate, so ranged aggregates get an
        // estimate instead of an active-only answer.
        if let Some(models) = aux.models {
            let range = predicate.map(|p| ValueRange { lo: p.lo, hi: p.hi });
            let est = models.estimate(range);
            if est.count > 1e-12 {
                value = Some(combine_with_estimate(&state, kind, &est));
            }
        }

        let cost = self.planner.cost_model().full_scan(scanned);
        ExecResult {
            output: QueryOutput::Agg(value),
            stats: ExecStats {
                rows_scanned: scanned,
                blocks_pruned,
                words_pruned,
                result_rows: 0,
                cost,
                plan: if table.has_frozen() {
                    PlanTag::TieredScan
                } else {
                    PlanTag::FullScan
                },
            },
        }
    }
}

/// Merge the aggregate state (active rows, plus any summary cell already
/// folded in by the executor) with a micro-model estimate of the
/// forgotten mass. The state is already restricted to the query's
/// predicate, so its COUNT/SUM slot straight into the combination.
fn combine_with_estimate(state: &kernels::AggState, kind: AggKind, est: &Estimate) -> f64 {
    let n_active = state.count() as f64;
    match kind {
        AggKind::Count => n_active + est.count,
        AggKind::Sum => state.sum() as f64 + est.sum,
        AggKind::Avg => (state.sum() as f64 + est.sum) / (n_active + est.count),
        AggKind::Min => {
            let m = est.min.map(|v| v as f64);
            match (state.finalize(AggKind::Min), m) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => f64::NAN,
            }
        }
        AggKind::Max => {
            let m = est.max.map(|v| v as f64);
            match (state.finalize(AggKind::Max), m) {
                (Some(a), Some(b)) => a.max(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => f64::NAN,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    fn table() -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30, 40, 50], 0).unwrap();
        t.forget(RowId(1), 1).unwrap(); // 20 forgotten
        t
    }

    #[test]
    fn range_active_only() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(15, 45)),
            &Aux::default(),
        );
        assert_eq!(r.output.rows().unwrap(), &[RowId(2), RowId(3)]);
        assert_eq!(r.stats.result_rows, 2);
        assert_eq!(r.stats.plan, PlanTag::FullScan);
    }

    #[test]
    fn scan_sees_forgotten_mode() {
        let t = table();
        let ex = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(15, 45)),
            &Aux::default(),
        );
        // The complete scan fetches the forgotten 20 as well.
        assert_eq!(r.output.rows().unwrap(), &[RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn index_path_always_skips_forgotten() {
        let t = table();
        let mut idx = SortedIndex::build(&t, 0);
        idx.rebuild(&t);
        // Force index choice by making the table "large" conceptually:
        // probe directly through the executor with aux present on a narrow
        // predicate. With only 5 rows the planner may still choose scans,
        // so call the probe path explicitly.
        let rows = idx.probe_range_active(&t, 15, 44);
        assert_eq!(rows, vec![RowId(2), RowId(3)]);
    }

    #[test]
    fn point_query() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(&t, 0, &Q::Point(30), &Aux::default());
        assert_eq!(r.output.rows().unwrap(), &[RowId(2)]);
        let miss = ex.execute(&t, 0, &Q::Point(20), &Aux::default());
        assert!(miss.output.rows().unwrap().is_empty(), "forgotten point");
    }

    #[test]
    fn aggregate_without_summaries_drifts() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Aggregate {
                kind: AggKind::Avg,
                predicate: None,
            },
            &Aux::default(),
        );
        // Active: 10,30,40,50 → 32.5 (true avg over history is 30).
        assert_eq!(r.output.agg().unwrap(), Some(32.5));
    }

    #[test]
    fn aggregate_with_summaries_recovers_exact_answer() {
        let t = table();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20); // the forgotten value
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            ..Default::default()
        };
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(30.0), "summary restores the exact average");

        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0));

        let min = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Min,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(min, Some(10.0));
    }

    #[test]
    fn predicated_aggregate_ignores_summaries() {
        let t = table();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20);
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            ..Default::default()
        };
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: Some(RangePredicate::new(0, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        // Summaries cannot be sliced by value: active-only answer.
        assert_eq!(avg, Some(32.5));
    }

    #[test]
    fn predicated_aggregate_uses_models() {
        let t = table();
        let mut models = ModelStore::new(8);
        models.absorb(1, 20); // the forgotten value
        models.seal();
        let ex = Executor::default();
        let aux = Aux {
            models: Some(&models),
            ..Default::default()
        };
        // Range [0, 100) contains the forgotten 20: COUNT recovers it.
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: Some(RangePredicate::new(0, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0), "model restores the ranged count");
        // Range [35, 100) excludes it: no model contribution.
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: Some(RangePredicate::new(35, 100)),
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(2.0), "40 and 50 only");
        // Whole-table AVG is exact from model totals.
        let avg = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Avg,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(30.0));
    }

    #[test]
    fn summaries_and_models_chain() {
        // Forget 20 (absorbed by the summary) and 30 (absorbed by the
        // model): both contributions must land in the final answer.
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30, 40, 50], 0).unwrap();
        t.forget(RowId(1), 1).unwrap();
        t.forget(RowId(2), 1).unwrap();
        let mut summaries = SummaryStore::new();
        summaries.absorb(0, 20);
        let mut models = ModelStore::new(8);
        models.absorb(1, 30);
        models.seal();
        let ex = Executor::default();
        let aux = Aux {
            summaries: Some(&summaries),
            models: Some(&models),
            ..Default::default()
        };
        let sum = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Sum,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        // Active 10+40+50 = 100, summary adds 20, model adds 30.
        assert_eq!(sum, Some(150.0));
        let count = ex
            .execute(
                &t,
                0,
                &Q::Aggregate {
                    kind: AggKind::Count,
                    predicate: None,
                },
                &aux,
            )
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(5.0));
    }

    #[test]
    fn empty_predicate_short_circuits() {
        let t = table();
        let ex = Executor::default();
        let r = ex.execute(
            &t,
            0,
            &Q::Range(RangePredicate::new(50, 10)),
            &Aux::default(),
        );
        assert!(r.output.rows().unwrap().is_empty());
        assert_eq!(r.stats.rows_scanned, 0);
    }

    #[test]
    fn word_zones_prune_full_scans() {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        t.insert_batch(&values, 0).unwrap();
        let wz = WordZoneMap::build(&t, 0);
        let ex = Executor::default();
        let q = Q::Range(RangePredicate::new(100, 200));
        let plain = ex.execute(&t, 0, &q, &Aux::default());
        let aux = Aux {
            word_zones: Some(&wz),
            ..Default::default()
        };
        let zoned = ex.execute(&t, 0, &q, &aux);
        assert_eq!(zoned.output, plain.output, "zones never change results");
        assert_eq!(zoned.stats.plan, PlanTag::FullScan);
        // 50k rows = 782 words; the sorted column leaves ~3 live.
        assert!(
            zoned.stats.words_pruned > 770,
            "{}",
            zoned.stats.words_pruned
        );
        assert!(zoned.stats.rows_scanned < plain.stats.rows_scanned);

        // Predicated aggregates ride the same zones.
        let agg = Q::Aggregate {
            kind: AggKind::Sum,
            predicate: Some(RangePredicate::new(100, 200)),
        };
        let plain_agg = ex.execute(&t, 0, &agg, &Aux::default());
        let zoned_agg = ex.execute(&t, 0, &agg, &aux);
        assert_eq!(zoned_agg.output, plain_agg.output);
        assert!(zoned_agg.stats.words_pruned > 770);
    }

    #[test]
    fn frozen_table_takes_tiered_plan_with_identical_results() {
        let mut flat = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        flat.insert_batch(&values, 0).unwrap();
        for r in (0..50_000u64).step_by(7) {
            flat.forget(RowId(r), 1).unwrap();
        }
        let mut frozen = flat.clone();
        frozen.freeze_upto(48_000);
        assert!(frozen.has_frozen());
        let ex = Executor::default();
        let queries = [
            Q::Range(RangePredicate::new(100, 220)),
            Q::Point(10_000),
            Q::Aggregate {
                kind: AggKind::Avg,
                predicate: Some(RangePredicate::new(1_000, 40_000)),
            },
            Q::Aggregate {
                kind: AggKind::Sum,
                predicate: None,
            },
        ];
        for q in &queries {
            let want = ex.execute(&flat, 0, q, &Aux::default());
            let got = ex.execute(&frozen, 0, q, &Aux::default());
            assert_eq!(got.output, want.output, "{q:?}");
            assert_eq!(got.stats.plan, PlanTag::TieredScan, "{q:?}");
        }
        // The narrow range prunes nearly every frozen block via meta.
        let narrow = ex.execute(
            &frozen,
            0,
            &Q::Range(RangePredicate::new(100, 220)),
            &Aux::default(),
        );
        assert!(
            narrow.stats.blocks_pruned > 40,
            "{}",
            narrow.stats.blocks_pruned
        );
        assert!(narrow.stats.rows_scanned < flat.active_rows());
        // The complete-scan regime still sees forgotten rows.
        let ex_all = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let r = ex_all.execute(
            &frozen,
            0,
            &Q::Range(RangePredicate::new(0, 100)),
            &Aux::default(),
        );
        assert_eq!(r.output.cardinality(), 100);
    }

    #[test]
    fn execute_join_surfaces_tier_accounting() {
        let mut left = Table::new(Schema::single("k"));
        left.insert_batch(&(0..100).collect::<Vec<i64>>(), 0)
            .unwrap();
        let mut right = Table::new(Schema::single("k"));
        // Second block disjoint from the build keys: prunes under meta.
        let vals: Vec<i64> = (0..1024)
            .map(|i| i % 100)
            .chain((0..1024).map(|i| 50_000 + i))
            .collect();
        right.insert_batch(&vals, 0).unwrap();
        let ex = Executor::default();
        let (hot_r, hot_stats) = ex.execute_join(&left, 0, &right, 0);
        assert_eq!(hot_stats.plan, PlanTag::FullScan);
        assert_eq!(hot_stats.result_rows, hot_r.stats.output_pairs);
        right.freeze_upto(2048);
        let (r, stats) = ex.execute_join(&left, 0, &right, 0);
        assert_eq!(r.pairs, hot_r.pairs, "freezing never changes the join");
        assert_eq!(stats.plan, PlanTag::TieredJoin);
        assert_eq!(stats.blocks_pruned, 1, "the 50k block");
        assert_eq!(
            stats.rows_scanned,
            left.active_rows() + right.active_rows() - 1024,
            "pruned probe rows subtract from the scanned accounting"
        );
        // The ground-truth executor reports a dense full-scan join.
        let ex_all = Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let (truth, tstats) = ex_all.execute_join(&left, 0, &right, 0);
        assert_eq!(tstats.plan, PlanTag::FullScan);
        assert_eq!(truth.stats.output_pairs, 1024, "forgotten-inclusive");
    }

    #[test]
    fn pruned_scan_engages_with_zonemap() {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..50_000).collect();
        t.insert_batch(&values, 0).unwrap();
        let zm = ZoneMap::build(&t, 0);
        let ex = Executor::default();
        let aux = Aux {
            zonemap: Some(&zm),
            ..Default::default()
        };
        let r = ex.execute(&t, 0, &Q::Range(RangePredicate::new(100, 200)), &aux);
        assert_eq!(r.stats.plan, PlanTag::PrunedScan);
        assert!(r.stats.blocks_pruned > 40);
        assert_eq!(r.output.cardinality(), 100);
    }
}
