//! Morsel-driven parallel plan execution.
//!
//! The scheduler splits every [`PhysicalPlan`](crate::physical::PhysicalPlan)
//! stage into *morsels* — work units aligned to the storage tiers, so no
//! frozen block and no 64-row activity word is ever shared between two
//! workers — and pulls them through a fixed pool of std scoped threads:
//!
//! ```text
//!        TieredColumn                     worker pool (ExecMode::Parallel(n))
//!  ┌────┬────┬────┬───┬╌╌╌╌┐      ┌──────────┐
//!  │ B0 │ B1 │ B2 │B3 │hot │ ───► │ worker 0 │──► partial (sel words /
//!  └────┴────┴────┴───┴╌╌╌╌┘      │ worker 1 │      GroupTable / pairs)
//!    morsels: frozen blocks       │    …     │            │
//!    grouped to ~MORSEL_ROWS,     └──────────┘            ▼
//!    word-aligned hot chunks       atomic-cursor    deterministic merge
//!                                  ranges + steals  in morsel order
//! ```
//!
//! * **Morsels** (`Span`): contiguous runs of frozen blocks grouped to a
//!   target row count, then word-aligned chunks over the hot tail (or the
//!   whole table when nothing is frozen). Block boundaries are a whole
//!   number of activity words by construction, so the chunking invariant
//!   of [`crate::parallel`] holds here too.
//! * **Scheduling** (`run_morsels`): each worker owns a contiguous range
//!   of morsel indices behind an atomic cursor; a worker that drains its
//!   range *steals* single morsels from the most-loaded peer. Steal counts
//!   surface in [`SchedStats`] and, through the executor, in
//!   [`ExecStats`](crate::exec::ExecStats).
//! * **Determinism**: every morsel's partial result is tagged with its
//!   morsel index and stitched back in morsel order, whichever worker ran
//!   it — selection words land at their word offset, gathered values and
//!   join pairs concatenate in ascending row order, per-worker
//!   [`GroupTable`]s merge by key and re-sort by global first-seen row.
//!   The output is **byte-identical** to serial execution, which survives
//!   as the equivalence oracle ([`ExecMode::Serial`]).
//! * **Zero extra decodes**: every per-morsel kernel is the same fused
//!   compressed-space kernel the serial path runs (selection masks,
//!   `for_each_active` streams, codec-domain probes), restricted to the
//!   morsel's blocks — each stage still touches each frozen block at most
//!   once, and never decodes it.

use std::collections::HashMap;
use std::time::Instant;

use amnesia_sync::atomic::{AtomicUsize, Ordering};
use amnesia_sync::thread;

use amnesia_columnar::{RowId, Table, Value};
use amnesia_util::WORD_BITS;

use crate::batch::{self, AggState, ProbeStats, TierStats};
use crate::group::{self, AggInput, GroupTable};
use crate::kernels;
use crate::physical::ColPred;

/// Default target rows per morsel: large enough that per-morsel overhead
/// (a result allocation, one cursor `fetch_add`) is noise, small enough
/// that a 1M-row table yields ~60 morsels for 8 workers to balance and
/// steal over. Tunable per executor via
/// [`Executor::with_morsel_rows`](crate::exec::Executor::with_morsel_rows)
/// or the `AMNESIA_MORSEL_ROWS` environment variable.
pub const MORSEL_ROWS: usize = 16_384;

/// Environment variable selecting the default executor's thread count
/// (`>1` enables [`ExecMode::Parallel`]); CI's test matrix sets it so the
/// equivalence suites run both executors.
pub const THREADS_ENV: &str = "AMNESIA_TEST_THREADS";

/// Environment variable overriding the default morsel size (rows), so
/// the parallel path engages on small tables in test runs.
pub const MORSEL_ROWS_ENV: &str = "AMNESIA_MORSEL_ROWS";

/// How [`Executor::execute_plan`](crate::exec::Executor::execute_plan)
/// runs a plan's stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One thread, stage by stage — the equivalence oracle.
    #[default]
    Serial,
    /// Morsel-driven across a fixed pool of `n` scoped threads. `n <= 1`
    /// behaves exactly like [`ExecMode::Serial`].
    Parallel(usize),
}

impl ExecMode {
    /// The mode selected by [`THREADS_ENV`]: `Parallel(n)` when the
    /// variable parses to `n > 1`, `Serial` otherwise.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 1 => ExecMode::Parallel(n),
            _ => ExecMode::Serial,
        }
    }

    /// Worker count: 1 for serial.
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel(n) => n.max(1),
        }
    }
}

/// The morsel size selected by [`MORSEL_ROWS_ENV`], floored at one
/// activity word; [`MORSEL_ROWS`] when unset.
pub(crate) fn morsel_rows_from_env() -> usize {
    std::env::var(MORSEL_ROWS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map_or(MORSEL_ROWS, |n| n.max(WORD_BITS))
}

/// Per-plan scheduler accounting, surfaced through
/// [`ExecStats`](crate::exec::ExecStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Morsels executed.
    pub morsels: usize,
    /// Morsels a worker claimed from another worker's range.
    pub steals: usize,
    /// Nanoseconds spent merging per-worker partial state at pipeline
    /// breakers (stitching selections, merging group tables, k-way sort
    /// merge).
    pub merge_ns: u64,
}

impl SchedStats {
    /// Fold in another stage's accounting.
    pub fn absorb(&mut self, other: &SchedStats) {
        self.morsels += other.morsels;
        self.steals += other.steals;
        self.merge_ns += other.merge_ns;
    }
}

/// One morsel of a table: a contiguous run of frozen blocks, or a
/// word-aligned row range on the hot tail (or a fully hot table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Span {
    /// Frozen blocks `[first, last)`.
    Blocks { first: usize, last: usize },
    /// Absolute rows `[lo, hi)`; `lo` is a multiple of [`WORD_BITS`].
    Rows { lo: usize, hi: usize },
}

/// Contiguous runs of frozen blocks grouped so each run covers about
/// `target_rows` rows (at least one block per run, uncapped count).
pub(crate) fn frozen_block_spans(
    frozen_blocks: usize,
    block_rows: usize,
    target_rows: usize,
) -> Vec<(usize, usize)> {
    if frozen_blocks == 0 {
        return Vec::new();
    }
    let per = target_rows.max(1).div_ceil(block_rows.max(1)).max(1);
    (0..frozen_blocks)
        .step_by(per)
        .map(|b| (b, (b + per).min(frozen_blocks)))
        .collect()
}

/// At most `threads` contiguous runs of frozen blocks, each at least
/// `min_rows` *rows* (not blocks: a table of many tiny blocks sizes its
/// chunks from `blocks × block_rows`, the same row-based morsel size the
/// scheduler uses, so the chunk count never explodes with the block
/// count).
pub(crate) fn block_chunks(
    frozen_blocks: usize,
    block_rows: usize,
    threads: usize,
    min_rows: usize,
) -> Vec<(usize, usize)> {
    if frozen_blocks == 0 {
        return Vec::new();
    }
    let total_rows = frozen_blocks * block_rows;
    let target = min_rows.max(total_rows.div_ceil(threads.max(1)));
    frozen_block_spans(frozen_blocks, block_rows, target)
}

/// Word-aligned row chunks of about `target_rows` over `[lo, hi)`.
/// `lo` must be word-aligned (block boundaries are).
fn push_row_spans(lo: usize, hi: usize, target_rows: usize, out: &mut Vec<Span>) {
    let step = target_rows.max(WORD_BITS).div_ceil(WORD_BITS) * WORD_BITS;
    let mut l = lo;
    while l < hi {
        let h = (l + step).min(hi);
        out.push(Span::Rows { lo: l, hi: h });
        l = h;
    }
}

/// Tier-boundary-aligned morsels covering every row of `table`: frozen
/// blocks grouped to ~`morsel_rows`, then the hot tail in word-aligned
/// chunks. Spans tile the row space in ascending order.
pub(crate) fn table_morsels(table: &Table, morsel_rows: usize) -> Vec<Span> {
    let n = table.num_rows();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if table.has_frozen() {
        let br = table.block_rows();
        for (first, last) in frozen_block_spans(table.frozen_blocks(), br, morsel_rows) {
            out.push(Span::Blocks { first, last });
        }
        push_row_spans(table.frozen_blocks() * br, n, morsel_rows, &mut out);
    } else {
        push_row_spans(0, n, morsel_rows, &mut out);
    }
    out
}

/// Plain index chunks `[lo, hi)` of about `target` items over `n` items
/// — the morsel unit for join-pair stages, where there is no tier to
/// align with.
pub(crate) fn index_chunks(n: usize, target: usize) -> Vec<(usize, usize)> {
    let step = target.max(1);
    (0..n)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(n)))
        .collect()
}

// ---------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------

/// Run `n` morsels across `threads` workers and return the per-morsel
/// results **in morsel order**, plus scheduler accounting.
///
/// Each worker owns a contiguous range of morsel indices behind an
/// atomic cursor; after draining its own range it steals one morsel at a
/// time from the peer with the most work left. Results are collected
/// per-worker and scattered back by morsel index, so downstream merges
/// see a deterministic order no matter which worker ran what.
pub fn run_morsels<R, F>(n: usize, threads: usize, run: F) -> (Vec<R>, SchedStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return (Vec::new(), SchedStats::default());
    }
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        let results = (0..n).map(&run).collect();
        return (
            results,
            SchedStats {
                morsels: n,
                ..Default::default()
            },
        );
    }
    let per = n.div_ceil(workers);
    let cursors: Vec<AtomicUsize> = (0..workers).map(|w| AtomicUsize::new(w * per)).collect();
    let ends: Vec<usize> = (0..workers).map(|w| ((w + 1) * per).min(n)).collect();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut steal_total = 0usize;
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursors = &cursors;
                let ends = &ends;
                let run = &run;
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut steals = 0usize;
                    // Own range first. Relaxed claim: each cursor word
                    // is independently atomic, and results travel to
                    // the collector through the scope-join edge, not
                    // through cursor ordering — the model suite
                    // (tests/model.rs, morsel exactly-once) verifies
                    // this happens-before shape on every explored
                    // schedule.
                    loop {
                        let i = cursors[w].fetch_add(1, Ordering::Relaxed);
                        if i >= ends[w] {
                            break;
                        }
                        out.push((i, run(i)));
                    }
                    // Steal one morsel at a time from the most-loaded
                    // peer until everyone is drained.
                    loop {
                        let victim = (0..workers).filter(|&v| v != w).max_by_key(|&v| {
                            ends[v].saturating_sub(cursors[v].load(Ordering::Relaxed))
                        });
                        let Some(v) = victim else { break };
                        // Relaxed re-check: the fetch_add below is the
                        // claim; a stale read here only costs one wasted
                        // steal attempt, never a double-claimed morsel.
                        // The model checker explores stale-read
                        // interleavings explicitly and proves no morsel
                        // double-executes or drops.
                        if ends[v].saturating_sub(cursors[v].load(Ordering::Relaxed)) == 0 {
                            break;
                        }
                        // Relaxed claim: cursors are the sole shared words
                        // and fetch_add is atomic per cursor; results are
                        // published by the scope join, not by this write —
                        // the join edge is the model-verified
                        // happens-before that makes Relaxed sufficient.
                        let i = cursors[v].fetch_add(1, Ordering::Relaxed);
                        if i < ends[v] {
                            steals += 1;
                            out.push((i, run(i)));
                        }
                    }
                    (out, steals)
                })
            })
            .collect();
        for h in handles {
            let (part, steals) = h.join().expect("morsel worker");
            steal_total += steals;
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
    });
    let results = slots
        .into_iter()
        .map(|r| r.expect("every morsel ran exactly once"))
        .collect();
    (
        results,
        SchedStats {
            morsels: n,
            steals: steal_total,
            merge_ns: 0,
        },
    )
}

// ---------------------------------------------------------------------
// Parallel plan operators: each fans one serial stage out over morsels
// and merges the partials deterministically.
// ---------------------------------------------------------------------

/// Parallel [`kernels::selection_scan`]: per-morsel selection words
/// stitched at their word offsets. An empty conjunction (a pure activity
/// copy) and single-morsel tables fall back to the serial kernel.
pub(crate) fn par_selection_scan(
    table: &Table,
    preds: &[ColPred],
    threads: usize,
    morsel_rows: usize,
) -> (Vec<u64>, TierStats, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if preds.is_empty() || threads <= 1 || spans.len() <= 1 {
        let (sel, ts) = kernels::selection_scan(table, preds);
        return (sel, ts, single_morsel(&spans));
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        kernels::selection_scan_span(table, preds, &spans[i])
    });
    let t0 = Instant::now();
    let nwords = table.num_rows().div_ceil(WORD_BITS);
    let mut sel = vec![0u64; nwords];
    let mut stats = TierStats::default();
    let br = table.block_rows();
    for (span, (words, ts)) in spans.iter().zip(parts) {
        let w0 = span_first_word(span, br);
        sel[w0..w0 + words.len()].copy_from_slice(&words);
        stats.merge(ts);
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (sel, stats, sched)
}

/// Parallel [`kernels::selection_scan_ordered`]: the cost-ordered scan
/// fanned over morsels, per-span selection words stitched at their word
/// offsets and per-predicate attribution merged across spans. Falls back
/// to the serial ordered kernel for empty conjunctions, one thread, or
/// single-morsel tables.
pub(crate) fn par_selection_scan_ordered(
    table: &Table,
    preds: &[ColPred],
    order: &[usize],
    threads: usize,
    morsel_rows: usize,
) -> (Vec<u64>, TierStats, Vec<kernels::PredScanStats>, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if preds.is_empty() || threads <= 1 || spans.len() <= 1 {
        let mut per_pred = vec![kernels::PredScanStats::default(); preds.len()];
        let (sel, ts) = kernels::selection_scan_ordered(table, preds, order, &mut per_pred);
        return (sel, ts, per_pred, single_morsel(&spans));
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        kernels::selection_scan_ordered_span(table, preds, order, &spans[i])
    });
    let t0 = Instant::now();
    let nwords = table.num_rows().div_ceil(WORD_BITS);
    let mut sel = vec![0u64; nwords];
    let mut stats = TierStats::default();
    let mut per_pred = vec![kernels::PredScanStats::default(); preds.len()];
    let br = table.block_rows();
    for (span, (words, ts, pp)) in spans.iter().zip(parts) {
        let w0 = span_first_word(span, br);
        sel[w0..w0 + words.len()].copy_from_slice(&words);
        stats.merge(ts);
        for (agg, part) in per_pred.iter_mut().zip(pp) {
            agg.merge(part);
        }
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (sel, stats, per_pred, sched)
}

/// Parallel [`group::grouped_fold`]: per-morsel [`GroupTable`]s (each
/// tracking the global first row of every key) merged by key and
/// re-sorted by first-seen row, reproducing the serial first-seen group
/// order exactly.
pub(crate) fn par_grouped_fold(
    table: &Table,
    sel: &[u64],
    key_col: usize,
    aggs: &[AggInput],
    threads: usize,
    morsel_rows: usize,
) -> (GroupTable, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if threads <= 1 || spans.len() <= 1 {
        return (
            group::grouped_fold(table, sel, key_col, aggs),
            single_morsel(&spans),
        );
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        group::grouped_fold_span(table, sel, key_col, aggs, &spans[i])
    });
    let t0 = Instant::now();
    let mut merged = GroupTable::new(aggs.len());
    for part in &parts {
        merged.absorb(part);
    }
    merged.sort_by_first_row();
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (merged, sched)
}

/// Parallel [`kernels::gather_column`]: per-morsel gathers concatenated
/// in morsel (= ascending row) order.
pub(crate) fn par_gather_column(
    table: &Table,
    sel: &[u64],
    col: usize,
    threads: usize,
    morsel_rows: usize,
) -> (Vec<Value>, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if threads <= 1 || spans.len() <= 1 {
        let mut out = Vec::new();
        kernels::gather_column(table, sel, col, &mut out);
        return (out, single_morsel(&spans));
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        let mut out = Vec::new();
        kernels::gather_column_span(table, sel, col, &spans[i], &mut out);
        out
    });
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (out, sched)
}

/// Parallel [`kernels::aggregate_selection`]: per-morsel states merged
/// in morsel order (integer-exact, so the fold order cannot change the
/// result — merging in a fixed order keeps even the accounting
/// deterministic).
pub(crate) fn par_aggregate_selection(
    table: &Table,
    sel: &[u64],
    col: usize,
    threads: usize,
    morsel_rows: usize,
) -> (AggState, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if threads <= 1 || spans.len() <= 1 {
        return (
            kernels::aggregate_selection(table, sel, col),
            single_morsel(&spans),
        );
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        kernels::aggregate_selection_span(table, sel, col, &spans[i])
    });
    let t0 = Instant::now();
    let mut state = AggState::new();
    for p in &parts {
        state.merge(p);
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (state, sched)
}

/// Parallel join build: per-morsel `key → ascending rows` maps merged in
/// morsel order, so each key's row list is byte-identical to the serial
/// build's.
/// A join build side: `key → ascending build rows` plus the observed
/// key range (`None` when no row survived the selection).
pub(crate) type BuildSide = (HashMap<Value, Vec<RowId>>, Option<(Value, Value)>);

pub(crate) fn par_build_rows_map(
    table: &Table,
    col: usize,
    words: &[u64],
    threads: usize,
    morsel_rows: usize,
) -> (BuildSide, SchedStats) {
    let spans = table_morsels(table, morsel_rows);
    if threads <= 1 || spans.len() <= 1 {
        return (
            crate::join::build_rows_map_with(table, col, words),
            single_morsel(&spans),
        );
    }
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        crate::join::build_rows_map_span(table, col, words, &spans[i])
    });
    let t0 = Instant::now();
    let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
    let mut range: Option<(Value, Value)> = None;
    for (part, part_range) in parts {
        if let Some((lo, hi)) = part_range {
            range = Some(match range {
                Some((a, b)) => (a.min(lo), b.max(hi)),
                None => (lo, hi),
            });
        }
        for (k, rows) in part {
            map.entry(k).or_default().extend(rows);
        }
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    ((map, range), sched)
}

/// Parallel tiered probe: frozen morsels probe in their codec's domain
/// via [`batch::probe_tiered_blocks_with`] (block-meta pruned against
/// the build key range, same accounting as the serial probe), hot
/// morsels probe the raw slice; pairs concatenate in morsel order —
/// byte-identical to [`batch::probe_tiered`].
pub(crate) fn par_probe(
    table: &Table,
    col: usize,
    sel: &[u64],
    build: &HashMap<Value, Vec<RowId>>,
    key_range: Option<(Value, Value)>,
    threads: usize,
    morsel_rows: usize,
) -> (Vec<(RowId, RowId)>, ProbeStats, SchedStats) {
    let tier = table.col_tier(col);
    let spans = table_morsels(table, morsel_rows);
    if threads <= 1 || spans.len() <= 1 {
        let mut pairs = Vec::new();
        let probe = batch::probe_tiered(tier, sel, build, key_range, &mut pairs);
        return (pairs, probe, single_morsel(&spans));
    }
    let hot = tier.hot_values();
    let hot_start = tier.hot_start();
    let (parts, mut sched) = run_morsels(spans.len(), threads, |i| {
        let mut out: Vec<(RowId, RowId)> = Vec::new();
        let mut stats = ProbeStats::default();
        match spans[i] {
            Span::Blocks { first, last } => {
                stats = batch::probe_tiered_blocks_with(
                    tier,
                    sel,
                    first,
                    last,
                    build,
                    key_range,
                    |ls, row| out.extend(ls.iter().map(|&l| (l, RowId::from(row)))),
                );
            }
            Span::Rows { lo, hi } => {
                for wi in lo / WORD_BITS..hi.div_ceil(WORD_BITS) {
                    let base = wi * WORD_BITS;
                    let mut active = batch::tail_word(sel, wi, hi - base);
                    while active != 0 {
                        let bit = active.trailing_zeros() as usize;
                        active &= active - 1;
                        let row = base + bit;
                        if let Some(ls) = build.get(&hot[row - hot_start]) {
                            out.extend(ls.iter().map(|&l| (l, RowId::from(row))));
                        }
                    }
                }
            }
        }
        (out, stats)
    });
    let t0 = Instant::now();
    let mut pairs = Vec::with_capacity(parts.iter().map(|(p, _)| p.len()).sum());
    let mut probe = ProbeStats::default();
    for (p, s) in parts {
        pairs.extend(p);
        probe.merge(s);
    }
    sched.merge_ns = t0.elapsed().as_nanos() as u64;
    (pairs, probe, sched)
}

/// Parallel stable sort: contiguous chunks sort on scoped threads, then
/// a leftmost-preference k-way merge stitches them — exactly what a
/// serial stable `sort_by` produces. Returns merge time in nanoseconds.
pub(crate) fn par_sort_by<T, C>(items: &mut Vec<T>, threads: usize, cmp: C) -> u64
where
    T: Send,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 || n < 2 {
        items.sort_by(&cmp);
        return 0;
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        for c in items.chunks_mut(chunk) {
            let cmp = &cmp;
            s.spawn(move || c.sort_by(cmp));
        }
    });
    let t0 = Instant::now();
    // K-way merge over the sorted chunks; on ties the leftmost chunk
    // wins, which is precisely stability across chunk boundaries.
    let mut heads: Vec<usize> = (0..items.len()).step_by(chunk).collect();
    let ends: Vec<usize> = heads.iter().map(|&lo| (lo + chunk).min(n)).collect();
    let mut out: Vec<T> = Vec::with_capacity(n);
    let src = std::mem::take(items);
    let mut taken: Vec<Option<T>> = src.into_iter().map(Some).collect();
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for k in 0..heads.len() {
            if heads[k] >= ends[k] {
                continue;
            }
            best = Some(match best {
                None => k,
                Some(b) => {
                    let a = taken[heads[k]].as_ref().expect("unconsumed");
                    let bv = taken[heads[b]].as_ref().expect("unconsumed");
                    if cmp(a, bv) == std::cmp::Ordering::Less {
                        k
                    } else {
                        b
                    }
                }
            });
        }
        let k = best.expect("n items remain");
        out.push(taken[heads[k]].take().expect("unconsumed"));
        heads[k] += 1;
    }
    *items = out;
    t0.elapsed().as_nanos() as u64
}

/// Accounting for a stage that fell back to the serial kernel: the
/// scheduler never engaged, so it executed zero morsels.
fn single_morsel(_spans: &[Span]) -> SchedStats {
    SchedStats::default()
}

/// The first selection word a span covers.
fn span_first_word(span: &Span, block_rows: usize) -> usize {
    match *span {
        Span::Blocks { first, .. } => first * block_rows / WORD_BITS,
        Span::Rows { lo, .. } => lo / WORD_BITS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;
    use amnesia_util::SimRng;

    fn sample(n: usize, block_rows: usize, freeze: usize) -> Table {
        let mut rng = SimRng::new(0x5EED);
        let mut t = Table::with_block_rows(Schema::new(vec!["k", "v"]), block_rows);
        for i in 0..n {
            t.insert(&[(i % 7) as i64, rng.range_i64(0, 1_000)], 0)
                .unwrap();
        }
        for _ in 0..n / 5 {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
        t.freeze_upto(freeze);
        t
    }

    #[test]
    fn morsels_tile_the_row_space() {
        let t = sample(10_000, 128, 8_192);
        let spans = table_morsels(&t, 256);
        let mut next = 0usize;
        for s in &spans {
            let (lo, hi) = match *s {
                Span::Blocks { first, last } => (first * 128, last * 128),
                Span::Rows { lo, hi } => (lo, hi),
            };
            assert_eq!(lo, next, "spans tile without gaps");
            assert!(hi > lo);
            assert_eq!(lo % WORD_BITS, 0, "word-aligned starts");
            next = hi;
        }
        assert_eq!(next, t.num_rows());
    }

    #[test]
    fn scheduler_runs_every_morsel_once_in_order() {
        for (n, threads) in [(1usize, 8usize), (7, 2), (64, 7), (100, 8), (5, 64)] {
            let (results, sched) = run_morsels(n, threads, |i| i * 3);
            assert_eq!(results, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(sched.morsels, n);
        }
    }

    #[test]
    fn block_chunks_derive_from_rows_not_block_count() {
        // 1024 tiny (64-row) blocks = 65536 rows: at a 4096-row floor
        // that is at most 16 chunks, never 1024.
        let chunks = block_chunks(1024, 64, 64, 4096);
        assert!(chunks.len() <= 16, "got {}", chunks.len());
        for &(a, b) in &chunks {
            assert!(
                (b - a) * 64 >= 4096 || b == 1024,
                "chunk [{a},{b}) under floor"
            );
        }
        // Chunks tile the block space.
        let mut next = 0;
        for &(a, b) in &chunks {
            assert_eq!(a, next);
            next = b;
        }
        assert_eq!(next, 1024);
        assert!(block_chunks(0, 64, 8, 4096).is_empty());
    }

    #[test]
    fn par_sort_matches_serial_stable_sort() {
        let mut rng = SimRng::new(99);
        let mut data: Vec<(i64, usize)> = (0..5_000).map(|i| (rng.range_i64(0, 50), i)).collect();
        let mut want = data.clone();
        want.sort_by_key(|a| a.0); // stable: ties keep index order
        for threads in [2, 3, 7, 8] {
            let mut got = data.clone();
            par_sort_by(&mut got, threads, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, want, "threads={threads}");
        }
        data.truncate(1);
        par_sort_by(&mut data, 8, |a, b| a.0.cmp(&b.0));
        assert_eq!(data.len(), 1);
    }

    #[test]
    fn par_selection_scan_equals_serial() {
        let t = sample(20_000, 128, 12_800);
        let preds = [ColPred::range(1, 100, 800), ColPred::range(0, 1, 6)];
        let (want, want_ts) = kernels::selection_scan(&t, &preds);
        for threads in [1, 2, 7, 8] {
            let (got, ts, sched) = par_selection_scan(&t, &preds, threads, 256);
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(ts, want_ts, "accounting matches serial");
            if threads > 1 {
                assert!(sched.morsels > 1);
            }
        }
    }
}
