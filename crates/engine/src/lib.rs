//! Query execution over amnesiac tables.
//!
//! The paper sketches three execution regimes for forgotten data (§1):
//! delete it, stop indexing it ("a complete scan will fetch all data, but a
//! fast index-based query evaluation will skip the forgotten data"), or
//! tier/summarize it. This crate provides the executor that realizes those
//! regimes over [`amnesia_columnar::Table`] — and, since the morsel
//! rewrite, runs every plan stage either serially or morsel-parallel with
//! byte-identical results.
//!
//! # The morsel pipeline
//!
//! Every [`physical::PhysicalPlan`] stage — selection scan, join
//! build/probe, grouped fold, projection gather, sort — executes as a
//! sequence of *morsels*: work units aligned to the storage tiers, so a
//! frozen block or a 64-row activity word never straddles two workers.
//!
//! ```text
//!   plan stage                 morsel scheduler              pipeline breaker
//!   ──────────                 ────────────────              ────────────────
//!   TieredColumn               ┌─ worker 0 ─┐ partial 0 ┐
//!   [B0|B1|B2|B3|hot tail] ──► ├─ worker 1 ─┤ partial 1 ├──► deterministic
//!    └──┬───┘└┬─┘ └──┬──┘      ├─   ...    ─┤    ...    │    merge in morsel
//!   block-run  │  word-aligned └─ worker n ─┘ partial n ┘    order ==
//!   morsels  morsel  row morsels   atomic cursors +          serial output
//!                                  work stealing
//! ```
//!
//! Workers pull morsels from per-worker atomic cursors (stealing from the
//! most-loaded peer when their range drains) and fold each morsel with
//! the *same* fused compressed-space kernel the serial path uses — so
//! parallelism adds zero block decodes. Per-worker partial state
//! (selection words, [`group::GroupTable`]s, pair buffers) merges at the
//! pipeline breakers in morsel order: selections stitch at word offsets,
//! gathers and join pairs concatenate by ascending row, group tables
//! merge by key then re-sort by global first-seen row, and the sort
//! breaker k-way-merges stably. [`morsel::ExecMode::Serial`] survives as
//! the equivalence oracle the tests hold the parallel path to.
//!
//! # Modules
//!
//! * [`batch`] — the word-at-a-time vectorized batch layer: selection
//!   masks over raw column slices and packed activity words, fused
//!   filter+aggregate, whole-word skips of forgotten regions,
//! * [`kernels`] — the scan / filter / aggregate entry points, built on
//!   [`batch`] (row-at-a-time references live in [`batch::scalar`]),
//! * [`physical`] — the **physical plan**: the one execution API every
//!   query surface lowers onto (tier-aware scans with pushed-down
//!   predicate conjunctions as 64-bit selection masks, tiered hash
//!   join, fused/grouped aggregation, projection gather, sort + limit);
//!   SQL's `BoundQuery::lower()` and the workload driver both target it,
//! * [`morsel`] — the morsel-driven scheduler described above: span
//!   enumeration, the work-stealing worker pool, and the parallel
//!   operators with their deterministic merges,
//! * [`group`] — the vectorized hash group-by kernel, folding `GROUP BY`
//!   aggregates straight over compressed blocks,
//! * [`plan`] — a small cost-based planner choosing full scan, zone-map
//!   pruned scan, or sorted-index probe,
//! * [`stats`] — block-statistics cardinality estimation: per-column
//!   pseudo-histograms from cached `BlockMeta`, predicate selectivity,
//!   codec-aware evaluation costs, and the conjunct ordering the
//!   executor runs (`selectivity × eval_cost`, ascending),
//! * [`cost`] — the abstract cost model (hot rows vs. cold fetches,
//!   per-codec predicate evaluation),
//! * [`exec`] — the [`exec::Executor`] tying it together (serial or
//!   [`morsel::ExecMode::Parallel`]) and reporting [`exec::ExecStats`]
//!   for every query,
//! * [`join`] — hash equi-joins with per-visibility answers (the §2.2
//!   SELECT-PROJECT-JOIN subspace, and §5's referential precision),
//! * [`parallel`] — std-scoped parallel scan/aggregate kernels over
//!   word-aligned chunks (free-standing counterparts predating the
//!   scheduler; their chunking now derives from the same morsel size),
//! * [`mode`] — forget-visibility modes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cost;
pub mod exec;
pub mod group;
pub mod join;
pub mod kernels;
pub mod mode;
pub mod morsel;
pub mod parallel;
pub mod physical;
pub mod plan;
pub mod stats;

pub use batch::{AggState, BATCH_ROWS};
pub use cost::CostModel;
pub use exec::{
    Aux, ExecResult, ExecStats, Executor, PhysResult, PredStat, QueryOutput, Selection,
    StageEstimate,
};
pub use group::GroupTable;
pub use join::{hash_join, hash_join_count, JoinResult, JoinStats};
pub use mode::ForgetVisibility;
pub use morsel::{ExecMode, SchedStats};
pub use parallel::{par_aggregate_active, par_range_scan_active};
pub use physical::{ColPred, PhysItem, PhysScan, PhysicalPlan, PlanHint, Scalar, SortDir};
pub use plan::{Plan, Planner};
pub use stats::{estimate_scan_rows, order_predicates, q_error, ColumnStats, PredOrder};
