//! A small cost-based planner.
//!
//! For every range query the executor can (a) scan everything, (b) scan
//! only zone-map candidate blocks, or (c) probe a sorted index when one is
//! built. The planner picks the cheapest under the [`CostModel`]. Keeping
//! the decision explicit lets the ablation benches show how dropping
//! indexes (paper §4.4) degrades plans gracefully instead of breaking
//! queries.

use amnesia_columnar::{SortedIndex, Table, ZoneMap};
use amnesia_workload::query::RangePredicate;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;

/// Physical plan choice for a range selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    /// Scan every physical row.
    FullScan,
    /// Scan only these zone-map candidate blocks.
    PrunedScan {
        /// Candidate block ids.
        blocks: Vec<usize>,
        /// Rows per block.
        block_rows: usize,
    },
    /// Probe the sorted index.
    IndexProbe,
}

impl Plan {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Plan::FullScan => "full-scan",
            Plan::PrunedScan { .. } => "pruned-scan",
            Plan::IndexProbe => "index-probe",
        }
    }
}

/// Chooses plans under a cost model.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    cost: CostModel,
}

impl Planner {
    /// Planner with a custom cost model.
    pub fn new(cost: CostModel) -> Self {
        Self { cost }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Choose a plan for a range predicate. Returns the plan and its
    /// estimated cost.
    pub fn plan_range(
        &self,
        table: &Table,
        pred: RangePredicate,
        zonemap: Option<&ZoneMap>,
        index: Option<&SortedIndex>,
    ) -> (Plan, f64) {
        let n = table.num_rows();
        let mut best = (Plan::FullScan, self.cost.full_scan(n));

        if let Some(zm) = zonemap {
            let blocks = zm.candidate_blocks(pred.lo, pred.hi_inclusive());
            let cost = self.cost.pruned_scan(blocks.len(), zm.block_rows());
            if cost < best.1 {
                best = (
                    Plan::PrunedScan {
                        blocks,
                        block_rows: zm.block_rows(),
                    },
                    cost,
                );
            }
        }

        if let Some(idx) = index {
            if idx.is_usable() {
                // Cardinality estimate: uniform fraction of the seen range.
                let span = table
                    .max_seen(idx.column())
                    .zip(table.min_seen(idx.column()))
                    .map(|(max, min)| (max - min + 1).max(1))
                    .unwrap_or(1);
                let est_rows = (pred.width() as f64 / span as f64).min(1.0) * idx.len() as f64;
                let cost = self.cost.index_probe_cost(est_rows);
                if cost < best.1 {
                    best = (Plan::IndexProbe, cost);
                }
            }
        }

        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    fn big_table(n: i64) -> Table {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..n).collect();
        t.insert_batch(&values, 0).unwrap();
        t
    }

    #[test]
    fn selective_query_prefers_index() {
        let t = big_table(100_000);
        let idx = SortedIndex::build(&t, 0);
        let planner = Planner::default();
        let (plan, _) = planner.plan_range(&t, RangePredicate::new(500, 600), None, Some(&idx));
        assert_eq!(plan, Plan::IndexProbe);
    }

    #[test]
    fn wide_query_prefers_scan_over_index() {
        let t = big_table(1000);
        let idx = SortedIndex::build(&t, 0);
        let planner = Planner::default();
        let (plan, _) = planner.plan_range(&t, RangePredicate::new(0, 1000), None, Some(&idx));
        // Index would return everything: probing is pure overhead.
        assert_eq!(plan, Plan::FullScan);
    }

    #[test]
    fn zonemap_pruning_wins_when_blocks_drop() {
        let t = big_table(100_000);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 1024);
        let planner = Planner::default();
        let (plan, cost) = planner.plan_range(&t, RangePredicate::new(500, 600), Some(&zm), None);
        match plan {
            Plan::PrunedScan { blocks, .. } => {
                assert!(blocks.len() <= 2, "narrow range touches ≤ 2 blocks");
            }
            p => panic!("expected pruned scan, got {p:?}"),
        }
        assert!(cost < planner.cost_model().full_scan(100_000));
    }

    #[test]
    fn dropped_index_is_ignored() {
        let t = big_table(10_000);
        let mut idx = SortedIndex::build(&t, 0);
        idx.drop_index();
        let planner = Planner::default();
        let (plan, _) = planner.plan_range(&t, RangePredicate::new(5, 10), None, Some(&idx));
        assert_eq!(plan, Plan::FullScan);
    }

    #[test]
    fn no_aux_structures_full_scan() {
        let t = big_table(100);
        let planner = Planner::default();
        let (plan, cost) = planner.plan_range(&t, RangePredicate::new(0, 10), None, None);
        assert_eq!(plan, Plan::FullScan);
        assert!((cost - planner.cost_model().full_scan(100)).abs() < 1e-9);
    }
}
