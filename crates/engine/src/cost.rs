//! Abstract cost model: the pricing side of the cost-based planner.
//!
//! The simulator is "mostly interested in trends rather than speed"
//! (paper §2.1), so costs are abstract units rather than microseconds:
//! what matters is the *relative* price of touching a hot row, probing an
//! index, dragging a tuple back from cold storage (the paper's Glacier
//! anecdote), or — new with the tier-aware planner — evaluating one
//! predicate against one row *in a codec's own domain*.
//!
//! The planner runs an estimate → order → execute → feedback loop with
//! this module pricing the middle step:
//!
//! ```text
//!            BlockMeta (min/max/active per frozen block)
//!                          │
//!        ┌─────────────────▼──────────────────┐
//!        │ engine::stats — pseudo-histograms  │  estimate
//!        │ selectivity(pred), per-codec cost  │
//!        └─────────────────┬──────────────────┘
//!                          │ rank = selectivity × pred_eval_cost
//!        ┌─────────────────▼──────────────────┐
//!        │ Executor::execute_plan — conjuncts │  order + execute
//!        │ run cheapest-most-selective first, │
//!        │ residuals refine sparsely over the │
//!        │ surviving selection words          │
//!        └─────────────────┬──────────────────┘
//!                          │ est vs actual rows, per-pred prunes
//!        ┌─────────────────▼──────────────────┐
//!        │ ExecStats / EXPLAIN — estimation   │  feedback
//!        │ quality is a testable artifact     │
//!        └────────────────────────────────────┘
//! ```
//!
//! Per-codec predicate costs encode how each encoding evaluates a range
//! predicate without decoding ([`EncodedBlock::filter_range_masks`]):
//! RLE compares once per *run* and fans the verdict out word-at-a-time,
//! so its per-row price is almost free; plain and FOR compare every row
//! (FOR pays a rebase into offset space); dict binary-searches the
//! dictionary once but then translates every row through the code table;
//! delta must prefix-sum the whole block to reconstruct values, making it
//! the most expensive residual to re-touch.
//!
//! [`EncodedBlock::filter_range_masks`]: amnesia_columnar::compress::EncodedBlock::filter_range_masks

use amnesia_columnar::compress::Encoding;
use serde::{Deserialize, Serialize};

/// Cost coefficients in abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of examining one hot row in a scan.
    pub row_scan: f64,
    /// Fixed overhead per block visited (decode + zone check).
    pub block_overhead: f64,
    /// Base cost of an index probe (binary search).
    pub index_probe: f64,
    /// Cost per row produced through the index path.
    pub index_row: f64,
    /// Cost of fetching one tuple from cold storage — deliberately huge.
    pub cold_fetch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            row_scan: 1.0,
            block_overhead: 4.0,
            index_probe: 32.0,
            index_row: 2.0,
            cold_fetch: 10_000.0,
        }
    }
}

impl CostModel {
    /// Cost of a full scan over `rows` physical rows.
    pub fn full_scan(&self, rows: usize) -> f64 {
        rows as f64 * self.row_scan
    }

    /// Cost of scanning `blocks` blocks of at most `block_rows` rows.
    pub fn pruned_scan(&self, blocks: usize, block_rows: usize) -> f64 {
        blocks as f64 * (self.block_overhead + block_rows as f64 * self.row_scan)
    }

    /// Cost of an index probe returning an estimated `est_rows` rows.
    pub fn index_probe_cost(&self, est_rows: f64) -> f64 {
        self.index_probe + est_rows * self.index_row
    }

    /// Cost of recovering `n` tuples from cold storage.
    pub fn cold_recovery(&self, n: usize) -> f64 {
        n as f64 * self.cold_fetch
    }

    /// Relative cost of evaluating one range predicate against one row
    /// of a block in codec space (`None` = the uncompressed hot tail).
    /// Abstract units on the [`row_scan`](CostModel::row_scan) scale:
    /// an RLE block amortizes one comparison over a whole run, FOR pays
    /// a predicate rebase but compares packed words, dict translates
    /// every row through its code table, and delta reconstructs values
    /// by prefix-summing the block.
    pub fn pred_eval_cost(&self, encoding: Option<Encoding>) -> f64 {
        let relative = match encoding {
            Some(Encoding::Rle) => 0.05,
            Some(Encoding::Plain) | None => 1.0,
            Some(Encoding::ForPack) => 1.1,
            Some(Encoding::Dict) => 1.4,
            Some(Encoding::Delta) => 1.8,
        };
        relative * self.row_scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ordering_makes_sense() {
        let m = CostModel::default();
        // Probing beats scanning for selective queries on big tables.
        assert!(m.index_probe_cost(10.0) < m.full_scan(100_000));
        // Scanning beats probing for tiny tables.
        assert!(m.full_scan(8) < m.index_probe_cost(8.0));
        // Cold recovery dwarfs everything at comparable cardinality.
        assert!(m.cold_recovery(10) > m.full_scan(10_000));
    }

    #[test]
    fn pruned_scan_cheaper_than_full_when_blocks_skipped() {
        let m = CostModel::default();
        let full = m.full_scan(1024 * 100);
        let pruned = m.pruned_scan(3, 1024);
        assert!(pruned < full / 10.0);
    }

    #[test]
    fn codec_eval_costs_rank_rle_cheapest_delta_dearest() {
        let m = CostModel::default();
        let rle = m.pred_eval_cost(Some(Encoding::Rle));
        let plain = m.pred_eval_cost(Some(Encoding::Plain));
        let forp = m.pred_eval_cost(Some(Encoding::ForPack));
        let dict = m.pred_eval_cost(Some(Encoding::Dict));
        let delta = m.pred_eval_cost(Some(Encoding::Delta));
        assert!(rle < plain && plain <= forp && forp < dict && dict < delta);
        assert_eq!(m.pred_eval_cost(None), plain, "hot tail prices as plain");
    }
}
