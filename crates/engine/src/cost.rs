//! Abstract cost model.
//!
//! The simulator is "mostly interested in trends rather than speed"
//! (paper §2.1), so costs are abstract units rather than microseconds:
//! what matters is the *relative* price of touching a hot row, probing an
//! index, or dragging a tuple back from cold storage (the paper's Glacier
//! anecdote: retrieval is orders of magnitude more expensive than keeping
//! bytes parked).

use serde::{Deserialize, Serialize};

/// Cost coefficients in abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of examining one hot row in a scan.
    pub row_scan: f64,
    /// Fixed overhead per block visited (decode + zone check).
    pub block_overhead: f64,
    /// Base cost of an index probe (binary search).
    pub index_probe: f64,
    /// Cost per row produced through the index path.
    pub index_row: f64,
    /// Cost of fetching one tuple from cold storage — deliberately huge.
    pub cold_fetch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            row_scan: 1.0,
            block_overhead: 4.0,
            index_probe: 32.0,
            index_row: 2.0,
            cold_fetch: 10_000.0,
        }
    }
}

impl CostModel {
    /// Cost of a full scan over `rows` physical rows.
    pub fn full_scan(&self, rows: usize) -> f64 {
        rows as f64 * self.row_scan
    }

    /// Cost of scanning `blocks` blocks of at most `block_rows` rows.
    pub fn pruned_scan(&self, blocks: usize, block_rows: usize) -> f64 {
        blocks as f64 * (self.block_overhead + block_rows as f64 * self.row_scan)
    }

    /// Cost of an index probe returning an estimated `est_rows` rows.
    pub fn index_probe_cost(&self, est_rows: f64) -> f64 {
        self.index_probe + est_rows * self.index_row
    }

    /// Cost of recovering `n` tuples from cold storage.
    pub fn cold_recovery(&self, n: usize) -> f64 {
        n as f64 * self.cold_fetch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ordering_makes_sense() {
        let m = CostModel::default();
        // Probing beats scanning for selective queries on big tables.
        assert!(m.index_probe_cost(10.0) < m.full_scan(100_000));
        // Scanning beats probing for tiny tables.
        assert!(m.full_scan(8) < m.index_probe_cost(8.0));
        // Cold recovery dwarfs everything at comparable cardinality.
        assert!(m.cold_recovery(10) > m.full_scan(10_000));
    }

    #[test]
    fn pruned_scan_cheaper_than_full_when_blocks_skipped() {
        let m = CostModel::default();
        let full = m.full_scan(1024 * 100);
        let pruned = m.pruned_scan(3, 1024);
        assert!(pruned < full / 10.0);
    }
}
