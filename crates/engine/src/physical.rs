//! The physical plan: the one execution API every query surface lowers
//! onto.
//!
//! Before this layer existed the engine's vectorized kernels were only
//! reachable through per-column entry points, so the SQL front-end ran
//! its own row-at-a-time pipeline (`iter_active()` + `Table::value` per
//! row) and threw away everything the batch/compressed/tiered kernels
//! had won. A [`PhysicalPlan`] describes a full query — tier-aware scans
//! with a *conjunction* of pushed-down predicates, an optional tiered
//! hash join, fused or grouped aggregation, projection gather, and
//! sort + limit — and [`Executor::execute_plan`] runs it entirely on the
//! selection-mask machinery:
//!
//! ```text
//! BoundQuery (SQL)  ──lower()──►  PhysicalPlan  ──execute_plan()──►  rows + ExecStats
//! workload Query    ──[`ColPred::from_range`]──►  the same scan operator
//!                     (`Executor::run_scan`) + the same fused AggState folds
//! ```
//!
//! * **Scan**: each table slot evaluates its predicate conjunction as
//!   64-bit selection masks — `sel = activity & pred₀ & pred₁ & …` —
//!   per activity word on hot data and per compressed block on frozen
//!   data (codec-fused `filter_range_masks`, cached block-meta pruning
//!   for every predicate column). See [`crate::kernels::selection_scan`].
//! * **Join**: the build side streams keys in compressed space under the
//!   scan's selection words, the probe side runs
//!   [`crate::batch::probe_tiered`] with key-range block pruning.
//! * **Aggregate**: ungrouped aggregates fold through the codecs'
//!   `fold_range_masked` (no decode); `GROUP BY` runs the vectorized
//!   hash group-by of [`crate::group`], which folds frozen blocks in
//!   compressed space.
//! * **Sort**: type-aware total ordering over [`Scalar`]s — `i64` keys
//!   compare exactly (no `f64` collapse), `NULL` sorts first.
//!
//! [`Executor::execute_plan`]: crate::exec::Executor::execute_plan

use std::cmp::Ordering;
use std::fmt;

use amnesia_columnar::{BlockMeta, Table, Value};
use amnesia_workload::query::{AggKind, RangePredicate};

use crate::batch::AggState;
use crate::exec::{ExecStats, PlanTag};

/// One output value of a physical plan: the engine-level datum that SQL
/// re-exports as `Datum`. Integers stay integers end to end; `Float`
/// carries `AVG` results and `SUM`s that overflow `i64` (checked
/// widening, never silent wraparound); `Null` is an aggregate over an
/// empty selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer (columns, COUNT/SUM/MIN/MAX).
    Int(i64),
    /// Floating point (AVG, or a SUM widened past the `i64` domain).
    Float(f64),
    /// Aggregate over an empty selection.
    Null,
}

impl Scalar {
    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Scalar::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value (ints widened), `None` for NULL.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(*v as f64),
            Scalar::Float(v) => Some(*v),
            Scalar::Null => None,
        }
    }

    /// Type-aware total ordering for ORDER BY: `NULL` sorts first,
    /// integers compare as integers (exact above 2^53, where the old
    /// collapse-to-`f64` comparator tied distinct keys), floats by
    /// [`f64::total_cmp`], and mixed int/float pairs compare exactly via
    /// the float's integral part — a real `-inf` orders *after* NULL
    /// instead of tying with it.
    pub fn total_cmp(&self, other: &Scalar) -> Ordering {
        match (self, other) {
            (Scalar::Null, Scalar::Null) => Ordering::Equal,
            (Scalar::Null, _) => Ordering::Less,
            (_, Scalar::Null) => Ordering::Greater,
            (Scalar::Int(a), Scalar::Int(b)) => a.cmp(b),
            (Scalar::Float(a), Scalar::Float(b)) => a.total_cmp(b),
            (Scalar::Int(a), Scalar::Float(b)) => cmp_int_float(*a, *b),
            (Scalar::Float(a), Scalar::Int(b)) => cmp_int_float(*b, *a).reverse(),
        }
    }
}

/// Exact `i64` vs `f64` comparison: never rounds the integer through
/// `f64` (which is lossy above 2^53). NaN sorts after every integer.
fn cmp_int_float(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        return Ordering::Less;
    }
    // Beyond the i64 domain the sign of f decides outright. 2^63 (== the
    // first f64 at or above i64::MAX + 1) and below -2^63 are exact here.
    if f >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if f < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    // floor(f) now fits i64. For |f| >= 2^53, f is integral and the
    // i64 → f64 round-trip below is exact; for smaller f it is exact
    // anyway.
    let fi = f.floor() as i64;
    match i.cmp(&fi) {
        // i equals the integral part: a positive fraction pushes f above.
        Ordering::Equal => {
            if f > fi as f64 {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => write!(f, "{v:.4}"),
            Scalar::Null => write!(f, "NULL"),
        }
    }
}

/// Finalize an [`AggState`] into a [`Scalar`] for one aggregate kind.
///
/// `SUM` accumulates in `i128` and converts *checked*: a total outside
/// the `i64` domain widens to [`Scalar::Float`] instead of silently
/// wrapping (the old `as i64` truncation bug). Empty selections yield
/// `NULL` (`COUNT` yields 0).
pub fn finalize_scalar(state: &AggState, kind: AggKind) -> Scalar {
    if state.count() == 0 {
        return match kind {
            AggKind::Count => Scalar::Int(0),
            _ => Scalar::Null,
        };
    }
    match kind {
        AggKind::Count => Scalar::Int(state.count() as i64),
        AggKind::Sum => match i64::try_from(state.sum()) {
            Ok(v) => Scalar::Int(v),
            Err(_) => Scalar::Float(state.sum() as f64),
        },
        AggKind::Avg => Scalar::Float(state.sum() as f64 / state.count() as f64),
        AggKind::Min => state.min_value().map_or(Scalar::Null, Scalar::Int),
        AggKind::Max => state.max_value().map_or(Scalar::Null, Scalar::Int),
    }
}

/// One pushed-down predicate of a physical scan: an *inclusive* value
/// range `[lo, hi]` over a column ordinal, optionally negated (the
/// complement, for `<>`). Inclusive bounds represent every SQL
/// comparison exactly — including at the `i64` domain edges, where the
/// half-open form `[lo, hi)` cannot express "`v >= lo`" without
/// overflowing `hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColPred {
    /// Column ordinal within the scanned table.
    pub col: usize,
    /// Inclusive lower bound (`lo > hi` encodes the empty range).
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
    /// Evaluate the complement (`v < lo || v > hi`).
    pub negated: bool,
    /// Human-readable rendering for EXPLAIN (`orders.amount > 10`).
    pub display: String,
}

impl ColPred {
    /// A plain inclusive range predicate.
    pub fn range(col: usize, lo: Value, hi: Value) -> Self {
        Self {
            col,
            lo,
            hi,
            negated: false,
            display: format!("col{col} BETWEEN {lo} AND {hi}"),
        }
    }

    /// Lift a half-open engine [`RangePredicate`] (the workload algebra)
    /// into the inclusive form.
    pub fn from_range(col: usize, pred: RangePredicate) -> Self {
        let mut p = Self::range(col, pred.lo, pred.hi_inclusive());
        if pred.is_empty() {
            // Normalized empty: lo > hi.
            p.lo = 0;
            p.hi = -1;
        }
        p
    }

    /// The half-open [`RangePredicate`] this predicate is equivalent to,
    /// when one exists (not negated, upper bound below the domain edge).
    /// The single-predicate scan uses it to reach the cost-based
    /// planner's zone-map / index access paths unchanged.
    pub fn as_range(&self) -> Option<RangePredicate> {
        if self.negated {
            return None;
        }
        if self.is_empty_range() {
            return Some(RangePredicate::new(0, 0));
        }
        if self.hi == Value::MAX {
            return None;
        }
        Some(RangePredicate::new(self.lo, self.hi + 1))
    }

    /// True when the (non-negated) range can match no value.
    #[inline]
    pub fn is_empty_range(&self) -> bool {
        self.lo > self.hi
    }

    /// Does `v` pass?
    #[inline]
    pub fn matches(&self, v: Value) -> bool {
        (self.lo <= v && v <= self.hi) != self.negated
    }

    /// Can any active row of a frozen block with this cached meta pass?
    /// Stale meta bounds are only ever wide, so `false` is always safe
    /// to skip on — for the negated form the block prunes only when its
    /// whole active range provably sits *inside* `[lo, hi]`.
    #[inline]
    pub fn block_may_match(&self, meta: &BlockMeta) -> bool {
        if meta.active == 0 {
            return false;
        }
        if self.is_empty_range() {
            return self.negated;
        }
        if self.negated {
            !(meta.min >= self.lo && meta.max <= self.hi)
        } else {
            meta.may_match_inclusive(self.lo, self.hi)
        }
    }
}

/// Sort direction of the optional `ORDER BY` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (SQL default).
    Asc,
    /// Descending.
    Desc,
}

/// One table scan of a physical plan: the pushed-down predicate
/// conjunction, combined at execution time as 64-bit selection masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysScan {
    /// Predicates ANDed over this slot's table.
    pub preds: Vec<ColPred>,
    /// EXPLAIN label (`Scan orders AS o [active-only]`).
    pub label: String,
}

/// The equi-join of a two-table plan: build on slot 0, probe slot 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Join column ordinal in the slot-0 (build) table.
    pub left_col: usize,
    /// Join column ordinal in the slot-1 (probe) table.
    pub right_col: usize,
    /// EXPLAIN rendering (`c.id = o.customer_id`).
    pub display: String,
}

/// One output item of a physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysItem {
    /// Pass-through column (projection, or the group key).
    Column {
        /// Table slot.
        slot: usize,
        /// Column ordinal.
        col: usize,
        /// Output display name.
        display: String,
    },
    /// Aggregate over a column (`None` = `COUNT(*)`).
    Aggregate {
        /// Function.
        kind: AggKind,
        /// Input `(slot, col)`; `None` only for COUNT(*).
        arg: Option<(usize, usize)>,
        /// Output display name.
        display: String,
    },
}

impl PhysItem {
    /// Output display name.
    pub fn display(&self) -> &str {
        match self {
            PhysItem::Column { display, .. } | PhysItem::Aggregate { display, .. } => display,
        }
    }

    /// Is this an aggregate item?
    pub fn is_aggregate(&self) -> bool {
        matches!(self, PhysItem::Aggregate { .. })
    }
}

/// A full physical query plan, ready for
/// [`Executor::execute_plan`](crate::exec::Executor::execute_plan).
///
/// How the executor should drive a plan's physical choices.
///
/// [`CostBased`](PlanHint::CostBased) — the default — lets the executor
/// consult the block-statistics layer ([`crate::stats`]): conjunctive
/// predicates run in estimated `selectivity × eval_cost` order with
/// sparse residual refinement, the hash join builds on the side with the
/// smaller estimated post-filter cardinality, and a merge join replaces
/// the hash join when both key columns are provably frozen-sorted.
///
/// [`SyntacticOrder`](PlanHint::SyntacticOrder) is the escape hatch and
/// equivalence oracle: predicates evaluate exactly as written, the join
/// always builds on slot 0, and no estimates are recorded. Both hints
/// must produce byte-identical rows — the test suite holds them to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanHint {
    /// Statistics-driven predicate ordering, join-side choice, and
    /// merge-join selection (the default).
    #[default]
    CostBased,
    /// Evaluate everything in the plan's written order — the
    /// cost-model-free oracle path.
    SyntacticOrder,
}

/// The shape mirrors the operator pipeline bottom-up: per-slot scans
/// (selection masks), optional hash join, projection or (grouped)
/// aggregation over the surviving selection, then sort + limit.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Per-slot scans; 1 or 2 entries.
    pub scans: Vec<PhysScan>,
    /// Optional equi-join (requires 2 scans).
    pub join: Option<JoinSpec>,
    /// Output items.
    pub items: Vec<PhysItem>,
    /// Group key `(slot, col, display)`.
    pub group_by: Option<(usize, usize, String)>,
    /// Sort: output item index + direction.
    pub order_by: Option<(usize, SortDir)>,
    /// Row cap.
    pub limit: Option<u64>,
    /// Cost-based execution, or the syntactic escape hatch.
    pub hint: PlanHint,
}

impl PhysicalPlan {
    /// Does the plan aggregate (grouped or global)?
    pub fn has_aggregates(&self) -> bool {
        self.group_by.is_some() || self.items.iter().any(PhysItem::is_aggregate)
    }

    /// The [`PlanTag`] slot `slot`'s scan will report, given its table
    /// (used for EXPLAIN; execution re-derives it from the actual path
    /// taken).
    pub fn scan_tag(&self, table: &Table) -> PlanTag {
        if table.has_frozen() {
            PlanTag::TieredScan
        } else {
            PlanTag::FullScan
        }
    }

    /// Render the physical operator tree for EXPLAIN. With `tables`
    /// (slot-ordered) the access-path tags are resolved against the live
    /// storage tiers; without, the tags describe the plan shape only.
    pub fn explain(&self, tables: Option<&[&Table]>) -> String {
        self.render(tables, None)
    }

    /// Render the *executed* plan tree: the EXPLAIN shape annotated with
    /// the run's [`ExecStats`] — estimated vs. actual rows per stage
    /// (`est≈… act=…`), the predicate order the cost model actually ran
    /// (with each predicate's pruned/refined frozen-block counts), the
    /// hash-join build side, and the merge-join operator when the
    /// statistics chose it.
    pub fn explain_executed(&self, tables: Option<&[&Table]>, stats: &ExecStats) -> String {
        self.render(tables, Some(stats))
    }

    fn render(&self, tables: Option<&[&Table]>, stats: Option<&ExecStats>) -> String {
        let tag = |slot: usize| -> String {
            match tables.and_then(|ts| ts.get(slot)) {
                Some(t) => format!(" plan={}", plan_tag_name(self.scan_tag(t))),
                None => String::new(),
            }
        };
        let mut lines: Vec<String> = Vec::new();
        if let Some(l) = self.limit {
            lines.push(format!("Limit {l}"));
        }
        if let Some((idx, dir)) = &self.order_by {
            lines.push(format!(
                "Sort {}{}",
                self.items[*idx].display(),
                if *dir == SortDir::Desc { " DESC" } else { "" }
            ));
        }
        if let Some((_, _, display)) = &self.group_by {
            lines.push(format!(
                "GroupBy {display} [vectorized hash, compressed-block fold]"
            ));
        } else if self.items.iter().any(PhysItem::is_aggregate) {
            lines.push("Aggregate [fused, zero-decode]".to_string());
        }
        let proj: Vec<&str> = self.items.iter().map(PhysItem::display).collect();
        lines.push(format!("Project {}", proj.join(", ")));

        let scan_line = |slot: usize| -> String {
            let scan = &self.scans[slot];
            let mut s = scan.label.clone();
            if !scan.preds.is_empty() {
                let filters: Vec<&str> = scan.preds.iter().map(|p| p.display.as_str()).collect();
                s.push_str(&format!(" filter: {}", filters.join(" AND ")));
                s.push_str(" [64-bit selection masks]");
            }
            s.push_str(&tag(slot));
            if let Some(st) = stats {
                let mut ps: Vec<_> = st.pred_stats.iter().filter(|p| p.slot == slot).collect();
                if ps.len() > 1 {
                    ps.sort_by_key(|p| p.exec_rank);
                    let order: Vec<String> = ps
                        .iter()
                        .map(|p| {
                            format!(
                                "{} (est≈{:.0}, pruned {}, refined {})",
                                p.display, p.est_rows, p.blocks_pruned, p.blocks_refined
                            )
                        })
                        .collect();
                    s.push_str(&format!(" cost-order: {}", order.join(" → ")));
                }
                if let Some(e) = st.stage_estimates.get(slot) {
                    s.push_str(&format!(" est≈{:.0} act={}", e.est_rows, e.actual_rows));
                }
            }
            s
        };

        let mut out = String::new();
        let mut depth = 0usize;
        for line in &lines {
            if depth == 0 {
                out.push_str(line);
            } else {
                out.push_str(&format!("\n{}└─ {line}", "   ".repeat(depth - 1)));
            }
            depth += 1;
        }
        if let Some(join) = &self.join {
            let tiered = tables.is_some_and(|ts| ts.iter().any(|t| t.has_frozen()));
            let merge = stats.is_some_and(|st| st.plan == PlanTag::MergeJoin);
            let mut jline = format!(
                "\n{}└─ {} {} [{}]",
                "   ".repeat(depth.saturating_sub(1)),
                if merge { "MergeJoin" } else { "HashJoin" },
                join.display,
                if merge {
                    "sorted frozen runs, no hash table"
                } else if tiered {
                    "tiered: compressed build/probe"
                } else {
                    "hash build/probe"
                }
            );
            if let Some(st) = stats {
                if let Some(b) = st.build_side {
                    jline.push_str(&format!(" build=slot{b}"));
                }
                if let Some(e) = st.stage_estimates.get(self.scans.len()) {
                    jline.push_str(&format!(" est≈{:.0} act={}", e.est_rows, e.actual_rows));
                }
            }
            out.push_str(&jline);
            out.push_str(&format!("\n{}├─ {}", "   ".repeat(depth), scan_line(0)));
            out.push_str(&format!("\n{}└─ {}", "   ".repeat(depth), scan_line(1)));
        } else {
            out.push_str(&format!(
                "\n{}└─ {}",
                "   ".repeat(depth.saturating_sub(1)),
                scan_line(0)
            ));
        }
        out
    }
}

/// Stable lowercase name of a [`PlanTag`] for EXPLAIN output.
pub fn plan_tag_name(tag: PlanTag) -> &'static str {
    match tag {
        PlanTag::FullScan => "full-scan",
        PlanTag::PrunedScan => "pruned-scan",
        PlanTag::IndexProbe => "index-probe",
        PlanTag::TieredScan => "tiered-scan",
        PlanTag::TieredJoin => "tiered-join",
        PlanTag::MergeJoin => "merge-join",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colpred_matches_and_negation() {
        let p = ColPred::range(0, 10, 20);
        assert!(p.matches(10) && p.matches(20) && !p.matches(21) && !p.matches(9));
        let mut n = ColPred::range(0, 10, 20);
        n.negated = true;
        assert!(!n.matches(15) && n.matches(9) && n.matches(21));
    }

    #[test]
    fn colpred_roundtrips_range_predicate() {
        let r = RangePredicate::new(5, 11);
        let p = ColPred::from_range(0, r);
        assert_eq!((p.lo, p.hi), (5, 10));
        assert_eq!(p.as_range(), Some(r));
        // Domain edge: inclusive hi == MAX has no half-open equivalent.
        let edge = ColPred::range(0, 0, Value::MAX);
        assert_eq!(edge.as_range(), None);
        assert!(edge.matches(Value::MAX));
    }

    #[test]
    fn colpred_block_meta_pruning() {
        let meta = BlockMeta {
            min: 100,
            max: 200,
            active: 50,
        };
        assert!(ColPred::range(0, 150, 160).block_may_match(&meta));
        assert!(!ColPred::range(0, 300, 400).block_may_match(&meta));
        // Negated prunes only when the whole block sits inside the range.
        let mut n = ColPred::range(0, 50, 250);
        n.negated = true;
        assert!(!n.block_may_match(&meta), "all active values inside");
        let mut n2 = ColPred::range(0, 150, 160);
        n2.negated = true;
        assert!(n2.block_may_match(&meta));
        let dead = BlockMeta {
            min: 0,
            max: 0,
            active: 0,
        };
        assert!(!ColPred::range(0, 0, 0).block_may_match(&dead));
    }

    #[test]
    fn scalar_total_order_is_exact_above_2_53() {
        let a = Scalar::Int((1 << 53) + 1);
        let b = Scalar::Int((1 << 53) + 2);
        assert_eq!(a.total_cmp(&b), Ordering::Less, "f64 collapse would tie");
        assert_eq!(
            Scalar::Null.total_cmp(&Scalar::Float(f64::NEG_INFINITY)),
            Ordering::Less,
            "NULL sorts before a real -inf"
        );
        assert_eq!(
            Scalar::Int(3).total_cmp(&Scalar::Float(3.5)),
            Ordering::Less
        );
        assert_eq!(
            Scalar::Float(3.0).total_cmp(&Scalar::Int(3)),
            Ordering::Equal
        );
        assert_eq!(
            Scalar::Int(i64::MAX).total_cmp(&Scalar::Float(9.3e18)),
            Ordering::Less
        );
        assert_eq!(
            Scalar::Int(i64::MIN).total_cmp(&Scalar::Float(-9.3e18)),
            Ordering::Greater
        );
    }

    #[test]
    fn finalize_widens_overflowing_sum() {
        let mut s = AggState::new();
        s.push(i64::MAX);
        s.push(i64::MAX);
        match finalize_scalar(&s, AggKind::Sum) {
            Scalar::Float(v) => assert!((v - 2.0 * i64::MAX as f64).abs() < 1e4),
            other => panic!("expected widened float, got {other:?}"),
        }
        let mut ok = AggState::new();
        ok.push(40);
        ok.push(2);
        assert_eq!(finalize_scalar(&ok, AggKind::Sum), Scalar::Int(42));
        assert_eq!(
            finalize_scalar(&AggState::new(), AggKind::Sum),
            Scalar::Null
        );
        assert_eq!(
            finalize_scalar(&AggState::new(), AggKind::Count),
            Scalar::Int(0)
        );
    }

    #[test]
    fn explain_renders_physical_tree() {
        let plan = PhysicalPlan {
            scans: vec![PhysScan {
                preds: vec![ColPred {
                    col: 1,
                    lo: 11,
                    hi: i64::MAX,
                    negated: false,
                    display: "orders.amount > 10".into(),
                }],
                label: "Scan orders [active-only]".into(),
            }],
            join: None,
            items: vec![PhysItem::Aggregate {
                kind: AggKind::Count,
                arg: None,
                display: "count(*)".into(),
            }],
            group_by: None,
            order_by: None,
            limit: None,
            hint: PlanHint::CostBased,
        };
        let text = plan.explain(None);
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("Scan orders"), "{text}");
        assert!(text.contains("orders.amount > 10"), "{text}");
        assert!(text.contains("selection masks"), "{text}");
    }
}
