//! Vectorized hash group-by: `GROUP BY key` aggregation that folds
//! straight over compressed blocks.
//!
//! The SQL surface used to group row-at-a-time — one `HashMap` probe
//! plus one `Table::value` point read *per row per aggregate*. This
//! kernel consumes the physical plan's selection-mask words instead:
//! per frozen block it streams the group-key column and every aggregate
//! input column through the codecs' `for_each_active` under the block's
//! selection words (ascending row order for every codec, so the streams
//! stay aligned by position), lands them in per-block scratch buffers,
//! and folds the zipped rows into a [`GroupTable`] — one hash probe per
//! row, zero block decodes, zero dense column materialization. The hot
//! tail folds directly from the raw slices with no scratch at all.
//!
//! `COUNT(*)` aggregates fold as bare count bumps; an aggregate over the
//! group key aliases the key stream instead of re-reading the column.

use std::collections::HashMap;

use amnesia_columnar::{Table, Value};
use amnesia_util::WORD_BITS;

use crate::batch::AggState;

/// Accumulated groups: first-seen order, one [`AggState`] per aggregate
/// input per group (row-major: `states[group * n_aggs + agg]`).
#[derive(Debug, Clone)]
pub struct GroupTable {
    index: HashMap<Value, u32>,
    keys: Vec<Value>,
    /// The smallest row (or insertion ordinal, for [`Self::slot`]) that
    /// produced each group — what "first-seen order" means once morsels
    /// fold out of row order.
    first_rows: Vec<usize>,
    states: Vec<AggState>,
    n_aggs: usize,
}

impl GroupTable {
    /// Empty table for `n_aggs` aggregate inputs per group.
    pub fn new(n_aggs: usize) -> Self {
        Self {
            index: HashMap::new(),
            keys: Vec::new(),
            first_rows: Vec::new(),
            states: Vec::new(),
            n_aggs,
        }
    }

    /// The slot of `key`'s aggregate states, allocating on first sight.
    #[inline]
    pub fn slot(&mut self, key: Value) -> usize {
        let next = self.keys.len() as u32;
        let g = *self.index.entry(key).or_insert(next);
        if g == next {
            self.first_rows.push(self.keys.len());
            self.keys.push(key);
            self.states
                .extend(std::iter::repeat_n(AggState::new(), self.n_aggs));
        }
        g as usize * self.n_aggs
    }

    /// [`Self::slot`] that also records the *global* row feeding the
    /// group, keeping the smallest across revisits — the morsel folds
    /// use this so a later [`Self::sort_by_first_row`] can reproduce the
    /// serial first-seen group order.
    #[inline]
    pub(crate) fn slot_at(&mut self, key: Value, row: usize) -> usize {
        let next = self.keys.len() as u32;
        let g = *self.index.entry(key).or_insert(next);
        if g == next {
            self.first_rows.push(row);
            self.keys.push(key);
            self.states
                .extend(std::iter::repeat_n(AggState::new(), self.n_aggs));
        } else if row < self.first_rows[g as usize] {
            self.first_rows[g as usize] = row;
        }
        g as usize * self.n_aggs
    }

    /// Merge another table's groups into this one: states merge per key
    /// (integer-exact), first rows keep the minimum.
    pub(crate) fn absorb(&mut self, other: &GroupTable) {
        debug_assert_eq!(self.n_aggs, other.n_aggs);
        for g in 0..other.len() {
            let slot = self.slot_at(other.keys[g], other.first_rows[g]);
            for a in 0..self.n_aggs {
                self.states[slot + a].merge(&other.states[g * other.n_aggs + a]);
            }
        }
    }

    /// Reorder groups by ascending first row. After absorbing per-morsel
    /// tables (whose spans tile the row space), this is exactly the
    /// order a serial fold would have discovered the keys in.
    pub(crate) fn sort_by_first_row(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&g| self.first_rows[g]);
        let mut keys = Vec::with_capacity(self.len());
        let mut first_rows = Vec::with_capacity(self.len());
        let mut states = Vec::with_capacity(self.states.len());
        for (new_g, &g) in order.iter().enumerate() {
            keys.push(self.keys[g]);
            first_rows.push(self.first_rows[g]);
            states.extend_from_slice(&self.states[g * self.n_aggs..(g + 1) * self.n_aggs]);
            self.index.insert(self.keys[g], new_g as u32);
        }
        self.keys = keys;
        self.first_rows = first_rows;
        self.states = states;
    }

    /// Group keys in first-seen order.
    pub fn keys(&self) -> &[Value] {
        &self.keys
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no row folded in.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The aggregate states of group `g` (one per aggregate input).
    pub fn group_states(&self, g: usize) -> &[AggState] {
        &self.states[g * self.n_aggs..(g + 1) * self.n_aggs]
    }

    /// Mutable state of aggregate `a` in the group whose states start at
    /// `slot` (as returned by [`Self::slot`]).
    #[inline]
    pub fn state_mut(&mut self, slot: usize, a: usize) -> &mut AggState {
        &mut self.states[slot + a]
    }

    /// `COUNT(*)` bump for aggregate `a` of the group at `slot`.
    #[inline]
    pub fn bump(&mut self, slot: usize, a: usize) {
        bump(&mut self.states[slot + a]);
    }
}

/// One aggregate input of a grouped fold: the column to stream, or
/// `None` for `COUNT(*)` (a bare count bump, no values read).
pub type AggInput = Option<usize>;

/// Bump-only fold for `COUNT(*)`: counts without disturbing min/max/sum.
#[inline]
fn bump(state: &mut AggState) {
    state.push_block(1, 0, Value::MAX, Value::MIN);
}

/// Fold the selected rows of `table` into `groups`, keyed by `key_col`,
/// aggregating each of `aggs` — the vectorized hash group-by. `sel` is
/// the scan's selection-mask vector (one word per 64 rows).
pub fn grouped_fold(table: &Table, sel: &[u64], key_col: usize, aggs: &[AggInput]) -> GroupTable {
    let mut groups = GroupTable::new(aggs.len());
    if !table.has_frozen() {
        let keys = table.col_values(key_col);
        let cols: Vec<Option<&[Value]>> = aggs
            .iter()
            .map(|a| a.map(|c| table.col_values(c)))
            .collect();
        for (wi, &w) in sel.iter().enumerate() {
            let mut w = w;
            let base = wi * WORD_BITS;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let row = base + bit;
                let slot = groups.slot(keys[row]);
                for (a, col) in cols.iter().enumerate() {
                    match col {
                        Some(values) => groups.state_mut(slot, a).push(values[row]),
                        None => bump(groups.state_mut(slot, a)),
                    }
                }
            }
        }
        return groups;
    }

    // Frozen prefix: stream key + aggregate columns per block into
    // scratch buffers (each codec visits selected rows in ascending
    // order, so position `i` lines up across columns), then fold the
    // zipped rows. Distinct aggregate columns are gathered once; an
    // aggregate over the key column aliases the key buffer.
    let key_tier = table.col_tier(key_col);
    let mut distinct: Vec<usize> = Vec::new();
    for a in aggs.iter().flatten() {
        if *a != key_col && !distinct.contains(a) {
            distinct.push(*a);
        }
    }
    /// Where each aggregate reads its per-row input from (resolved once,
    /// outside the per-row fold loop).
    enum Src {
        /// `COUNT(*)`: no input.
        Count,
        /// Aggregate over the group key: alias the key stream.
        Key,
        /// Scratch buffer `i` (one per distinct aggregate column).
        Buf(usize),
    }
    let srcs: Vec<Src> = aggs
        .iter()
        .map(|a| match a {
            None => Src::Count,
            Some(c) if *c == key_col => Src::Key,
            Some(c) => Src::Buf(distinct.iter().position(|d| d == c).expect("gathered")),
        })
        .collect();
    let mut key_buf: Vec<Value> = Vec::new();
    let mut bufs: Vec<Vec<Value>> = vec![Vec::new(); distinct.len()];
    for b in 0..key_tier.frozen_blocks() {
        let bw = crate::batch::block_words(key_tier, sel, b);
        if bw.iter().all(|&w| w == 0) {
            continue;
        }
        key_buf.clear();
        key_tier.note_block_access(b);
        key_tier
            .frozen(b)
            .expect("frozen block")
            .encoded()
            .for_each_active(bw, |_, v| key_buf.push(v));
        for (i, &col) in distinct.iter().enumerate() {
            bufs[i].clear();
            let tier = table.col_tier(col);
            tier.note_block_access(b);
            tier.frozen(b)
                .expect("columns freeze in lockstep")
                .encoded()
                .for_each_active(bw, |_, v| bufs[i].push(v));
        }
        for (i, &key) in key_buf.iter().enumerate() {
            let slot = groups.slot(key);
            for (a, src) in srcs.iter().enumerate() {
                match src {
                    Src::Key => groups.state_mut(slot, a).push(key),
                    Src::Buf(j) => {
                        let v = bufs[*j][i];
                        groups.state_mut(slot, a).push(v)
                    }
                    Src::Count => bump(groups.state_mut(slot, a)),
                }
            }
        }
    }
    // Hot tail: raw-slice folds, no scratch.
    let key_tail = key_tier.hot_values();
    let tail_start = key_tier.hot_start();
    let tails: Vec<Option<&[Value]>> = aggs
        .iter()
        .map(|a| a.map(|c| table.col_tier(c).hot_values()))
        .collect();
    for (j, chunk) in key_tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let mut w = crate::batch::tail_word(sel, wi, chunk.len());
        let base = j * WORD_BITS;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            let slot = groups.slot(chunk[bit]);
            for (a, tail) in tails.iter().enumerate() {
                match tail {
                    Some(values) => groups.state_mut(slot, a).push(values[base + bit]),
                    None => bump(groups.state_mut(slot, a)),
                }
            }
        }
    }
    groups
}

/// [`grouped_fold`] restricted to one morsel of the table, recording each
/// group's smallest global row so per-morsel tables can be
/// [absorbed](GroupTable::absorb) and
/// [re-sorted](GroupTable::sort_by_first_row) into the serial first-seen
/// order. Same fused streams, same scratch discipline, zero decodes.
pub(crate) fn grouped_fold_span(
    table: &Table,
    sel: &[u64],
    key_col: usize,
    aggs: &[AggInput],
    span: &crate::morsel::Span,
) -> GroupTable {
    let mut groups = GroupTable::new(aggs.len());
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            let key_tier = table.col_tier(key_col);
            let br = table.block_rows();
            let mut distinct: Vec<usize> = Vec::new();
            for a in aggs.iter().flatten() {
                if *a != key_col && !distinct.contains(a) {
                    distinct.push(*a);
                }
            }
            enum Src {
                Count,
                Key,
                Buf(usize),
            }
            let srcs: Vec<Src> = aggs
                .iter()
                .map(|a| match a {
                    None => Src::Count,
                    Some(c) if *c == key_col => Src::Key,
                    Some(c) => Src::Buf(distinct.iter().position(|d| d == c).expect("gathered")),
                })
                .collect();
            let mut key_buf: Vec<Value> = Vec::new();
            let mut row_buf: Vec<usize> = Vec::new();
            let mut bufs: Vec<Vec<Value>> = vec![Vec::new(); distinct.len()];
            for b in first..last {
                let bw = crate::batch::block_words(key_tier, sel, b);
                if bw.iter().all(|&w| w == 0) {
                    continue;
                }
                key_buf.clear();
                row_buf.clear();
                let block_base = b * br;
                key_tier.note_block_access(b);
                key_tier
                    .frozen(b)
                    .expect("frozen block")
                    .encoded()
                    .for_each_active(bw, |r, v| {
                        key_buf.push(v);
                        row_buf.push(block_base + r);
                    });
                for (i, &col) in distinct.iter().enumerate() {
                    bufs[i].clear();
                    let tier = table.col_tier(col);
                    tier.note_block_access(b);
                    tier.frozen(b)
                        .expect("columns freeze in lockstep")
                        .encoded()
                        .for_each_active(bw, |_, v| bufs[i].push(v));
                }
                for (i, &key) in key_buf.iter().enumerate() {
                    let slot = groups.slot_at(key, row_buf[i]);
                    for (a, src) in srcs.iter().enumerate() {
                        match src {
                            Src::Key => groups.state_mut(slot, a).push(key),
                            Src::Buf(j) => {
                                let v = bufs[*j][i];
                                groups.state_mut(slot, a).push(v)
                            }
                            Src::Count => bump(groups.state_mut(slot, a)),
                        }
                    }
                }
            }
        }
        crate::morsel::Span::Rows { lo, hi } => {
            // Hot rows: the raw key/aggregate slices, offset by where the
            // hot tier starts (zero for a fully hot table).
            let (keys, start) = if table.has_frozen() {
                let tier = table.col_tier(key_col);
                (tier.hot_values(), tier.hot_start())
            } else {
                (table.col_values(key_col), 0)
            };
            let cols: Vec<Option<&[Value]>> = aggs
                .iter()
                .map(|a| {
                    a.map(|c| {
                        if table.has_frozen() {
                            table.col_tier(c).hot_values()
                        } else {
                            table.col_values(c)
                        }
                    })
                })
                .collect();
            for wi in lo / WORD_BITS..hi.div_ceil(WORD_BITS) {
                let base = wi * WORD_BITS;
                let mut w = crate::batch::tail_word(sel, wi, (hi - base).min(WORD_BITS));
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let row = base + bit;
                    let slot = groups.slot_at(keys[row - start], row);
                    for (a, col) in cols.iter().enumerate() {
                        match col {
                            Some(values) => groups.state_mut(slot, a).push(values[row - start]),
                            None => bump(groups.state_mut(slot, a)),
                        }
                    }
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::selection_scan;
    use crate::physical::ColPred;
    use amnesia_columnar::{RowId, Schema};
    use amnesia_workload::query::AggKind;

    /// Two-column table: key = i % 3, value = i; forgets sprinkled in.
    fn sample(n: i64, freeze: Option<usize>) -> Table {
        let mut t = Table::new(Schema::new(vec!["k", "v"]));
        for i in 0..n {
            t.insert(&[i % 3, i], 0).unwrap();
        }
        for r in (0..n as u64).step_by(5) {
            t.forget(RowId(r), 1).unwrap();
        }
        if let Some(row) = freeze {
            t.freeze_upto(row);
        }
        t
    }

    #[test]
    fn grouped_fold_matches_row_at_a_time() {
        for freeze in [None, Some(2_048), Some(4_096)] {
            let t = sample(4_096, freeze);
            let (sel, _) = selection_scan(&t, &[ColPred::range(1, 100, 3_000)]);
            let groups = grouped_fold(&t, &sel, 0, &[None, Some(1)]);
            // Reference: row-at-a-time over the same predicate.
            let mut want: Vec<(Value, u64, i128)> = Vec::new();
            for r in t.iter_active() {
                let v = t.value(1, r);
                if !(100..=3_000).contains(&v) {
                    continue;
                }
                let k = t.value(0, r);
                match want.iter_mut().find(|(key, ..)| *key == k) {
                    Some((_, n, s)) => {
                        *n += 1;
                        *s += v as i128;
                    }
                    None => want.push((k, 1, v as i128)),
                }
            }
            assert_eq!(groups.len(), want.len(), "freeze={freeze:?}");
            for (g, (k, n, s)) in want.iter().enumerate() {
                assert_eq!(groups.keys()[g], *k, "first-seen order");
                let states = groups.group_states(g);
                assert_eq!(states[0].count(), *n);
                assert_eq!(states[1].sum(), *s);
                assert_eq!(states[1].count(), *n);
            }
        }
    }

    #[test]
    fn count_star_bump_leaves_min_max_neutral() {
        let mut s = AggState::new();
        bump(&mut s);
        bump(&mut s);
        assert_eq!(s.count(), 2);
        assert_eq!(s.finalize(AggKind::Count), Some(2.0));
        assert_eq!(s.min_value(), Some(Value::MAX), "neutral, never surfaced");
    }

    #[test]
    fn aggregate_over_group_key_aliases_key_stream() {
        let t = sample(2_048, Some(2_048));
        let (sel, _) = selection_scan(&t, &[]);
        let groups = grouped_fold(&t, &sel, 0, &[Some(0), Some(1)]);
        for g in 0..groups.len() {
            let k = groups.keys()[g];
            let states = groups.group_states(g);
            assert_eq!(states[0].min_value(), Some(k));
            assert_eq!(states[0].max_value(), Some(k));
        }
    }
}
