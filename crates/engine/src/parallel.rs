//! Parallel scan and aggregate kernels.
//!
//! The paper motivates amnesia partly by the cost of "Cloud-based
//! parallel processing" (§6); a credible host engine therefore needs
//! intra-query parallelism. These kernels split the physical row space
//! into contiguous chunks aligned to 64-row activity words, run the
//! [`crate::batch`] kernels on each chunk on a scoped thread (via the `amnesia-sync` shim), and
//! stitch results back in row order — so they return *exactly* what their
//! serial counterparts in [`kernels`](crate::kernels) return.
//!
//! Chunking policy: no chunk smaller than [`MIN_CHUNK_ROWS`] rows, so tiny
//! tables never pay thread-spawn overhead just because the caller asked
//! for many threads, and every chunk boundary is a multiple of
//! [`WORD_BITS`] so no activity word is shared between threads.

use amnesia_columnar::{RowId, SegmentedColumn, Table};
use amnesia_sync::thread;
use amnesia_util::WORD_BITS;
use amnesia_workload::query::{AggKind, RangePredicate};

use crate::batch;
use crate::join::{self, JoinResult, JoinStats};
use crate::kernels::AggState;
use crate::mode::ForgetVisibility;

/// Smallest amount of work worth a thread: below this, spawn/join
/// overhead dominates the scan itself.
pub const MIN_CHUNK_ROWS: usize = 4096;

/// Word-aligned chunk bounds for `rows` split across at most `threads`
/// chunks, each at least [`MIN_CHUNK_ROWS`] rows (except the last
/// remainder chunk). Returns an empty vector for an empty table.
fn chunk_bounds(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    // Floor division: a remainder below MIN_CHUNK_ROWS folds into the
    // other chunks instead of earning its own thread.
    let max_chunks = (rows / MIN_CHUNK_ROWS).max(1);
    let chunks = threads.max(1).min(max_chunks);
    // Round the chunk size up to a whole number of activity words so no
    // word straddles two threads.
    let chunk_rows = rows.div_ceil(chunks).div_ceil(WORD_BITS) * WORD_BITS;
    let mut bounds = Vec::with_capacity(chunks);
    let mut lo = 0usize;
    while lo < rows {
        let hi = (lo + chunk_rows).min(rows);
        bounds.push((lo, hi));
        lo = hi;
    }
    // Word rounding can leave a short remainder chunk; fold it into its
    // neighbor so the MIN_CHUNK_ROWS floor is a hard guarantee.
    if bounds.len() > 1 {
        let &(last_lo, last_hi) = bounds.last().expect("non-empty bounds");
        if last_hi - last_lo < MIN_CHUNK_ROWS {
            bounds.pop();
            bounds.last_mut().expect("previous chunk").1 = last_hi;
        }
    }
    bounds
}

/// Parallel version of [`kernels::range_scan_active`]: matching active
/// rows in insertion order.
///
/// [`kernels::range_scan_active`]: crate::kernels::range_scan_active
pub fn par_range_scan_active(
    table: &Table,
    col: usize,
    pred: RangePredicate,
    threads: usize,
) -> Vec<RowId> {
    let n = table.num_rows();
    if n == 0 || pred.is_empty() {
        return Vec::new();
    }
    if table.has_frozen() {
        return par_range_scan_tiered(table, col, pred, threads);
    }
    let bounds = chunk_bounds(n, threads);
    if bounds.len() == 1 {
        return crate::kernels::range_scan_active(table, col, pred);
    }
    let values = table.col_values(col);
    let words = table.activity_words();

    let mut partials: Vec<Vec<RowId>> = Vec::with_capacity(bounds.len());
    thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    batch::scan_active_into(values, words, lo, hi, pred, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("scan worker"));
        }
    });

    // Chunks are contiguous and ordered: concatenation preserves
    // insertion order.
    let total = partials.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in partials {
        out.extend(p);
    }
    out
}

/// Parallel version of [`kernels::aggregate_active`]: aggregate `col`
/// over active rows matching the optional predicate. Returns the value
/// and the number of rows scanned.
///
/// [`kernels::aggregate_active`]: crate::kernels::aggregate_active
pub fn par_aggregate_active(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
    kind: AggKind,
    threads: usize,
) -> (Option<f64>, usize) {
    let n = table.num_rows();
    if n == 0 {
        return (AggState::new().finalize(kind), 0);
    }
    if table.has_frozen() {
        return par_aggregate_tiered(table, col, pred, kind, threads);
    }
    let bounds = chunk_bounds(n, threads);
    if bounds.len() == 1 {
        return crate::kernels::aggregate_active(table, col, pred, kind);
    }
    let values = table.col_values(col);
    let words = table.activity_words();

    let mut state = AggState::new();
    let mut scanned = 0usize;
    thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| s.spawn(move || batch::aggregate_active(values, words, lo, hi, pred)))
            .collect();
        for h in handles {
            let (part, part_scanned) = h.join().expect("agg worker");
            state.merge(&part);
            scanned += part_scanned;
        }
    });
    (state.finalize(kind), scanned)
}

/// Parallel version of [`kernels::range_scan_compressed`]: contiguous
/// runs of frozen blocks per thread. Compressed block boundaries are a
/// whole number of activity words by construction, so chunking at block
/// granularity preserves the no-shared-word invariant; the uncompressed
/// tail (at most one block) is scanned serially after the joins.
///
/// [`kernels::range_scan_compressed`]: crate::kernels::range_scan_compressed
pub fn par_range_scan_compressed(
    table: &Table,
    col: &SegmentedColumn,
    pred: RangePredicate,
    threads: usize,
) -> Vec<RowId> {
    if col.is_empty() || pred.is_empty() {
        return Vec::new();
    }
    let words = table.activity_words();
    let nf = col.frozen_segments();
    // A chunk below MIN_CHUNK_ROWS isn't worth a thread; blocks are the
    // chunking unit here.
    let min_blocks = MIN_CHUNK_ROWS.div_ceil(col.block_rows()).max(1);
    let chunks = threads.max(1).min((nf / min_blocks).max(1));
    if chunks <= 1 {
        return crate::kernels::range_scan_compressed(table, col, pred);
    }
    let per = nf.div_ceil(chunks);
    let mut partials: Vec<Vec<RowId>> = Vec::with_capacity(chunks);
    thread::scope(|s| {
        let handles: Vec<_> = (0..chunks)
            .map(|i| {
                let b0 = i * per;
                let b1 = ((i + 1) * per).min(nf);
                s.spawn(move || {
                    let mut out = Vec::new();
                    batch::scan_compressed_blocks_into(col, words, b0, b1, pred, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("compressed scan worker"));
        }
    });
    // Frozen chunks are contiguous and ordered; the tail holds the
    // highest row ids, so appending it last keeps insertion order.
    let total = partials.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in partials {
        out.extend(p);
    }
    batch::scan_compressed_tail_into(col, words, pred, &mut out);
    out
}

/// Word-aligned frozen-block chunk bounds: at most `threads` contiguous
/// runs of tier blocks, none below the [`MIN_CHUNK_ROWS`] floor.
fn tier_block_chunks(
    frozen_blocks: usize,
    block_rows: usize,
    threads: usize,
) -> Vec<(usize, usize)> {
    // Delegates to the morsel scheduler's block chunking so both paths
    // size chunks from *rows* — a table of many tiny blocks gets the
    // same bounded chunk count as one with few large blocks.
    crate::morsel::block_chunks(frozen_blocks, block_rows, threads, MIN_CHUNK_ROWS)
}

/// Parallel tier-aware scan: chunks at *tier boundaries* — contiguous
/// runs of frozen blocks per thread (each meta-pruned, then fused
/// decode+filter), the hot tail scanned serially after the joins. Tier
/// blocks are a whole number of activity words, so no word is ever
/// shared between threads, and concatenating chunk outputs preserves
/// insertion order.
pub fn par_range_scan_tiered(
    table: &Table,
    col: usize,
    pred: RangePredicate,
    threads: usize,
) -> Vec<RowId> {
    let tier = table.col_tier(col);
    if tier.is_empty() || pred.is_empty() {
        return Vec::new();
    }
    let words = table.activity_words();
    let chunks = tier_block_chunks(tier.frozen_blocks(), tier.block_rows(), threads);
    if chunks.len() <= 1 {
        let mut out = Vec::new();
        batch::scan_tiered_active_into(tier, words, pred, &mut out);
        return out;
    }
    let mut partials: Vec<Vec<RowId>> = Vec::with_capacity(chunks.len());
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(b0, b1)| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    batch::scan_tiered_blocks_into(tier, words, b0, b1, pred, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("tiered scan worker"));
        }
    });
    let total = partials.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in partials {
        out.extend(p);
    }
    batch::scan_tiered_tail_into(tier, words, pred, &mut out);
    out
}

/// Parallel tier-aware aggregate: frozen-block chunks fold via the
/// codecs' fused masked aggregation on worker threads, the hot tail
/// folds serially, partial states merge.
pub fn par_aggregate_tiered(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
    kind: AggKind,
    threads: usize,
) -> (Option<f64>, usize) {
    let tier = table.col_tier(col);
    let words = table.activity_words();
    let chunks = tier_block_chunks(tier.frozen_blocks(), tier.block_rows(), threads);
    if chunks.len() <= 1 {
        let (state, stats) = batch::aggregate_tiered_active(tier, words, pred);
        return (state.finalize(kind), stats.rows_scanned);
    }
    if pred.is_some_and(|p| p.is_empty()) {
        let (state, stats) = batch::aggregate_tiered_active(tier, words, pred);
        return (state.finalize(kind), stats.rows_scanned);
    }
    let mut state = AggState::new();
    let mut scanned = 0usize;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(b0, b1)| {
                s.spawn(move || batch::agg_compressed_blocks(tier, words, b0, b1, pred))
            })
            .collect();
        for h in handles {
            let (part, stats) = h.join().expect("tiered agg worker");
            state.merge(&part);
            scanned += stats.rows_scanned;
        }
    });
    let (tail_state, tail_scanned) = batch::agg_tiered_tail(tier, words, pred);
    state.merge(&tail_state);
    scanned += tail_scanned;
    (state.finalize(kind), scanned)
}

/// Parallel hash join: the build side hashes serially (tier-aware,
/// streaming frozen blocks in compressed space — see [`crate::join`]),
/// then the *probe* side splits across threads at tier boundaries —
/// contiguous runs of frozen probe blocks per thread, each meta-pruned
/// against the build key range and probed in compressed space, with the
/// hot tail probed serially after the joins. A fully hot probe side
/// chunks the flat slice at word boundaries instead. Pairs concatenate in
/// chunk order, so the output is exactly [`join::hash_join`]'s.
///
/// The [`ForgetVisibility::ScanSeesForgotten`] ground truth delegates to
/// the serial dense join: it must read forgotten rows, which no tiered
/// chunking covers, and it runs outside the measured hot path.
pub fn par_hash_join(
    left: &Table,
    left_col: usize,
    right: &Table,
    right_col: usize,
    visibility: ForgetVisibility,
    threads: usize,
) -> JoinResult {
    if visibility == ForgetVisibility::ScanSeesForgotten {
        return join::hash_join(left, left_col, right, right_col, visibility);
    }
    let build_rows = left.active_rows();
    let probe_rows = right.active_rows();
    let (build, key_range) = join::build_for_probe(left, left_col);
    let build_distinct_keys = build.len();

    let tier = right.col_tier(right_col);
    let words = right.activity_words();
    let mut pairs: Vec<(RowId, RowId)> = Vec::new();
    let mut probe = batch::ProbeStats::default();
    if tier.frozen_blocks() > 0 {
        let chunks = tier_block_chunks(tier.frozen_blocks(), tier.block_rows(), threads);
        if chunks.len() <= 1 {
            probe = batch::probe_tiered(tier, words, &build, key_range, &mut pairs);
        } else {
            let mut partials: Vec<(Vec<(RowId, RowId)>, batch::ProbeStats)> =
                Vec::with_capacity(chunks.len());
            thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&(b0, b1)| {
                        let build = &build;
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let stats = batch::probe_tiered_blocks_with(
                                tier,
                                words,
                                b0,
                                b1,
                                build,
                                key_range,
                                |ls, row| out.extend(ls.iter().map(|&l| (l, RowId::from(row)))),
                            );
                            (out, stats)
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("join probe worker"));
                }
            });
            let total = partials.iter().map(|(p, _)| p.len()).sum();
            pairs.reserve(total);
            for (p, stats) in partials {
                pairs.extend(p);
                probe.merge(stats);
            }
            batch::probe_tiered_tail_with(tier, words, &build, |ls, row| {
                pairs.extend(ls.iter().map(|&l| (l, RowId::from(row))));
            });
        }
    } else {
        // Fully hot probe side: chunk the flat slice at word boundaries.
        let values = right.col_values(right_col);
        let bounds = chunk_bounds(values.len(), threads);
        if bounds.len() <= 1 {
            batch::probe_hot_with(values, words, 0, values.len(), &build, |ls, row| {
                pairs.extend(ls.iter().map(|&l| (l, RowId::from(row))));
            });
        } else {
            let mut partials: Vec<Vec<(RowId, RowId)>> = Vec::with_capacity(bounds.len());
            thread::scope(|s| {
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        let build = &build;
                        s.spawn(move || {
                            let mut out = Vec::new();
                            batch::probe_hot_with(values, words, lo, hi, build, |ls, row| {
                                out.extend(ls.iter().map(|&l| (l, RowId::from(row))));
                            });
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("join probe worker"));
                }
            });
            let total = partials.iter().map(Vec::len).sum();
            pairs.reserve(total);
            for p in partials {
                pairs.extend(p);
            }
        }
    }
    let output_pairs = pairs.len();
    JoinResult {
        pairs,
        stats: JoinStats {
            build_rows,
            build_distinct_keys,
            probe_rows,
            output_pairs,
            blocks_pruned: probe.blocks_pruned,
            probe_rows_skipped: probe.probe_rows_skipped,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;
    use amnesia_util::SimRng;

    fn table(n: usize) -> Table {
        let mut rng = SimRng::new(7);
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 10_000)).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        for _ in 0..n / 4 {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
        t
    }

    #[test]
    fn chunks_respect_floor_and_alignment() {
        // Tiny table: one chunk regardless of thread count.
        assert_eq!(chunk_bounds(100, 64).len(), 1);
        assert_eq!(chunk_bounds(MIN_CHUNK_ROWS, 8).len(), 1);
        // Just over the floor still folds the remainder in — no chunk
        // may fall below MIN_CHUNK_ROWS.
        assert_eq!(chunk_bounds(MIN_CHUNK_ROWS + 1, 8).len(), 1);
        for rows in [
            2 * MIN_CHUNK_ROWS + 1,
            5 * MIN_CHUNK_ROWS + 17,
            3 * MIN_CHUNK_ROWS - 1,
        ] {
            for threads in [2usize, 4, 8, 64] {
                for &(lo, hi) in &chunk_bounds(rows, threads) {
                    assert!(
                        hi - lo >= MIN_CHUNK_ROWS,
                        "rows={rows} threads={threads}: chunk [{lo},{hi}) under floor"
                    );
                }
            }
        }
        // Large table: as many chunks as requested, all word-aligned.
        let bounds = chunk_bounds(1_000_000, 8);
        assert_eq!(bounds.len(), 8);
        for &(lo, hi) in &bounds {
            assert_eq!(lo % WORD_BITS, 0, "chunk start {lo} word-aligned");
            assert!(hi == 1_000_000 || hi % WORD_BITS == 0);
        }
        // Chunks tile the row space exactly.
        let mut expect = 0;
        for &(lo, hi) in &bounds {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 1_000_000);
        // Mid-size table: chunk count limited by the floor.
        let bounds = chunk_bounds(3 * MIN_CHUNK_ROWS, 64);
        assert!(bounds.len() <= 3, "floor caps chunks, got {}", bounds.len());
        // Empty table.
        assert!(chunk_bounds(0, 8).is_empty());
    }

    #[test]
    fn parallel_scan_equals_serial_scan() {
        let t = table(100_000);
        let pred = RangePredicate::new(2_000, 7_000);
        let serial = crate::kernels::range_scan_active(&t, 0, pred);
        for threads in [1, 2, 3, 8, 64] {
            let par = par_range_scan_active(&t, 0, pred, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_aggregate_equals_serial_aggregate() {
        let t = table(100_000);
        let pred = Some(RangePredicate::new(1_000, 9_000));
        for kind in AggKind::ALL {
            let (serial, serial_scanned) = crate::kernels::aggregate_active(&t, 0, pred, kind);
            for threads in [1, 4, 16] {
                let (par, scanned) = par_aggregate_active(&t, 0, pred, kind, threads);
                match (serial, par) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{kind:?} threads={threads}")
                    }
                    (a, b) => assert_eq!(a, b, "{kind:?}"),
                }
                assert_eq!(scanned, serial_scanned, "{kind:?} scan count");
            }
        }
    }

    #[test]
    fn empty_and_tiny_tables() {
        let t = Table::new(Schema::single("a"));
        assert!(par_range_scan_active(&t, 0, RangePredicate::new(0, 10), 8).is_empty());
        let (v, scanned) = par_aggregate_active(&t, 0, None, AggKind::Count, 8);
        assert_eq!(v, Some(0.0));
        assert_eq!(scanned, 0);

        let mut tiny = Table::new(Schema::single("a"));
        tiny.insert_batch(&[5], 0).unwrap();
        let rows = par_range_scan_active(&tiny, 0, RangePredicate::new(0, 10), 16);
        assert_eq!(rows, vec![RowId(0)]);
    }

    #[test]
    fn parallel_compressed_scan_equals_serial() {
        let t = table(100_000);
        let seg = t.compress_column(0);
        assert!(seg.frozen_segments() > 8);
        let pred = RangePredicate::new(2_000, 7_000);
        let serial = crate::kernels::range_scan_active(&t, 0, pred);
        for threads in [1, 2, 3, 8, 64] {
            let par = par_range_scan_compressed(&t, &seg, pred, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiered_scan_and_aggregate_equal_serial() {
        let mut t = table(100_000);
        let pred = RangePredicate::new(2_000, 7_000);
        let serial_rows = crate::kernels::range_scan_active(&t, 0, pred);
        let mut serial_aggs = Vec::new();
        for kind in AggKind::ALL {
            serial_aggs.push(crate::kernels::aggregate_active(&t, 0, Some(pred), kind));
        }
        t.freeze_upto(90_000); // mixed: 87 frozen blocks + hot tail
        assert!(t.has_frozen());
        // Tiering never changes answers.
        assert_eq!(crate::kernels::range_scan_active(&t, 0, pred), serial_rows);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                par_range_scan_active(&t, 0, pred, threads),
                serial_rows,
                "threads={threads}"
            );
        }
        for (i, kind) in AggKind::ALL.into_iter().enumerate() {
            let (want, want_scanned) = serial_aggs[i];
            for threads in [1, 4, 16] {
                let (got, scanned) = par_aggregate_active(&t, 0, Some(pred), kind, threads);
                match (want, got) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{kind:?} threads={threads}")
                    }
                    (a, b) => assert_eq!(a, b, "{kind:?}"),
                }
                assert!(
                    scanned <= want_scanned,
                    "{kind:?}: block meta may only shrink scanned rows"
                );
            }
        }
    }

    #[test]
    fn parallel_join_equals_serial_join() {
        let mut rng = SimRng::new(31);
        let mut left = Table::new(Schema::single("k"));
        left.insert_batch(
            &(0..40_000)
                .map(|_| rng.range_i64(0, 2_000))
                .collect::<Vec<_>>(),
            0,
        )
        .unwrap();
        let mut right = Table::new(Schema::single("k"));
        right
            .insert_batch(
                &(0..60_000)
                    .map(|_| rng.range_i64(0, 2_000))
                    .collect::<Vec<_>>(),
                0,
            )
            .unwrap();
        for _ in 0..10_000 {
            if let Some(r) = left.random_active(&mut rng) {
                left.forget(r, 1).unwrap();
            }
            if let Some(r) = right.random_active(&mut rng) {
                right.forget(r, 1).unwrap();
            }
        }
        for vis in [
            ForgetVisibility::ActiveOnly,
            ForgetVisibility::ScanSeesForgotten,
        ] {
            let serial = join::hash_join(&left, 0, &right, 0, vis);
            for threads in [1, 2, 8, 64] {
                let par = par_hash_join(&left, 0, &right, 0, vis, threads);
                assert_eq!(par.pairs, serial.pairs, "{vis:?} threads={threads}");
                assert_eq!(par.stats.output_pairs, serial.stats.output_pairs);
            }
        }
        // Frozen probe side: chunks at tier boundaries, same pairs.
        let serial = join::hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        right.freeze_upto(50_000);
        assert!(right.has_frozen());
        left.freeze_upto(30_000);
        for threads in [1, 3, 8, 64] {
            let par = par_hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly, threads);
            assert_eq!(par.pairs, serial.pairs, "frozen threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let t = table(10);
        let pred = RangePredicate::new(0, 10_000);
        let par = par_range_scan_active(&t, 0, pred, 128);
        let serial = crate::kernels::range_scan_active(&t, 0, pred);
        assert_eq!(par, serial);
    }
}
