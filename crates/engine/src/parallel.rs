//! Parallel scan and aggregate kernels.
//!
//! The paper motivates amnesia partly by the cost of "Cloud-based
//! parallel processing" (§6); a credible host engine therefore needs
//! intra-query parallelism. These kernels split the physical row space
//! into contiguous chunks, scan each on a crossbeam-scoped thread, and
//! stitch results back in row order — so they return *exactly* what
//! their serial counterparts in [`kernels`](crate::kernels) return.

use amnesia_columnar::{RowId, Table};
use amnesia_workload::query::{AggKind, RangePredicate, Value};

use crate::kernels::AggState;

/// Pick a sane chunk count: enough to spread work, not so many that
/// stitching dominates.
fn chunks_for(rows: usize, threads: usize) -> usize {
    threads.clamp(1, rows.max(1))
}

/// Parallel version of [`kernels::range_scan_active`]: matching active
/// rows in insertion order.
///
/// [`kernels::range_scan_active`]: crate::kernels::range_scan_active
pub fn par_range_scan_active(
    table: &Table,
    col: usize,
    pred: RangePredicate,
    threads: usize,
) -> Vec<RowId> {
    let n = table.num_rows();
    if n == 0 || pred.is_empty() {
        return Vec::new();
    }
    let chunks = chunks_for(n, threads);
    if chunks == 1 {
        return crate::kernels::range_scan_active(table, col, pred);
    }
    let chunk_rows = n.div_ceil(chunks);
    let column = table.column(col);
    let activity = table.activity();

    let mut partials: Vec<Vec<RowId>> = Vec::with_capacity(chunks);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..chunks)
            .map(|c| {
                let lo = c * chunk_rows;
                let hi = ((c + 1) * chunk_rows).min(n);
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    for r in lo..hi {
                        let id = RowId::from(r);
                        if activity.is_active(id) && pred.matches(column.get(r)) {
                            out.push(id);
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("scan worker"));
        }
    })
    .expect("scan scope");

    // Chunks are contiguous and ordered: concatenation preserves
    // insertion order.
    let total = partials.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in partials {
        out.extend(p);
    }
    out
}

/// Parallel version of [`kernels::aggregate_active`]: aggregate `col`
/// over active rows matching the optional predicate. Returns the value
/// and the number of rows scanned.
///
/// [`kernels::aggregate_active`]: crate::kernels::aggregate_active
pub fn par_aggregate_active(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
    kind: AggKind,
    threads: usize,
) -> (Option<f64>, usize) {
    let n = table.num_rows();
    if n == 0 {
        return (AggState::new().finalize(kind), 0);
    }
    let chunks = chunks_for(n, threads);
    if chunks == 1 {
        return crate::kernels::aggregate_active(table, col, pred, kind);
    }
    let chunk_rows = n.div_ceil(chunks);
    let column = table.column(col);
    let activity = table.activity();

    let mut state = AggState::new();
    let mut scanned = 0usize;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..chunks)
            .map(|c| {
                let lo = c * chunk_rows;
                let hi = ((c + 1) * chunk_rows).min(n);
                s.spawn(move |_| {
                    let mut state = AggState::new();
                    let mut scanned = 0usize;
                    for r in lo..hi {
                        let id = RowId::from(r);
                        if !activity.is_active(id) {
                            continue;
                        }
                        scanned += 1;
                        let v: Value = column.get(r);
                        if pred.is_none_or(|p| p.matches(v)) {
                            state.push(v);
                        }
                    }
                    (state, scanned)
                })
            })
            .collect();
        for h in handles {
            let (part, part_scanned) = h.join().expect("agg worker");
            state.merge(&part);
            scanned += part_scanned;
        }
    })
    .expect("agg scope");
    (state.finalize(kind), scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;
    use amnesia_util::SimRng;

    fn table(n: usize) -> Table {
        let mut rng = SimRng::new(7);
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 10_000)).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        for _ in 0..n / 4 {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
        t
    }

    #[test]
    fn parallel_scan_equals_serial_scan() {
        let t = table(10_000);
        let pred = RangePredicate::new(2_000, 7_000);
        let serial = crate::kernels::range_scan_active(&t, 0, pred);
        for threads in [1, 2, 3, 8, 64] {
            let par = par_range_scan_active(&t, 0, pred, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_aggregate_equals_serial_aggregate() {
        let t = table(10_000);
        let pred = Some(RangePredicate::new(1_000, 9_000));
        for kind in AggKind::ALL {
            let (serial, serial_scanned) =
                crate::kernels::aggregate_active(&t, 0, pred, kind);
            for threads in [1, 4, 16] {
                let (par, scanned) = par_aggregate_active(&t, 0, pred, kind, threads);
                match (serial, par) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{kind:?} threads={threads}")
                    }
                    (a, b) => assert_eq!(a, b, "{kind:?}"),
                }
                assert_eq!(scanned, serial_scanned, "{kind:?} scan count");
            }
        }
    }

    #[test]
    fn empty_and_tiny_tables() {
        let t = Table::new(Schema::single("a"));
        assert!(par_range_scan_active(&t, 0, RangePredicate::new(0, 10), 8).is_empty());
        let (v, scanned) = par_aggregate_active(&t, 0, None, AggKind::Count, 8);
        assert_eq!(v, Some(0.0));
        assert_eq!(scanned, 0);

        let mut tiny = Table::new(Schema::single("a"));
        tiny.insert_batch(&[5], 0).unwrap();
        let rows = par_range_scan_active(&tiny, 0, RangePredicate::new(0, 10), 16);
        assert_eq!(rows, vec![RowId(0)]);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let t = table(10);
        let pred = RangePredicate::new(0, 10_000);
        let par = par_range_scan_active(&t, 0, pred, 128);
        let serial = crate::kernels::range_scan_active(&t, 0, pred);
        assert_eq!(par, serial);
    }
}
