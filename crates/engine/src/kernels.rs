//! Vectorized scan and aggregate kernels.
//!
//! These are the tight loops underneath every query: filter a column by a
//! range predicate intersected with the activity bitmap, or fold an
//! aggregate over the selection. Since the word-at-a-time rewrite they are
//! thin entry points over [`crate::batch`]: raw column slices, packed
//! activity words, branch-light selection masks, and whole-word skips for
//! all-forgotten regions. The row-at-a-time originals survive as
//! [`crate::batch::scalar`] for equivalence tests and benchmarks.

use amnesia_columnar::compress::BlockAgg;
use amnesia_columnar::{RowId, SegmentedColumn, Table, Value, WordZoneMap};
use amnesia_util::WORD_BITS;
use amnesia_workload::query::{AggKind, RangePredicate};

use crate::batch;
use crate::physical::ColPred;

pub use crate::batch::{AggState, TierStats, ZoneStats};

/// Collect active rows of `col` matching `pred` (insertion order).
/// Tier-aware: a column with frozen blocks takes the fused compressed
/// path per block; fully-hot columns take the flat slice kernel.
pub fn range_scan_active(table: &Table, col: usize, pred: RangePredicate) -> Vec<RowId> {
    if table.has_frozen() {
        return range_scan_tiered(table, col, pred).0;
    }
    let mut out = Vec::new();
    batch::scan_active_into(
        table.col_values(col),
        table.activity_words(),
        0,
        table.num_rows(),
        pred,
        &mut out,
    );
    out
}

/// Tier-aware scan with its pruning accounting: frozen blocks are
/// skipped by their cached meta before the payload is touched, and the
/// hot tail takes the raw-slice kernel. This is what the executor runs
/// (and reports `blocks_pruned` from) once a table has frozen blocks.
pub fn range_scan_tiered(
    table: &Table,
    col: usize,
    pred: RangePredicate,
) -> (Vec<RowId>, TierStats) {
    let mut out = Vec::new();
    let stats =
        batch::scan_tiered_active_into(table.col_tier(col), table.activity_words(), pred, &mut out);
    (out, stats)
}

/// Collect *all* physical rows matching `pred`, forgotten or not — the
/// "complete scan will fetch all data" path of paper §1.
pub fn range_scan_all(table: &Table, col: usize, pred: RangePredicate) -> Vec<RowId> {
    let mut out = Vec::new();
    if table.has_frozen() {
        batch::scan_tiered_all_into(table.col_tier(col), pred, &mut out);
    } else {
        batch::scan_all_into(table.col_values(col), 0, table.num_rows(), pred, &mut out);
    }
    out
}

/// Count active matches without materializing row ids.
pub fn count_active_matches(table: &Table, col: usize, pred: RangePredicate) -> usize {
    if table.has_frozen() {
        return batch::count_tiered_active(table.col_tier(col), table.activity_words(), pred).0;
    }
    batch::count_active(
        table.col_values(col),
        table.activity_words(),
        0,
        table.num_rows(),
        pred,
    )
}

/// Collect active matches restricted to the given physical blocks
/// (`block_rows` rows per block) — the zone-map pruned path. Each block is
/// scanned with the same word-masked batch kernel as full scans.
///
/// On a frozen table this delegates to the fused tiered scan (whose
/// built-in block meta prunes equivalently) and restricts the result to
/// the requested blocks — the external zone map's blocks need not align
/// with tier blocks, and per-row point access into compressed blocks
/// would be quadratic. The executor prefers the tiered scan outright
/// once anything is frozen.
pub fn range_scan_blocks(
    table: &Table,
    col: usize,
    pred: RangePredicate,
    blocks: &[usize],
    block_rows: usize,
) -> Vec<RowId> {
    let mut out = Vec::new();
    let n = table.num_rows();
    if table.has_frozen() {
        let mut wanted = blocks.to_vec();
        wanted.sort_unstable();
        let (rows, _) = range_scan_tiered(table, col, pred);
        return rows
            .into_iter()
            .filter(|r| wanted.binary_search(&(r.as_usize() / block_rows)).is_ok())
            .collect();
    }
    let values = table.col_values(col);
    let words = table.activity_words();
    for &b in blocks {
        let lo = b * block_rows;
        let hi = (lo + block_rows).min(n);
        batch::scan_active_into(values, words, lo, hi, pred, &mut out);
    }
    out
}

/// Zone-pruned [`range_scan_active`]: identical rows, but words (and so
/// whole blocks) whose min/max can't intersect `pred` are skipped before
/// their values are touched. Returns the rows plus the pruning
/// accounting.
pub fn range_scan_active_zoned(
    table: &Table,
    col: usize,
    zones: &WordZoneMap,
    pred: RangePredicate,
) -> (Vec<RowId>, ZoneStats) {
    debug_assert_eq!(zones.column(), col, "zone map covers a different column");
    if table.has_frozen() {
        // Frozen columns carry their own block meta; the word-zone slice
        // no longer maps onto a flat value slice, so the tiered kernel
        // (identical results, block-granular pruning) takes over.
        let (rows, ts) = range_scan_tiered(table, col, pred);
        return (
            rows,
            ZoneStats {
                words_pruned: 0,
                rows_scanned: ts.rows_scanned,
            },
        );
    }
    let mut out = Vec::new();
    let stats = batch::scan_active_zoned_into(
        table.col_values(col),
        table.activity_words(),
        zones.zones(),
        0,
        table.num_rows(),
        pred,
        &mut out,
    );
    (out, stats)
}

/// Zone-pruned [`count_active_matches`].
pub fn count_active_matches_zoned(
    table: &Table,
    col: usize,
    zones: &WordZoneMap,
    pred: RangePredicate,
) -> (usize, ZoneStats) {
    debug_assert_eq!(zones.column(), col, "zone map covers a different column");
    if table.has_frozen() {
        let (count, ts) =
            batch::count_tiered_active(table.col_tier(col), table.activity_words(), pred);
        return (
            count,
            ZoneStats {
                words_pruned: 0,
                rows_scanned: ts.rows_scanned,
            },
        );
    }
    batch::count_active_zoned(
        table.col_values(col),
        table.activity_words(),
        zones.zones(),
        0,
        table.num_rows(),
        pred,
    )
}

/// Zone-pruned fused filter+aggregate (see
/// [`batch::aggregate_active_zoned`]).
pub fn aggregate_state_active_zoned(
    table: &Table,
    col: usize,
    zones: &WordZoneMap,
    pred: Option<RangePredicate>,
) -> (AggState, ZoneStats) {
    debug_assert_eq!(zones.column(), col, "zone map covers a different column");
    if table.has_frozen() {
        let (state, ts) = aggregate_state_tiered(table, col, pred);
        return (
            state,
            ZoneStats {
                words_pruned: 0,
                rows_scanned: ts.rows_scanned,
            },
        );
    }
    batch::aggregate_active_zoned(
        table.col_values(col),
        table.activity_words(),
        zones.zones(),
        0,
        table.num_rows(),
        pred,
    )
}

/// Scan a compressed snapshot of a column (see
/// [`Table::compress_column`]) without decompressing it: each frozen
/// block's codec evaluates the predicate in its own domain and the
/// resulting selection masks AND with the table's activity words.
pub fn range_scan_compressed(
    table: &Table,
    col: &SegmentedColumn,
    pred: RangePredicate,
) -> Vec<RowId> {
    let mut out = Vec::new();
    batch::scan_compressed_active_into(col, table.activity_words(), pred, &mut out);
    out
}

/// Count active matches in a compressed column without decompressing.
pub fn count_compressed(table: &Table, col: &SegmentedColumn, pred: RangePredicate) -> usize {
    batch::count_compressed_active(col, table.activity_words(), pred)
}

/// Aggregate `col` over active rows matching the optional predicate.
pub fn aggregate_active(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
    kind: AggKind,
) -> (Option<f64>, usize) {
    let (state, scanned) = aggregate_state_active(table, col, pred);
    (state.finalize(kind), scanned)
}

/// Fused filter + aggregate returning the full [`AggState`], so callers
/// needing several aggregate kinds (COUNT and SUM and AVG…) pay for one
/// scan instead of one per kind. Tier-aware: frozen blocks fold in
/// code/offset/run space via the codecs' `fold_range_masked` — they are
/// never decoded.
pub fn aggregate_state_active(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
) -> (AggState, usize) {
    if table.has_frozen() {
        let (state, stats) = aggregate_state_tiered(table, col, pred);
        return (state, stats.rows_scanned);
    }
    batch::aggregate_active(
        table.col_values(col),
        table.activity_words(),
        0,
        table.num_rows(),
        pred,
    )
}

/// Tier-aware fused filter+aggregate with block-pruning accounting (the
/// executor's entry point once blocks are frozen).
pub fn aggregate_state_tiered(
    table: &Table,
    col: usize,
    pred: Option<RangePredicate>,
) -> (AggState, TierStats) {
    batch::aggregate_tiered_active(table.col_tier(col), table.activity_words(), pred)
}

/// Aggregate over an explicit row-id list.
pub fn aggregate_rows(table: &Table, col: usize, rows: &[RowId], kind: AggKind) -> Option<f64> {
    if table.has_frozen() {
        let tier = table.col_tier(col);
        let mut state = AggState::new();
        for &r in rows {
            state.push(tier.value_at(r.as_usize()));
        }
        return state.finalize(kind);
    }
    let values: &[Value] = table.col_values(col);
    let mut state = AggState::new();
    for &r in rows {
        state.push(values[r.as_usize()]);
    }
    state.finalize(kind)
}

// ---------------------------------------------------------------------
// Selection-vector operators: the physical plan's scan, gather and
// aggregate stages. A *selection* is one 64-bit word per activity word
// (`sel = activity & pred₀ & pred₁ & …`), the currency every operator
// below exchanges — produced once by `selection_scan`, consumed by the
// join build/probe, the projection gather, the fused aggregate and the
// grouped hash aggregation of [`crate::group`].
// ---------------------------------------------------------------------

/// Evaluate a conjunction of pushed-down predicates over `table` into a
/// selection-mask vector, tier-aware:
///
/// * hot words AND each predicate's [`batch`] mask into the activity
///   word (early exit once a word empties),
/// * frozen blocks are pruned when *any* predicate's cached
///   [`BlockMeta`](amnesia_columnar::BlockMeta) proves it cannot match,
///   survivors evaluate every predicate via the codecs' fused
///   `filter_range_masks` — the block is never decoded.
///
/// `rows_scanned` counts the active rows the selection examined (all of
/// them when `preds` is empty — the downstream operators will read every
/// survivor); meta-pruned blocks' rows are excluded, which is the work
/// the metadata saved.
pub fn selection_scan(table: &Table, preds: &[ColPred]) -> (Vec<u64>, TierStats) {
    let n = table.num_rows();
    let nwords = n.div_ceil(WORD_BITS);
    let words = table.activity_words();
    let mut sel = vec![0u64; nwords];
    let mut stats = TierStats::default();
    if preds.is_empty() {
        for (wi, s) in sel.iter_mut().enumerate() {
            *s = words.get(wi).copied().unwrap_or(0);
            stats.rows_scanned += s.count_ones() as usize;
        }
        return (sel, stats);
    }
    let imp = batch::mask_impl();
    if !table.has_frozen() {
        let cols: Vec<&[Value]> = preds.iter().map(|p| table.col_values(p.col)).collect();
        for (wi, out) in sel.iter_mut().enumerate() {
            let active = words.get(wi).copied().unwrap_or(0);
            if active == 0 {
                continue;
            }
            stats.rows_scanned += active.count_ones() as usize;
            let base = wi * WORD_BITS;
            let hi = (base + WORD_BITS).min(n);
            let mut s = active;
            for (p, col) in preds.iter().zip(&cols) {
                s = batch::conj_word(&col[base..hi], s, p, imp);
                if s == 0 {
                    break;
                }
            }
            *out = s;
        }
        return (sel, stats);
    }

    // Frozen prefix: per block, meta-prune across every predicate column,
    // then AND the codec-fused masks of the survivors.
    let br = table.block_rows();
    let nb = table.frozen_blocks();
    let block_nwords = br / WORD_BITS;
    let mut mask_buf = Vec::new();
    'blocks: for b in 0..nb {
        let active_in_block = table.col_tier(0).meta(b).active;
        if active_in_block == 0 {
            stats.blocks_pruned += 1;
            continue;
        }
        for p in preds {
            if !p.block_may_match(table.col_tier(p.col).meta(b)) {
                stats.blocks_pruned += 1;
                continue 'blocks;
            }
        }
        stats.rows_scanned += active_in_block;
        let first_word = b * br / WORD_BITS;
        for k in 0..block_nwords {
            sel[first_word + k] = words.get(first_word + k).copied().unwrap_or(0);
        }
        for p in preds {
            let tier = table.col_tier(p.col);
            tier.note_block_access(b);
            let f = tier.frozen(b).expect("frozen block");
            batch::conj_block_masks(f.encoded(), p, &mut mask_buf);
            for k in 0..block_nwords {
                sel[first_word + k] &= mask_buf.get(k).copied().unwrap_or(0);
            }
        }
    }
    // Hot tail: the flat word loop over each predicate column's tail.
    let tail_start = table.col_tier(0).hot_start();
    let tails: Vec<&[Value]> = preds
        .iter()
        .map(|p| table.col_tier(p.col).hot_values())
        .collect();
    let tail_len = tails.first().map_or(0, |t| t.len());
    for j in 0..tail_len.div_ceil(WORD_BITS) {
        let wi = tail_start / WORD_BITS + j;
        let base = j * WORD_BITS;
        let chunk_len = (tail_len - base).min(WORD_BITS);
        let active = batch::tail_word(words, wi, chunk_len);
        if active == 0 {
            continue;
        }
        stats.rows_scanned += active.count_ones() as usize;
        let mut s = active;
        for (p, tail) in preds.iter().zip(&tails) {
            s = batch::conj_word(&tail[base..base + chunk_len], s, p, imp);
            if s == 0 {
                break;
            }
        }
        sel[wi] = s;
    }
    (sel, stats)
}

/// Per-predicate accounting of the cost-ordered selection scan: how the
/// work split across the conjunction. Indexed *syntactically* (parallel
/// to the plan's predicate list), whatever execution order the cost
/// model chose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredScanStats {
    /// Frozen blocks whose cached meta this predicate killed. Pruning is
    /// attributed to the *first* predicate (in execution order) whose
    /// meta check failed, so the sum across predicates equals the scan's
    /// total `blocks_pruned`.
    pub blocks_pruned: usize,
    /// Frozen blocks where this predicate ran as a *residual* — refining
    /// the survivors of earlier conjuncts via
    /// `batch::refine_block_masks` instead of filtering the whole
    /// block.
    pub blocks_refined: usize,
}

impl PredScanStats {
    /// Fold in another span's accounting (parallel partials).
    pub fn merge(&mut self, other: PredScanStats) {
        self.blocks_pruned += other.blocks_pruned;
        self.blocks_refined += other.blocks_refined;
    }
}

/// Cost-ordered [`selection_scan`]: evaluates the same conjunction in an
/// explicit execution `order` (indices into `preds`, as produced by
/// [`crate::stats::order_predicates`]), short-circuiting later
/// predicates to the surviving selection:
///
/// * frozen blocks meta-check every predicate in execution order (prune
///   attributed to the first failure), the first surviving predicate
///   filters densely, and each *residual* predicate refines only the
///   surviving selection words — sparse survivors test individual rows
///   in codec space (`batch::refine_block_masks`), and a block whose
///   selection empties skips its remaining predicates outright,
/// * hot words AND predicate masks in execution order with the same
///   early exit the syntactic kernel uses.
///
/// AND commutes, so the returned selection is byte-identical to
/// [`selection_scan`]'s for any `order`; only the work (and its
/// per-predicate attribution in `per_pred`) differs. `per_pred` must be
/// `preds.len()` long.
pub fn selection_scan_ordered(
    table: &Table,
    preds: &[ColPred],
    order: &[usize],
    per_pred: &mut [PredScanStats],
) -> (Vec<u64>, TierStats) {
    debug_assert_eq!(order.len(), preds.len());
    debug_assert_eq!(per_pred.len(), preds.len());
    let n = table.num_rows();
    let nwords = n.div_ceil(WORD_BITS);
    let words = table.activity_words();
    let mut sel = vec![0u64; nwords];
    let mut stats = TierStats::default();
    if preds.is_empty() {
        return selection_scan(table, preds);
    }
    let imp = batch::mask_impl();
    if !table.has_frozen() {
        let cols: Vec<&[Value]> = preds.iter().map(|p| table.col_values(p.col)).collect();
        for (wi, out) in sel.iter_mut().enumerate() {
            let active = words.get(wi).copied().unwrap_or(0);
            if active == 0 {
                continue;
            }
            stats.rows_scanned += active.count_ones() as usize;
            let base = wi * WORD_BITS;
            let hi = (base + WORD_BITS).min(n);
            let mut s = active;
            for &i in order {
                s = batch::conj_word(&cols[i][base..hi], s, &preds[i], imp);
                if s == 0 {
                    break;
                }
            }
            *out = s;
        }
        return (sel, stats);
    }

    let br = table.block_rows();
    let nb = table.frozen_blocks();
    let block_nwords = br / WORD_BITS;
    let mut mask_buf = Vec::new();
    'blocks: for b in 0..nb {
        let active_in_block = table.col_tier(0).meta(b).active;
        if active_in_block == 0 {
            stats.blocks_pruned += 1;
            continue;
        }
        for &i in order {
            if !preds[i].block_may_match(table.col_tier(preds[i].col).meta(b)) {
                stats.blocks_pruned += 1;
                per_pred[i].blocks_pruned += 1;
                continue 'blocks;
            }
        }
        stats.rows_scanned += active_in_block;
        let first_word = b * br / WORD_BITS;
        scan_block_ordered(
            table,
            preds,
            order,
            per_pred,
            b,
            &mut sel[first_word..first_word + block_nwords],
            &words[first_word..(first_word + block_nwords).min(words.len())],
            &mut mask_buf,
        );
    }
    // Hot tail: identical to the syntactic kernel, in execution order.
    let tail_start = table.col_tier(0).hot_start();
    let tails: Vec<&[Value]> = preds
        .iter()
        .map(|p| table.col_tier(p.col).hot_values())
        .collect();
    let tail_len = tails.first().map_or(0, |t| t.len());
    for j in 0..tail_len.div_ceil(WORD_BITS) {
        let wi = tail_start / WORD_BITS + j;
        let base = j * WORD_BITS;
        let chunk_len = (tail_len - base).min(WORD_BITS);
        let active = batch::tail_word(words, wi, chunk_len);
        if active == 0 {
            continue;
        }
        stats.rows_scanned += active.count_ones() as usize;
        let mut s = active;
        for &i in order {
            s = batch::conj_word(&tails[i][base..base + chunk_len], s, &preds[i], imp);
            if s == 0 {
                break;
            }
        }
        sel[wi] = s;
    }
    (sel, stats)
}

/// One surviving frozen block of the cost-ordered scan: seed the block's
/// selection words from activity, filter densely with the first
/// predicate in execution order, then refine residuals sparsely —
/// bailing out of the block as soon as the selection empties. `sel` and
/// `act` are the block's word slices.
// The arguments are the per-block slices of the caller's scan state;
// bundling them into a struct would rebuild it for every frozen block
// on the hot path without making any call site clearer.
#[allow(clippy::too_many_arguments)]
fn scan_block_ordered(
    table: &Table,
    preds: &[ColPred],
    order: &[usize],
    per_pred: &mut [PredScanStats],
    b: usize,
    sel: &mut [u64],
    act: &[u64],
    mask_buf: &mut Vec<u64>,
) {
    for (k, s) in sel.iter_mut().enumerate() {
        *s = act.get(k).copied().unwrap_or(0);
    }
    for (rank, &i) in order.iter().enumerate() {
        let p = &preds[i];
        let tier = table.col_tier(p.col);
        if sel.iter().all(|&w| w == 0) {
            return; // earlier conjuncts emptied the block
        }
        tier.note_block_access(b);
        let f = tier.frozen(b).expect("frozen block");
        if rank == 0 {
            batch::conj_block_masks(f.encoded(), p, mask_buf);
            for (k, s) in sel.iter_mut().enumerate() {
                *s &= mask_buf.get(k).copied().unwrap_or(0);
            }
        } else {
            per_pred[i].blocks_refined += 1;
            batch::refine_block_masks(f.encoded(), p, sel, mask_buf);
        }
    }
}

/// Materialize a selection as ascending [`RowId`]s.
pub fn selection_rows(sel: &[u64]) -> Vec<RowId> {
    let mut out = Vec::new();
    for (wi, &w) in sel.iter().enumerate() {
        batch::emit_selection(w, wi * WORD_BITS, &mut out);
    }
    out
}

/// Selected-row count: one popcount per word.
pub fn selection_count(sel: &[u64]) -> usize {
    sel.iter().map(|w| w.count_ones() as usize).sum()
}

/// Gather the values of `col` at the selected rows, in ascending row
/// order. Frozen blocks stream through the codecs'
/// `for_each_active` under the block's selection words — no decode, no
/// dense materialization; the hot tail reads the raw slice.
pub fn gather_column(table: &Table, sel: &[u64], col: usize, out: &mut Vec<Value>) {
    if !table.has_frozen() {
        let values = table.col_values(col);
        for (wi, &w) in sel.iter().enumerate() {
            let mut w = w;
            let base = wi * WORD_BITS;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                out.push(values[base + bit]);
            }
        }
        return;
    }
    let tier = table.col_tier(col);
    for b in 0..tier.frozen_blocks() {
        let bw = batch::block_words(tier, sel, b);
        if bw.iter().all(|&w| w == 0) {
            continue;
        }
        let f = tier.frozen(b).expect("frozen block");
        f.encoded().for_each_active(bw, |_, v| out.push(v));
    }
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let mut w = batch::tail_word(sel, wi, chunk.len());
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            out.push(chunk[bit]);
        }
    }
}

/// Fused aggregate of `col` over an externally-computed selection:
/// frozen blocks fold in run/code/offset space via the codecs'
/// `fold_range_masked` with the selection words standing in for the
/// activity words (no decode), the hot tail folds the raw slice.
pub fn aggregate_selection(table: &Table, sel: &[u64], col: usize) -> AggState {
    let mut state = AggState::new();
    if !table.has_frozen() {
        let values = table.col_values(col);
        for (wi, &w) in sel.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let base = wi * WORD_BITS;
            let chunk = &values[base..(base + WORD_BITS).min(values.len())];
            batch::fold_selection(&mut state, chunk, w);
        }
        return state;
    }
    let tier = table.col_tier(col);
    for b in 0..tier.frozen_blocks() {
        let bw = batch::block_words(tier, sel, b);
        if bw.iter().all(|&w| w == 0) {
            continue;
        }
        let f = tier.frozen(b).expect("frozen block");
        let mut agg = BlockAgg::new();
        f.encoded().fold_range_masked(None, bw, &mut agg);
        if agg.count > 0 {
            state.push_block(agg.count, agg.sum, agg.min, agg.max);
        }
    }
    let tail = tier.hot_values();
    let tail_start = tier.hot_start();
    for (j, chunk) in tail.chunks(WORD_BITS).enumerate() {
        let wi = tail_start / WORD_BITS + j;
        let w = batch::tail_word(sel, wi, chunk.len());
        if w != 0 {
            batch::fold_selection(&mut state, chunk, w);
        }
    }
    state
}

// ---------------------------------------------------------------------
// Span variants: the same fused kernels, restricted to one morsel of the
// table (a run of frozen blocks or a word-aligned hot row range). The
// morsel scheduler (`crate::morsel`) stitches their results back in span
// order, reproducing the full-table kernels bit for bit.
// ---------------------------------------------------------------------

/// Hot-side value slice and its first absolute row: the hot tail of a
/// frozen column, or the whole column of a fully hot table.
fn hot_slice(table: &Table, col: usize) -> (&[Value], usize) {
    if table.has_frozen() {
        let tier = table.col_tier(col);
        (tier.hot_values(), tier.hot_start())
    } else {
        (table.col_values(col), 0)
    }
}

/// [`selection_scan`] restricted to `span`. Returns the span's selection
/// words (local, starting at the span's first word) and its share of the
/// tier accounting. Callers guarantee `preds` is non-empty — the empty
/// conjunction short-circuits to the serial kernel before spans exist.
pub(crate) fn selection_scan_span(
    table: &Table,
    preds: &[ColPred],
    span: &crate::morsel::Span,
) -> (Vec<u64>, TierStats) {
    debug_assert!(!preds.is_empty());
    let words = table.activity_words();
    let imp = batch::mask_impl();
    let mut stats = TierStats::default();
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            let br = table.block_rows();
            let block_nwords = br / WORD_BITS;
            let mut sel = vec![0u64; (last - first) * block_nwords];
            let mut mask_buf = Vec::new();
            'blocks: for b in first..last {
                let active_in_block = table.col_tier(0).meta(b).active;
                if active_in_block == 0 {
                    stats.blocks_pruned += 1;
                    continue;
                }
                for p in preds {
                    if !p.block_may_match(table.col_tier(p.col).meta(b)) {
                        stats.blocks_pruned += 1;
                        continue 'blocks;
                    }
                }
                stats.rows_scanned += active_in_block;
                let global_word = b * br / WORD_BITS;
                let local_word = (b - first) * block_nwords;
                for k in 0..block_nwords {
                    sel[local_word + k] = words.get(global_word + k).copied().unwrap_or(0);
                }
                for p in preds {
                    let tier = table.col_tier(p.col);
                    tier.note_block_access(b);
                    let f = tier.frozen(b).expect("frozen block");
                    batch::conj_block_masks(f.encoded(), p, &mut mask_buf);
                    for k in 0..block_nwords {
                        sel[local_word + k] &= mask_buf.get(k).copied().unwrap_or(0);
                    }
                }
            }
            (sel, stats)
        }
        crate::morsel::Span::Rows { lo, hi } => {
            let slices: Vec<(&[Value], usize)> =
                preds.iter().map(|p| hot_slice(table, p.col)).collect();
            let first_word = lo / WORD_BITS;
            let mut sel = vec![0u64; hi.div_ceil(WORD_BITS) - first_word];
            for wi in first_word..hi.div_ceil(WORD_BITS) {
                let base = wi * WORD_BITS;
                let chunk_len = (hi - base).min(WORD_BITS);
                let active = batch::tail_word(words, wi, chunk_len);
                if active == 0 {
                    continue;
                }
                stats.rows_scanned += active.count_ones() as usize;
                let mut s = active;
                for (p, &(slice, start)) in preds.iter().zip(&slices) {
                    let off = base - start;
                    s = batch::conj_word(&slice[off..off + chunk_len], s, p, imp);
                    if s == 0 {
                        break;
                    }
                }
                sel[wi - first_word] = s;
            }
            (sel, stats)
        }
    }
}

/// [`selection_scan_ordered`] restricted to `span`: the morsel unit of
/// the cost-ordered scan. Returns the span's local selection words, its
/// tier accounting, and its per-predicate attribution (merged across
/// spans by the parallel wrapper). Callers guarantee `preds` is
/// non-empty.
pub(crate) fn selection_scan_ordered_span(
    table: &Table,
    preds: &[ColPred],
    order: &[usize],
    span: &crate::morsel::Span,
) -> (Vec<u64>, TierStats, Vec<PredScanStats>) {
    debug_assert!(!preds.is_empty());
    let words = table.activity_words();
    let imp = batch::mask_impl();
    let mut stats = TierStats::default();
    let mut per_pred = vec![PredScanStats::default(); preds.len()];
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            let br = table.block_rows();
            let block_nwords = br / WORD_BITS;
            let mut sel = vec![0u64; (last - first) * block_nwords];
            let mut mask_buf = Vec::new();
            'blocks: for b in first..last {
                let active_in_block = table.col_tier(0).meta(b).active;
                if active_in_block == 0 {
                    stats.blocks_pruned += 1;
                    continue;
                }
                for &i in order {
                    if !preds[i].block_may_match(table.col_tier(preds[i].col).meta(b)) {
                        stats.blocks_pruned += 1;
                        per_pred[i].blocks_pruned += 1;
                        continue 'blocks;
                    }
                }
                stats.rows_scanned += active_in_block;
                let global_word = b * br / WORD_BITS;
                let local_word = (b - first) * block_nwords;
                scan_block_ordered(
                    table,
                    preds,
                    order,
                    &mut per_pred,
                    b,
                    &mut sel[local_word..local_word + block_nwords],
                    words
                        .get(global_word..(global_word + block_nwords).min(words.len()))
                        .unwrap_or(&[]),
                    &mut mask_buf,
                );
            }
            (sel, stats, per_pred)
        }
        crate::morsel::Span::Rows { lo, hi } => {
            let slices: Vec<(&[Value], usize)> =
                preds.iter().map(|p| hot_slice(table, p.col)).collect();
            let first_word = lo / WORD_BITS;
            let mut sel = vec![0u64; hi.div_ceil(WORD_BITS) - first_word];
            for wi in first_word..hi.div_ceil(WORD_BITS) {
                let base = wi * WORD_BITS;
                let chunk_len = (hi - base).min(WORD_BITS);
                let active = batch::tail_word(words, wi, chunk_len);
                if active == 0 {
                    continue;
                }
                stats.rows_scanned += active.count_ones() as usize;
                let mut s = active;
                for &i in order {
                    let (slice, start) = slices[i];
                    let off = base - start;
                    s = batch::conj_word(&slice[off..off + chunk_len], s, &preds[i], imp);
                    if s == 0 {
                        break;
                    }
                }
                sel[wi - first_word] = s;
            }
            (sel, stats, per_pred)
        }
    }
}

/// [`gather_column`] restricted to `span`, appending to `out` in
/// ascending row order. `sel` is the full-table selection.
pub(crate) fn gather_column_span(
    table: &Table,
    sel: &[u64],
    col: usize,
    span: &crate::morsel::Span,
    out: &mut Vec<Value>,
) {
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            let tier = table.col_tier(col);
            for b in first..last {
                let bw = batch::block_words(tier, sel, b);
                if bw.iter().all(|&w| w == 0) {
                    continue;
                }
                let f = tier.frozen(b).expect("frozen block");
                f.encoded().for_each_active(bw, |_, v| out.push(v));
            }
        }
        crate::morsel::Span::Rows { lo, hi } => {
            let (slice, start) = hot_slice(table, col);
            for wi in lo / WORD_BITS..hi.div_ceil(WORD_BITS) {
                let base = wi * WORD_BITS;
                let mut w = batch::tail_word(sel, wi, (hi - base).min(WORD_BITS));
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    out.push(slice[base - start + bit]);
                }
            }
        }
    }
}

/// [`aggregate_selection`] restricted to `span`. The returned partial
/// states merge exactly (integer count/sum, min/max), so folding the
/// spans' results in any order reproduces the full-table fold.
pub(crate) fn aggregate_selection_span(
    table: &Table,
    sel: &[u64],
    col: usize,
    span: &crate::morsel::Span,
) -> AggState {
    let mut state = AggState::new();
    match *span {
        crate::morsel::Span::Blocks { first, last } => {
            let tier = table.col_tier(col);
            for b in first..last {
                let bw = batch::block_words(tier, sel, b);
                if bw.iter().all(|&w| w == 0) {
                    continue;
                }
                let f = tier.frozen(b).expect("frozen block");
                let mut agg = BlockAgg::new();
                f.encoded().fold_range_masked(None, bw, &mut agg);
                if agg.count > 0 {
                    state.push_block(agg.count, agg.sum, agg.min, agg.max);
                }
            }
        }
        crate::morsel::Span::Rows { lo, hi } => {
            let (slice, start) = hot_slice(table, col);
            for wi in lo / WORD_BITS..hi.div_ceil(WORD_BITS) {
                let base = wi * WORD_BITS;
                let chunk_len = (hi - base).min(WORD_BITS);
                let w = batch::tail_word(sel, wi, chunk_len);
                if w != 0 {
                    let off = base - start;
                    batch::fold_selection(&mut state, &slice[off..off + chunk_len], w);
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;
    use amnesia_workload::query::RangePredicate as P;

    fn table() -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[5, 15, 25, 35, 45, 55], 0).unwrap();
        t.forget(RowId(2), 1).unwrap(); // 25 forgotten
        t
    }

    #[test]
    fn active_scan_skips_forgotten() {
        let t = table();
        let rows = range_scan_active(&t, 0, P::new(10, 40));
        assert_eq!(rows, vec![RowId(1), RowId(3)]); // 15, 35
        assert_eq!(count_active_matches(&t, 0, P::new(10, 40)), 2);
    }

    #[test]
    fn full_scan_sees_forgotten() {
        let t = table();
        let rows = range_scan_all(&t, 0, P::new(10, 40));
        assert_eq!(rows, vec![RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn block_scan_matches_full_active_scan() {
        let t = table();
        let pred = P::new(0, 100);
        let via_blocks = range_scan_blocks(&t, 0, pred, &[0, 1, 2], 2);
        let direct = range_scan_active(&t, 0, pred);
        assert_eq!(via_blocks, direct);
        // Restricting blocks restricts results.
        let partial = range_scan_blocks(&t, 0, pred, &[0], 2);
        assert_eq!(partial, vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn aggregates_respect_activity() {
        let t = table();
        // Active values: 5, 15, 35, 45, 55 — sum 155, avg 31.
        let (avg, scanned) = aggregate_active(&t, 0, None, AggKind::Avg);
        assert_eq!(avg, Some(31.0));
        assert_eq!(scanned, 5);
        let (sum, _) = aggregate_active(&t, 0, None, AggKind::Sum);
        assert_eq!(sum, Some(155.0));
        let (min, _) = aggregate_active(&t, 0, None, AggKind::Min);
        assert_eq!(min, Some(5.0));
        let (max, _) = aggregate_active(&t, 0, None, AggKind::Max);
        assert_eq!(max, Some(55.0));
        let (count, _) = aggregate_active(&t, 0, None, AggKind::Count);
        assert_eq!(count, Some(5.0));
    }

    #[test]
    fn aggregate_with_predicate() {
        let t = table();
        let (avg, _) = aggregate_active(&t, 0, Some(P::new(10, 50)), AggKind::Avg);
        // matching active values: 15, 35, 45 → avg 31.666…
        assert!((avg.unwrap() - 95.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_semantics() {
        let t = table();
        let (avg, _) = aggregate_active(&t, 0, Some(P::new(1000, 2000)), AggKind::Avg);
        assert_eq!(avg, None, "AVG of empty is NULL");
        let (count, _) = aggregate_active(&t, 0, Some(P::new(1000, 2000)), AggKind::Count);
        assert_eq!(count, Some(0.0), "COUNT of empty is 0");
    }

    #[test]
    fn aggregate_rows_over_explicit_ids() {
        let t = table();
        let v = aggregate_rows(&t, 0, &[RowId(0), RowId(5)], AggKind::Sum);
        assert_eq!(v, Some(60.0));
        assert_eq!(aggregate_rows(&t, 0, &[], AggKind::Sum), None);
    }

    #[test]
    fn zoned_and_compressed_wrappers_agree() {
        let t = table();
        let pred = P::new(10, 50);
        let want = range_scan_active(&t, 0, pred);

        let wz = WordZoneMap::build(&t, 0);
        let (rows, _) = range_scan_active_zoned(&t, 0, &wz, pred);
        assert_eq!(rows, want);
        let (count, _) = count_active_matches_zoned(&t, 0, &wz, pred);
        assert_eq!(count, want.len());
        let (state, _) = aggregate_state_active_zoned(&t, 0, &wz, Some(pred));
        assert_eq!(state.count() as usize, want.len());

        let seg = t.compress_column(0);
        assert_eq!(range_scan_compressed(&t, &seg, pred), want);
        assert_eq!(count_compressed(&t, &seg, pred), want.len());
    }

    #[test]
    fn one_pass_state_serves_every_kind() {
        let t = table();
        let (state, scanned) = aggregate_state_active(&t, 0, None);
        assert_eq!(scanned, 5);
        assert_eq!(state.count(), 5);
        assert_eq!(state.finalize(AggKind::Sum), Some(155.0));
        assert_eq!(state.finalize(AggKind::Avg), Some(31.0));
        assert_eq!(state.finalize(AggKind::Min), Some(5.0));
        assert_eq!(state.finalize(AggKind::Max), Some(55.0));
    }

    #[test]
    fn agg_state_extremes() {
        let mut s = AggState::new();
        s.push(i64::MAX);
        s.push(i64::MAX);
        // i128 accumulator: no overflow.
        assert_eq!(s.finalize(AggKind::Sum), Some(2.0 * i64::MAX as f64));
        assert_eq!(s.finalize(AggKind::Avg), Some(i64::MAX as f64));
    }
}
