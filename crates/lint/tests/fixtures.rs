//! Fixture-based self-tests: every rule in passing and failing form,
//! the waiver syntax, and ratchet behavior.
//!
//! Fixture snippets live under `tests/fixtures/` (a directory the
//! checker itself skips — see `Config::skip`) and are fed through
//! [`amnesia_lint::check_source`] under pretend workspace paths, so each
//! rule is exercised with exactly the scoping it has in production.

use amnesia_lint::{check_source, ratchet, Config, Violation};

/// Check `src` as if it lived at `path` in the workspace.
fn check_at(path: &str, src: &str) -> Vec<Violation> {
    check_source(path, src, &Config::default())
}

/// Path where the `dense` rule applies (engine code, off-whitelist).
const ENGINE: &str = "crates/engine/src/fixture.rs";
/// Path where the `panic` rule applies (recovery-critical module).
const RECOVERY: &str = "crates/columnar/src/persist/fixture.rs";

#[test]
fn dense_fail_and_pass() {
    let v = check_at(ENGINE, include_str!("fixtures/dense_fail.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "dense");
    assert_eq!(v[0].line, 4);
    assert!(check_at(ENGINE, include_str!("fixtures/dense_pass.rs")).is_empty());
}

#[test]
fn dense_whitelist_and_tests_are_exempt() {
    let src = include_str!("fixtures/dense_fail.rs");
    // Codec internals are a whitelisted seam…
    assert!(check_at("crates/columnar/src/compress/rle.rs", src).is_empty());
    // …and so are integration tests and benches (oracles, baselines).
    assert!(check_at("crates/engine/tests/oracle.rs", src).is_empty());
    assert!(check_at("crates/bench/benches/join_bench.rs", src).is_empty());
}

#[test]
fn panic_fail_and_pass() {
    let v = check_at(RECOVERY, include_str!("fixtures/panic_fail.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "panic");
    assert!(v[0].message.contains("`Err`"));
    assert!(check_at(RECOVERY, include_str!("fixtures/panic_pass.rs")).is_empty());
}

#[test]
fn panic_rule_only_guards_recovery_paths() {
    // The same snippet is legal outside the durability/recovery modules.
    let src = include_str!("fixtures/panic_fail.rs");
    assert!(check_at(ENGINE, src).is_empty());
    // …and inside the fault-injection harness exemption.
    assert!(check_at("crates/columnar/src/persist/fault.rs", src).is_empty());
}

#[test]
fn unsafe_fail_and_pass() {
    let v = check_at(ENGINE, include_str!("fixtures/unsafe_fail.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "unsafe");
    assert!(check_at(ENGINE, include_str!("fixtures/unsafe_pass.rs")).is_empty());
}

#[test]
fn unsafe_rule_applies_even_in_tests() {
    // Hygiene rules have no test exemption: unsafe in a test still
    // needs its invariant written down.
    let v = check_at(
        "crates/engine/tests/simd.rs",
        include_str!("fixtures/unsafe_fail.rs"),
    );
    assert_eq!(v.len(), 1);
}

#[test]
fn atomics_fail_and_pass() {
    let v = check_at(ENGINE, include_str!("fixtures/atomics_fail.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "atomics");
    assert!(v[0].message.contains("Relaxed"));
    assert!(check_at(ENGINE, include_str!("fixtures/atomics_pass.rs")).is_empty());
}

#[test]
fn allow_fail_and_pass() {
    let v = check_at(ENGINE, include_str!("fixtures/allow_fail.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "allow");
    assert!(check_at(ENGINE, include_str!("fixtures/allow_pass.rs")).is_empty());
}

#[test]
fn sync_fail_and_pass() {
    let v = check_at(ENGINE, include_str!("fixtures/sync_fail.rs"));
    // Both the atomic import and the raw scope call fire.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "sync"));
    assert!(v[0].message.contains("amnesia-sync"));
    assert!(check_at(ENGINE, include_str!("fixtures/sync_pass.rs")).is_empty());
}

#[test]
fn sync_rule_exempts_shim_and_tests() {
    let src = include_str!("fixtures/sync_fail.rs");
    // The shim crate and the vendored stubs are the legal seams…
    assert!(check_at("crates/sync/src/thread.rs", src).is_empty());
    assert!(check_at("crates/shims/proptest/src/lib.rs", src).is_empty());
    // …and test/bench targets stay free to probe std directly.
    assert!(check_at("crates/bench/benches/sql_bench.rs", src).is_empty());
}

#[test]
fn waiver_suppresses_a_real_violation() {
    assert!(check_at(RECOVERY, include_str!("fixtures/waiver_ok.rs")).is_empty());
}

#[test]
fn unused_waiver_is_a_violation() {
    let v = check_at(RECOVERY, include_str!("fixtures/waiver_unused.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "waiver");
    assert!(v[0].message.contains("unused"));
}

#[test]
fn waiver_without_reason_rejected_and_violation_kept() {
    let v = check_at(RECOVERY, include_str!("fixtures/waiver_noreason.rs"));
    let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"waiver"), "{v:?}");
    assert!(rules.contains(&"panic"), "{v:?}");
}

#[test]
fn ratchet_tolerates_baselined_debt_and_flags_growth() {
    // Two panic violations in one file…
    let two = "fn a(x: Option<u8>) { x.unwrap(); }\nfn b(x: Option<u8>) { x.unwrap(); }\n";
    let violations = check_at(RECOVERY, two);
    assert_eq!(violations.len(), 2);

    // …a baseline tolerating two: clean.
    let baseline = ratchet::parse(&format!("panic {RECOVERY} 2\n")).unwrap();
    let cmp = ratchet::compare(&violations, &baseline);
    assert!(cmp.over.is_empty());
    assert!(cmp.slack.is_empty());

    // A baseline tolerating one: exactly the second (line-ordered)
    // violation spills over.
    let baseline = ratchet::parse(&format!("panic {RECOVERY} 1\n")).unwrap();
    let cmp = ratchet::compare(&violations, &baseline);
    assert_eq!(cmp.over.len(), 1);
    assert_eq!(cmp.over[0].line, 2);
}

#[test]
fn ratchet_reports_slack_when_debt_shrinks() {
    // Debt paid down below the baseline must surface as tighten-able
    // slack, the one-way ratchet's signal to shrink the file.
    let one = "fn a(x: Option<u8>) { x.unwrap(); }\n";
    let violations = check_at(RECOVERY, one);
    let baseline = ratchet::parse(&format!("panic {RECOVERY} 3\n")).unwrap();
    let cmp = ratchet::compare(&violations, &baseline);
    assert!(cmp.over.is_empty());
    assert_eq!(cmp.slack.len(), 1);
    let (rule, file, tolerated, actual) = &cmp.slack[0];
    assert_eq!((rule.as_str(), file.as_str()), ("panic", RECOVERY));
    assert_eq!((*tolerated, *actual), (3, 1));
}

#[test]
fn ratchet_roundtrips_through_render() {
    let violations = check_at(RECOVERY, "fn a(x: Option<u8>) { x.unwrap(); }\n");
    let baseline = ratchet::from_violations(&violations);
    let reparsed = ratchet::parse(&ratchet::render(&baseline)).unwrap();
    assert_eq!(reparsed, baseline);
    assert!(ratchet::compare(&violations, &reparsed).over.is_empty());
}
