// Passing snippet for rule `allow`.

// Only referenced when building against real serde, not the shim.
#[allow(dead_code)]
fn helper() {}
