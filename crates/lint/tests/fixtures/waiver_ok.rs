// A well-formed waiver suppresses the violation on the next line.
fn parse(bytes: &[u8]) -> u32 {
    // lint: allow(panic) length validated by the caller's CRC framing
    u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
}
