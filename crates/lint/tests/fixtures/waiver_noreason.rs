// A waiver without a reason is rejected and suppresses nothing.
fn parse(bytes: &[u8]) -> u32 {
    // lint: allow(panic)
    u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
}
