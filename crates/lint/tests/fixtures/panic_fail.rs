// Failing snippet for rule `panic`: corrupt on-disk bytes would crash
// recovery instead of surfacing as `Err`.
fn parse_record(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
}
