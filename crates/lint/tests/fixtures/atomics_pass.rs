// Passing snippet for rule `atomics`.
fn bump(counter: &AtomicU64) {
    // Relaxed: advisory statistic, nothing is ordered against it.
    counter.fetch_add(1, Ordering::Relaxed);
}
