// Failing snippet for rule `unsafe`: the block below carries no
// adjacent safety comment stating the upheld invariant.

fn align_check(values: &[i64]) -> bool {
    values.len() % 8 == 0
}

fn fast_sum(values: &[i64]) -> i64 {
    unsafe { simd_sum(values) }
}
