// Failing snippet for rule `sync`: raw std concurrency outside the
// shim — the model checker cannot see these ops.

use std::sync::atomic::{AtomicUsize, Ordering};

fn race(counter: &AtomicUsize) {
    std::thread::scope(|s| {
        s.spawn(|| {
            // Relaxed: advisory count (keeps rule `atomics` quiet so
            // this fixture isolates rule `sync`).
            counter.fetch_add(1, Ordering::Relaxed);
        });
    });
}
