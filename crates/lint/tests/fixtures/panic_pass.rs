// Passing snippet for rule `panic`: checked read, truncation becomes Err.
fn parse_record(bytes: &[u8]) -> Result<u32> {
    le_u32(bytes).ok_or_else(|| storage_err!("truncated record header"))
}
