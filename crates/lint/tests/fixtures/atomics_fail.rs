// Failing snippet for rule `atomics`: no rationale for the ordering.

fn other() {}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
