// Passing snippet for rule `unsafe`.
fn fast_sum(values: &[i64]) -> i64 {
    // SAFETY: simd_sum requires 64-byte alignment, guaranteed by the
    // block allocator for every frozen block buffer.
    unsafe { simd_sum(values) }
}
