// Failing snippet for rule `dense`: whole-column materialization on the
// query path, outside every whitelisted seam.
fn scan_sum(table: &Table) -> i64 {
    let vals = table.col_values_dense(0);
    vals.iter().sum()
}
