// Passing snippet for rule `sync`: the same code through the shim is
// model-checkable.

use amnesia_sync::atomic::{AtomicUsize, Ordering};
use amnesia_sync::thread;

fn counted(counter: &AtomicUsize) {
    thread::scope(|s| {
        s.spawn(|| {
            // Relaxed: reconciled after the scope join; the join edge
            // is the model-verified happens-before.
            counter.fetch_add(1, Ordering::Relaxed);
        });
    });
}
