// Passing snippet for rule `dense`: tier-aware streaming over the codec
// visitor; no dense materialization.
fn scan_sum(table: &Table) -> i64 {
    let mut sum = 0;
    table.col_tier(0).for_each_active(|v| sum += v);
    sum
}
