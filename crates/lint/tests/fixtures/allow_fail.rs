// Failing snippet for rule `allow`: suppression with no stated reason.

fn other() {}

fn unjustified() {}

#[allow(dead_code)]
fn helper() {}
