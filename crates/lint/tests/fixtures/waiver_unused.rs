// An unused waiver is itself a violation: it cannot rot in place.
fn parse() -> u32 {
    // lint: allow(panic) nothing on the next line actually panics
    0
}
