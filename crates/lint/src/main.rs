//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p amnesia-lint -- check [--root DIR] [--baseline FILE]
//!                                    [--json FILE] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (every finding waived or within the ratchet
//! baseline), 1 violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use amnesia_lint::{check_workspace, json_report, ratchet, Config};

const USAGE: &str = "\
amnesia-lint: repo-specific invariant checker (dense, panic, unsafe, atomics, allow)

USAGE:
    amnesia-lint check [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline]

OPTIONS:
    --root DIR           workspace root to scan (default: .)
    --baseline FILE      ratchet baseline (default: <root>/lint-baseline.txt)
    --json FILE          also write a machine-readable JSON report
    --update-baseline    rewrite the baseline from current findings and exit 0
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("amnesia-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        _ => {
            eprint!("{USAGE}");
            return Ok(ExitCode::from(2));
        }
    }
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = next_value(&mut it, "--root")?.into(),
            "--baseline" => baseline_path = Some(next_value(&mut it, "--baseline")?.into()),
            "--json" => json_path = Some(next_value(&mut it, "--json")?.into()),
            "--update-baseline" => update_baseline = true,
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let report = check_workspace(&root, &Config::default())
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if let Some(path) = &json_path {
        std::fs::write(path, json_report(&report))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    if update_baseline {
        let baseline = ratchet::from_violations(&report.violations);
        std::fs::write(&baseline_path, ratchet::render(&baseline))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "amnesia-lint: baseline rewritten with {} entr{} ({} violation{})",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            },
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = ratchet::load(&baseline_path)?;
    let cmp = ratchet::compare(&report.violations, &baseline);

    for v in &cmp.over {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    for (rule, file, tolerated, actual) in &cmp.slack {
        println!(
            "ratchet: {file} [{rule}] improved to {actual} (baseline tolerates \
             {tolerated}) — tighten with --update-baseline"
        );
    }
    let baselined = report.violations.len() - cmp.over.len();
    println!(
        "amnesia-lint: {} files, {} violation{} ({} within baseline)",
        report.files_checked,
        cmp.over.len(),
        if cmp.over.len() == 1 { "" } else { "s" },
        baselined,
    );
    Ok(if cmp.over.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}
