//! Ratchet baseline: burn existing debt down without blocking on it.
//!
//! The baseline file (`lint-baseline.txt` at the workspace root) lists
//! per-`(rule, file)` violation counts that are tolerated *for now*.
//! `check` fails when any count rises above its baseline entry (or a new
//! one appears), and reports when a count falls so the entry can be
//! tightened — the ratchet only ever turns one way. An empty or absent
//! baseline means zero tolerated violations, the steady state this repo
//! ships in.

use std::collections::BTreeMap;
use std::path::Path;

use crate::rules::Violation;

/// `(rule, file) -> tolerated count`, ordered for stable serialization.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse a baseline file. Blank lines and `#` comments are ignored;
/// entries are `<rule> <file> <count>` separated by whitespace.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(file), Some(count)) = (it.next(), it.next(), it.next()) else {
            return Err(format!(
                "baseline line {}: expected `<rule> <file> <count>`",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        out.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(out)
}

/// Load the baseline at `path`; a missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Serialize `baseline` in the format [`parse`] reads.
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# amnesia-lint ratchet baseline: tolerated `<rule> <file> <count>` entries.\n\
         # Counts may only shrink; `amnesia-lint check --update-baseline` rewrites\n\
         # this file from the current findings.\n",
    );
    for ((rule, file), count) in baseline {
        out.push_str(&format!("{rule} {file} {count}\n"));
    }
    out
}

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Violations beyond what the baseline tolerates (these fail the run).
    pub over: Vec<Violation>,
    /// `(rule, file, tolerated, actual)` entries where debt shrank or
    /// vanished: the baseline can be tightened.
    pub slack: Vec<(String, String, usize, usize)>,
}

/// Compare `violations` against `baseline`. Within one `(rule, file)`
/// group the first `tolerated` findings are absorbed (the group is
/// line-sorted, so absorption is deterministic) and the rest spill into
/// [`Comparison::over`].
pub fn compare(violations: &[Violation], baseline: &Baseline) -> Comparison {
    let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        groups
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }
    let mut cmp = Comparison::default();
    for (key, group) in &groups {
        let tolerated = baseline.get(key).copied().unwrap_or(0);
        if group.len() > tolerated {
            cmp.over
                .extend(group[tolerated..].iter().map(|v| (*v).clone()));
        } else if group.len() < tolerated {
            cmp.slack
                .push((key.0.clone(), key.1.clone(), tolerated, group.len()));
        }
    }
    for (key, &tolerated) in baseline {
        if !groups.contains_key(key) {
            cmp.slack.push((key.0.clone(), key.1.clone(), tolerated, 0));
        }
    }
    cmp
}

/// Build a fresh baseline that exactly covers `violations`.
pub fn from_violations(violations: &[Violation]) -> Baseline {
    let mut out = Baseline::new();
    for v in violations {
        *out.entry((v.rule.to_string(), v.file.clone())).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: usize) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let mut b = Baseline::new();
        b.insert(("panic".into(), "a/b.rs".into()), 3);
        let parsed = parse(&render(&b)).unwrap();
        assert_eq!(parsed, b);
        assert!(parse("# only comments\n\n").unwrap().is_empty());
        assert!(parse("panic a.rs notanumber").is_err());
    }

    #[test]
    fn over_and_slack() {
        let mut b = Baseline::new();
        b.insert(("panic".into(), "a.rs".into()), 1);
        b.insert(("dense".into(), "gone.rs".into()), 2);
        let vs = vec![
            v("panic", "a.rs", 1),
            v("panic", "a.rs", 9),
            v("allow", "c.rs", 2),
        ];
        let cmp = compare(&vs, &b);
        // One panic absorbed, one over; the new `allow` is over; the
        // fully-paid-down dense entry is slack.
        assert_eq!(cmp.over.len(), 2);
        assert!(cmp.over.iter().any(|x| x.rule == "panic" && x.line == 9));
        assert!(cmp.over.iter().any(|x| x.rule == "allow"));
        assert_eq!(cmp.slack.len(), 1);
        assert_eq!(cmp.slack[0].3, 0);
    }
}
