//! `amnesia-lint`: the workspace's repo-specific invariant checker.
//!
//! The amnesia engine's core guarantees are behavioural: frozen blocks
//! are never densely materialized on the query path (`block_decodes ==
//! 0` in tests and benches), recovery surfaces corrupt on-disk bytes as
//! `Err` instead of panicking (the `FaultVfs` crash matrix), forgetting
//! is physical. Those dynamic checks catch violations only on the paths
//! a test happens to execute; this crate makes the same rules *static
//! properties* of the source tree, enforced at CI time over every line.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p amnesia-lint -- check
//! ```
//!
//! See [`rules`] for the five rules, the inline waiver syntax, and
//! `CONTRIBUTING.md` for the policy around them; [`ratchet`] holds the
//! burn-down baseline machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod ratchet;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{check_source, Config, Violation};

/// Result of checking a whole workspace tree.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Every violation found, ordered by file then line.
    pub violations: Vec<Violation>,
}

/// Walk `root` (`crates/` and `src/` subtrees) and check every `.rs`
/// file against `cfg`. Paths in the returned violations are relative to
/// `root`, `/`-separated.
pub fn check_workspace(root: &Path, cfg: &Config) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path)?;
        violations.extend(rules::check_source(&rel, &src, cfg));
    }
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(WorkspaceReport {
        files_checked: files.len(),
        violations,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            // `target/` holds build products; dot-dirs are tooling state.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render `violations` as a machine-readable JSON report (an object with
/// `files_checked` and a `violations` array of `{rule, file, line,
/// message}` records).
pub fn json_report(report: &WorkspaceReport) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"files_checked\": {},\n  \"violations\": [",
        report.files_checked
    ));
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes() {
        let report = WorkspaceReport {
            files_checked: 1,
            violations: vec![Violation {
                rule: "panic",
                file: "a\"b.rs".into(),
                line: 3,
                message: "uses `x.unwrap()`\nbadly".into(),
            }],
        };
        let json = json_report(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"files_checked\": 1"));
    }
}
