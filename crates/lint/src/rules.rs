//! The six workspace invariants, as line-level checks.
//!
//! Each rule is the static twin of a dynamic enforcement mechanism that
//! already exists in the workspace (see `CONTRIBUTING.md`):
//!
//! | rule      | static property                         | dynamic twin                 |
//! |-----------|-----------------------------------------|------------------------------|
//! | `dense`   | no dense materialization off-whitelist  | `block_decodes` thread-local |
//! | `panic`   | recovery paths return `Err`, never panic| `FaultVfs` crash matrix      |
//! | `unsafe`  | every `unsafe` carries a `// SAFETY:`   | (review only)                |
//! | `atomics` | every `Ordering::…` carries a rationale | parallel==serial equivalence |
//! | `allow`   | every `#[allow]` carries a reason       | (review only)                |
//! | `sync`    | no raw `std` atomics/threads off-shim   | `amnesia-sync` model checker |
//!
//! Violations can be waived inline with
//! `// lint: allow(<rule>) <reason>` on the offending line or the line
//! directly above it; the reason is mandatory and unused waivers are
//! themselves violations, so waivers cannot go stale silently.

use crate::lexer::{self, SplitSource};

/// Names of all rules, in reporting order.
pub const RULE_NAMES: [&str; 6] = ["dense", "panic", "unsafe", "atomics", "allow", "sync"];

/// How many lines above an occurrence a `SAFETY:` / rationale /
/// justification comment may sit and still count as adjacent (attributes
/// like `#[target_feature]` and `#[inline]` commonly intervene).
const COMMENT_WINDOW: usize = 3;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`RULE_NAMES`], or `waiver` for waiver-syntax
    /// problems).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Which files each rule applies to. Paths are `/`-separated and
/// relative to the workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Module paths (prefix match) where dense materialization is legal:
    /// codec internals, tier transitions, recovery rebuild, Aux builders.
    pub dense_whitelist: Vec<String>,
    /// Module paths (prefix match) where panicking is banned: corrupt
    /// on-disk bytes must surface as `Err`.
    pub panic_paths: Vec<String>,
    /// Exceptions inside `panic_paths` (prefix match): test harnesses
    /// that live in `src/` for bench visibility.
    pub panic_exempt: Vec<String>,
    /// Paths (prefix match) allowed to touch `std::sync::atomic` /
    /// `std::thread` directly: the shim crate itself and the vendored
    /// dependency stubs. Everything else must go through `amnesia-sync`
    /// so the model checker sees every sync op.
    pub sync_whitelist: Vec<String>,
    /// Paths skipped entirely (prefix match): lint self-test fixtures.
    pub skip: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        fn v(items: &[&str]) -> Vec<String> {
            items.iter().map(|s| s.to_string()).collect()
        }
        Self {
            dense_whitelist: v(&[
                // Codec internals: decode is defined (and round-tripped) here.
                "crates/columnar/src/compress/",
                // Tier transitions (thaw/recompress/drop) are the one legal
                // seam where a frozen block becomes dense again.
                "crates/columnar/src/tier.rs",
                // Define the `col_values*`/`dense_values` accessors.
                "crates/columnar/src/table.rs",
                "crates/columnar/src/column.rs",
                // Legacy row-engine segment store: the pre-tiering oracle.
                "crates/columnar/src/segment.rs",
                // Recovery rebuilds the dense hot tail from WAL/snapshot
                // bytes; frozen blocks stay encoded.
                "crates/columnar/src/persist/",
                // Aux builders (zone maps, sorted index, vacuum rewrite)
                // materialize at freeze/vacuum time, off the query path.
                "crates/columnar/src/zonemap.rs",
                "crates/columnar/src/index.rs",
                "crates/columnar/src/vacuum.rs",
            ]),
            panic_paths: v(&[
                "crates/columnar/src/persist/",
                "crates/columnar/src/coldstore.rs",
            ]),
            // FaultVfs is the fault-injection *harness*, not a recovery
            // path; its mutex-poisoning expects are test-infrastructure.
            panic_exempt: v(&["crates/columnar/src/persist/fault.rs"]),
            sync_whitelist: v(&[
                // The shim itself: the one place raw std sync is legal,
                // because this is where it becomes model-checkable.
                "crates/sync/",
                // Vendored dependency stubs mirror external crates.
                "crates/shims/",
            ]),
            skip: v(&["crates/lint/tests/fixtures/"]),
        }
    }
}

fn has_prefix(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// True for whole files that are test/bench targets: integration tests
/// and benches are oracles and baselines, exempt from `dense`/`panic`.
fn is_test_file(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

/// Check one file's source text against every applicable rule.
pub fn check_source(path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    if has_prefix(path, &cfg.skip) {
        return Vec::new();
    }
    let split = lexer::split(src);
    let test_lines = cfg_test_lines(&split);
    let file_is_test = is_test_file(path);
    let mut waivers = collect_waivers(path, &split);
    let mut out = Vec::new();

    let dense_applies = !has_prefix(path, &cfg.dense_whitelist) && !file_is_test;
    let panic_applies =
        has_prefix(path, &cfg.panic_paths) && !has_prefix(path, &cfg.panic_exempt) && !file_is_test;
    let sync_applies = !has_prefix(path, &cfg.sync_whitelist) && !file_is_test;

    for (idx, code) in split.code.iter().enumerate() {
        let line = idx + 1;
        let in_test = test_lines[idx];

        if dense_applies && !in_test {
            if let Some(tok) = dense_token(code) {
                push_unless_waived(
                    &mut out,
                    &mut waivers,
                    Violation {
                        rule: "dense",
                        file: path.to_string(),
                        line,
                        message: format!(
                            "`{tok}` densely materializes a frozen block outside the \
                             whitelisted seams (static twin of `block_decodes == 0`)"
                        ),
                    },
                );
            }
        }
        if panic_applies && !in_test {
            if let Some(tok) = panic_token(code) {
                push_unless_waived(
                    &mut out,
                    &mut waivers,
                    Violation {
                        rule: "panic",
                        file: path.to_string(),
                        line,
                        message: format!(
                            "`{tok}` on a durability/recovery path: corrupt on-disk \
                             bytes must surface as `Err`, not a crash"
                        ),
                    },
                );
            }
        }
        if word_occurs(code, "unsafe") && !comment_window_contains(&split, idx, "SAFETY") {
            push_unless_waived(
                &mut out,
                &mut waivers,
                Violation {
                    rule: "unsafe",
                    file: path.to_string(),
                    line,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment \
                              stating the upheld invariant"
                        .to_string(),
                },
            );
        }
        if let Some(ord) = atomics_token(code) {
            if !comment_window_nonempty(&split, idx) {
                push_unless_waived(
                    &mut out,
                    &mut waivers,
                    Violation {
                        rule: "atomics",
                        file: path.to_string(),
                        line,
                        message: format!(
                            "`Ordering::{ord}` without an adjacent comment explaining \
                             why this ordering is sufficient"
                        ),
                    },
                );
            }
        }
        if sync_applies && !in_test {
            if let Some(tok) = sync_token(code) {
                push_unless_waived(
                    &mut out,
                    &mut waivers,
                    Violation {
                        rule: "sync",
                        file: path.to_string(),
                        line,
                        message: format!(
                            "`{tok}` bypasses the `amnesia-sync` shim: sync ops the \
                             model checker cannot see are unverifiable — use \
                             `amnesia_sync::atomic` / `amnesia_sync::thread`"
                        ),
                    },
                );
            }
        }
        if (code.contains("#[allow(") || code.contains("#![allow("))
            && !comment_window_nonempty(&split, idx)
        {
            push_unless_waived(
                &mut out,
                &mut waivers,
                Violation {
                    rule: "allow",
                    file: path.to_string(),
                    line,
                    message: "`#[allow(...)]` without an adjacent comment justifying \
                              the suppression"
                        .to_string(),
                },
            );
        }
    }

    // Waiver hygiene: malformed waivers and waivers that suppressed
    // nothing are violations themselves, so they cannot rot in place.
    for w in waivers {
        match w.problem {
            Some(msg) => out.push(Violation {
                rule: "waiver",
                file: path.to_string(),
                line: w.line,
                message: msg,
            }),
            None if !w.used => out.push(Violation {
                rule: "waiver",
                file: path.to_string(),
                line: w.line,
                message: format!(
                    "unused waiver for rule `{}`: nothing on this or the next \
                     line violates it — delete the waiver",
                    w.rule
                ),
            }),
            None => {}
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    out
}

// ---------------------------------------------------------------- tokens

/// Byte-index word-boundary test around `pos..pos+len`.
fn bounded(code: &str, pos: usize, len: usize) -> bool {
    let before = code[..pos].chars().next_back();
    let after = code[pos + len..].chars().next();
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    !before.is_some_and(ident) && !after.is_some_and(ident)
}

/// Find `needle` in `code` at an identifier boundary.
fn word_occurs(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let pos = from + rel;
        if bounded(code, pos, needle.len()) {
            return true;
        }
        from = pos + needle.len();
    }
    false
}

/// Dense-materialization tokens: `.decode()` plus the whole-column
/// materializers (call position only). `Table::col_values` is *not*
/// listed: it is the hot-only flat accessor and never decodes (it panics
/// on frozen columns — its own dynamic guard).
fn dense_token(code: &str) -> Option<&'static str> {
    if code.contains(".decode()") {
        return Some(".decode()");
    }
    for tok in ["col_values_dense", "dense_values"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(tok) {
            let pos = from + rel;
            if bounded(code, pos, tok.len()) && code[pos + tok.len()..].starts_with('(') {
                return Some(tok);
            }
            from = pos + tok.len();
        }
    }
    None
}

/// Panic-escape tokens banned on recovery paths. `.unwrap_or*` variants
/// do not match; `debug_assert!` is allowed (absent in release).
fn panic_token(code: &str) -> Option<&'static str> {
    if code.contains(".unwrap()") {
        return Some(".unwrap()");
    }
    if code.contains(".expect(") {
        return Some(".expect(");
    }
    for tok in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let bare = &tok[..tok.len() - 1];
        let mut from = 0;
        while let Some(rel) = code[from..].find(tok) {
            let pos = from + rel;
            if bounded(code, pos, bare.len()) {
                return Some(tok);
            }
            from = pos + tok.len();
        }
    }
    None
}

/// Atomic memory-ordering tokens (the `cmp::Ordering` variants never
/// match: `Less`/`Equal`/`Greater` are not in this list).
fn atomics_token(code: &str) -> Option<&'static str> {
    for ord in ["Relaxed", "SeqCst", "AcqRel", "Acquire", "Release"] {
        let needle = format!("Ordering::{ord}");
        if code.contains(&needle) {
            return Some(ord);
        }
    }
    None
}

/// Raw-`std` concurrency tokens banned outside the shim crates. Matching
/// the module path (not individual type names) keeps `Ordering`
/// re-exports and the shim's own wrappers legal while catching every
/// direct import or fully-qualified use.
fn sync_token(code: &str) -> Option<&'static str> {
    for tok in ["std::sync::atomic", "core::sync::atomic", "std::thread"] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(tok) {
            let pos = from + rel;
            if bounded(code, pos, tok.len()) {
                return Some(tok);
            }
            from = pos + tok.len();
        }
    }
    None
}

// --------------------------------------------------------------- waivers

struct Waiver {
    line: usize,
    rule: String,
    reason_ok: bool,
    used: bool,
    problem: Option<String>,
}

/// Parse `// lint: allow(<rule>) <reason>` waivers out of comment text.
fn collect_waivers(_path: &str, split: &SplitSource) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, comment) in split.comment.iter().enumerate() {
        // Anchored at the comment start so prose *describing* the syntax
        // (like this crate's docs) is not mistaken for a waiver.
        let trimmed = comment.trim_start();
        if !trimmed.starts_with("lint: allow(") {
            continue;
        }
        let rest = &trimmed["lint: allow(".len()..];
        let line = idx + 1;
        let Some(close) = rest.find(')') else {
            out.push(Waiver {
                line,
                rule: String::new(),
                reason_ok: false,
                used: false,
                problem: Some("malformed waiver: missing `)`".to_string()),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim();
        let known = RULE_NAMES.contains(&rule.as_str());
        let problem = if !known {
            Some(format!(
                "waiver names unknown rule `{rule}` (known: {})",
                RULE_NAMES.join(", ")
            ))
        } else if reason.len() < 10 {
            Some(format!(
                "waiver for `{rule}` needs a real reason (got {reason:?})"
            ))
        } else {
            None
        };
        out.push(Waiver {
            line,
            rule,
            reason_ok: reason.len() >= 10,
            used: false,
            problem,
        });
    }
    out
}

/// Record `v` unless a well-formed waiver on the same or previous line
/// covers it (marking that waiver used).
fn push_unless_waived(out: &mut Vec<Violation>, waivers: &mut [Waiver], v: Violation) {
    for w in waivers.iter_mut() {
        if w.problem.is_none()
            && w.reason_ok
            && w.rule == v.rule
            && (w.line == v.line || w.line + 1 == v.line)
        {
            w.used = true;
            return;
        }
    }
    out.push(v);
}

// ------------------------------------------------------- comment windows

/// True when the line itself or any of the `COMMENT_WINDOW` lines above
/// it carries a comment containing `needle`.
fn comment_window_contains(split: &SplitSource, idx: usize, needle: &str) -> bool {
    let lo = idx.saturating_sub(COMMENT_WINDOW);
    split.comment[lo..=idx].iter().any(|c| c.contains(needle))
}

/// True when the line itself or any of the `COMMENT_WINDOW` lines above
/// it carries any non-empty comment.
fn comment_window_nonempty(split: &SplitSource, idx: usize) -> bool {
    let lo = idx.saturating_sub(COMMENT_WINDOW);
    split.comment[lo..=idx].iter().any(|c| !c.trim().is_empty())
}

// ------------------------------------------------------ test-region map

/// Mark lines covered by `#[cfg(test)]` items (attribute through the
/// close of the item's brace block), tracked by brace depth over the
/// comment/string-blanked code text.
fn cfg_test_lines(split: &SplitSource) -> Vec<bool> {
    let mut marks = vec![false; split.code.len()];
    let mut depth: i64 = 0;
    // (depth the attribute was seen at) while waiting for the item body.
    let mut pending: Option<i64> = None;
    // Depth to return to before the marked region ends.
    let mut region_until: Option<i64> = None;

    for (idx, code) in split.code.iter().enumerate() {
        if code.contains("#[cfg(test)]") && region_until.is_none() {
            pending = Some(depth);
        }
        let mut line_marked = pending.is_some() || region_until.is_some();
        for ch in code.chars() {
            match ch {
                '{' => {
                    if let Some(d) = pending {
                        if depth == d {
                            region_until = Some(d);
                            pending = None;
                            line_marked = true;
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_until == Some(depth) {
                        region_until = None;
                        line_marked = true;
                    }
                }
                ';' => {
                    // Brace-less `#[cfg(test)]` item (use/static): ends here.
                    if let Some(d) = pending {
                        if depth == d {
                            pending = None;
                            line_marked = true;
                        }
                    }
                }
                _ => {}
            }
        }
        marks[idx] = line_marked || region_until.is_some() || pending.is_some();
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_source(path, src, &Config::default())
    }

    #[test]
    fn dense_flagged_outside_whitelist_only() {
        let src = "fn f(t: &Table) { let v = t.col_values_dense(0); }\n";
        assert_eq!(check("crates/engine/src/x.rs", src).len(), 1);
        assert!(check("crates/columnar/src/tier.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_scoped_to_recovery_paths() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(check("crates/columnar/src/coldstore.rs", src).len(), 1);
        assert!(check("crates/engine/src/x.rs", src).is_empty());
        assert!(check("crates/columnar/src/persist/fault.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(check("crates/columnar/src/coldstore.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(x: Option<u8>) { x.unwrap(); }
}
";
        assert!(check("crates/columnar/src/coldstore.rs", src).is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_ignored() {
        let src = "fn f() { g(\".unwrap()\"); } // .unwrap() is banned here\n";
        assert!(check("crates/columnar/src/coldstore.rs", src).is_empty());
    }

    #[test]
    fn waiver_suppresses_and_unused_waiver_fires() {
        let ok = "\
// lint: allow(panic) invariant: length checked two lines up
fn f(x: Option<u8>) { x.unwrap(); }
";
        assert!(check("crates/columnar/src/coldstore.rs", ok).is_empty());
        let unused = "// lint: allow(panic) nothing here actually panics\nfn f() {}\n";
        let v = check("crates/columnar/src/coldstore.rs", unused);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "waiver");
    }

    #[test]
    fn waiver_requires_reason() {
        let src = "// lint: allow(panic)\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let v = check("crates/columnar/src/coldstore.rs", src);
        // Both the bad waiver and the (unwaived) panic fire.
        assert!(v.iter().any(|v| v.rule == "waiver"));
        assert!(v.iter().any(|v| v.rule == "panic"));
    }

    #[test]
    fn atomics_and_unsafe_need_comments() {
        let bad = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        assert_eq!(check("crates/engine/src/x.rs", bad).len(), 1);
        let good = "fn f(c: &AtomicU64) {\n    // Relaxed: advisory counter, no ordering needed.\n    c.load(Ordering::Relaxed);\n}\n";
        assert!(check("crates/engine/src/x.rs", good).is_empty());
        let bad_unsafe = "fn f() { unsafe { core(); } }\n";
        assert_eq!(check("crates/engine/src/x.rs", bad_unsafe).len(), 1);
        let good_unsafe = "fn f() {\n    // SAFETY: core() has no preconditions on this path.\n    unsafe { core(); }\n}\n";
        assert!(check("crates/engine/src/x.rs", good_unsafe).is_empty());
    }

    #[test]
    fn cmp_ordering_never_matches() {
        let src = "fn f() { let _ = std::cmp::Ordering::Less; }\n";
        assert!(check("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn sync_flagged_outside_shim_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        let v = check("crates/engine/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync");
        assert!(check("crates/sync/src/atomic.rs", src).is_empty());
        assert!(check("crates/shims/serde/src/lib.rs", src).is_empty());
        assert!(check("crates/engine/tests/x.rs", src).is_empty());
    }

    #[test]
    fn sync_catches_thread_and_core_paths() {
        let v = check(
            "crates/engine/src/x.rs",
            "fn f() { std::thread::scope(|_| ()); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        let v = check(
            "crates/engine/src/x.rs",
            "use core::sync::atomic::AtomicBool;\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn sync_ignores_thread_local_and_shim_paths() {
        // `std::thread_local` shares the prefix at a non-boundary.
        let src = "std::thread_local! { static X: u8 = 0; }\n";
        assert!(check("crates/engine/src/x.rs", src).is_empty());
        let shim = "use amnesia_sync::atomic::{AtomicU64, Ordering};\n";
        assert!(check("crates/engine/src/x.rs", shim).is_empty());
    }

    #[test]
    fn allow_needs_justification() {
        let bad = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(check("crates/engine/src/x.rs", bad).len(), 1);
        let good =
            "// Only exercised when built against real serde.\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(check("crates/engine/src/x.rs", good).is_empty());
    }
}
