//! A small comment/string-aware line splitter for Rust sources.
//!
//! The checker does not need a parser: every rule keys off tokens that
//! are unambiguous at the lexical level (`.decode()`, `.unwrap()`,
//! `unsafe`, `Ordering::Relaxed`, `#[allow(...)]`) *provided* occurrences
//! inside string literals and comments are not mistaken for code. This
//! module splits each source line into its code text (string-literal
//! contents blanked out) and its comment text (everything inside `//`,
//! `///`, `/* .. */`, including nested block comments), which is all the
//! rules in [`crate::rules`] need.

/// Per-line code/comment split of one source file.
#[derive(Debug, Default)]
pub struct SplitSource {
    /// Code text per line; string-literal contents replaced by spaces,
    /// comments removed entirely.
    pub code: Vec<String>,
    /// Comment text per line (without the `//` / `/*` introducers'
    /// surrounding code), empty when the line holds no comment.
    pub comment: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */` (Rust block comments nest).
    BlockComment(u32),
    /// Ordinary `"…"` string (escapes honoured).
    Str,
    /// Raw string; payload is the number of `#`s in the delimiter.
    RawStr(u32),
}

/// True when `c` can continue an identifier (used to tell a raw-string
/// introducer `r"` from the tail of an identifier like `for"`).
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Split `src` into per-line code and comment text.
pub fn split(src: &str) -> SplitSource {
    let chars: Vec<char> = src.chars().collect();
    let mut out = SplitSource::default();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut prev_code_char = ' ';
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            out.code.push(std::mem::take(&mut code));
            out.comment.push(std::mem::take(&mut comment));
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) string introducers: r"…", r#"…"#, br##"…"##.
                if (c == 'r' || c == 'b') && !is_ident(prev_code_char) {
                    if let Some(skip) = raw_string_intro(&chars[i..]) {
                        let hashes = skip.1;
                        code.push_str(&"_".repeat(skip.0));
                        i += skip.0;
                        state = State::RawStr(hashes);
                        prev_code_char = '"';
                        continue;
                    }
                }
                if c == '"' {
                    code.push('"');
                    prev_code_char = '"';
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote after one (possibly escaped) character; a
                    // lifetime never does.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        code.push_str(&"_".repeat(j.saturating_sub(i) + 1));
                        i = (j + 1).min(chars.len());
                        prev_code_char = '\'';
                        continue;
                    }
                    if chars.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                        code.push_str("___");
                        i += 3;
                        prev_code_char = '\'';
                        continue;
                    }
                    // Lifetime (or stray quote): plain code.
                }
                code.push(c);
                prev_code_char = c;
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("__");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    prev_code_char = '"';
                    i += 1;
                } else {
                    code.push('_');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars[i..], hashes) {
                    code.push_str(&"_".repeat(hashes as usize + 1));
                    i += hashes as usize + 1;
                    state = State::Code;
                    prev_code_char = '"';
                } else {
                    code.push('_');
                    i += 1;
                }
            }
        }
    }
    // Final line of a file without a trailing newline.
    if !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }
    out
}

/// If `rest` starts a raw-string literal (`r`/`br` + `#`* + `"`), return
/// `(chars_to_consume_through_quote, n_hashes)`.
fn raw_string_intro(rest: &[char]) -> Option<(usize, u32)> {
    let mut j = 0usize;
    if rest.first() == Some(&'b') {
        j += 1;
    }
    if rest.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while rest.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&'"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// True when `rest` (starting at a `"`) closes a raw string with `hashes`
/// trailing `#`s.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_split_from_code() {
        let s = split("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert_eq!(s.code[0], "let x = 1; ");
        assert_eq!(s.comment[0], " trailing note");
        assert_eq!(s.code[1], "");
        assert_eq!(s.comment[1], " full line");
        assert_eq!(s.code[2], "let y = 2;");
    }

    #[test]
    fn strings_are_blanked() {
        let s = split("call(\".unwrap()\"); other();\n");
        assert!(!s.code[0].contains(".unwrap()"));
        assert!(s.code[0].contains("other();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = split("let p = r#\"panic!(\"x\")\"#; go();\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(s.code[0].contains("go();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = split("a(); /* outer /* inner */ still */ b();\n/* open\nunsafe { }\n*/ c();\n");
        assert!(s.code[0].contains("a();"));
        assert!(s.code[0].contains("b();"));
        assert!(s.comment[0].contains("outer"));
        assert!(!s.code[2].contains("unsafe"));
        assert!(s.comment[2].contains("unsafe"));
        assert!(s.code[3].contains("c();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = split("let q = '\"'; fn f<'a>(x: &'a str) {}\nlet e = '\\n';\n");
        // The quote char literal must not open a string state.
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(s.code[1].contains("let e"));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let s = split("let x = \"a\\\"b.unwrap()\"; tail();\n");
        assert!(!s.code[0].contains(".unwrap()"));
        assert!(s.code[0].contains("tail();"));
    }
}
