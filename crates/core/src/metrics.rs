//! Information-precision metrics (paper §2.3).
//!
//! After forgetting `F` tuples and inserting `F` new ones, each query `Q`
//! is scored against the ground truth (everything ever inserted — which
//! the mark-only table still physically holds):
//!
//! * `RF(Q)` — tuples actually returned (active matches),
//! * `MF(Q)` — tuples missed (matches that were forgotten),
//! * `PF(Q) = RF / (RF + MF)` — query precision,
//! * `E = avg(RF) / avg(RF + MF)` — the batch error margin.
//!
//! For aggregates, precision is the relative error of the approximate
//! (active-only) value against the exact value over all data seen so far.

use amnesia_util::ascii;
use amnesia_util::stats::relative_error;
use amnesia_util::RunningStats;
use serde::{Deserialize, Serialize};

use amnesia_columnar::{RowId, Table};

/// Outcome of one query: returned vs missed tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryPrecision {
    /// `RF(Q)`: tuples in the (amnesiac) result.
    pub returned: usize,
    /// `MF(Q)`: tuples the full history would additionally return.
    pub missed: usize,
}

impl QueryPrecision {
    /// `PF(Q) = RF / (RF + MF)`; defined as 1 when nothing matched at all
    /// (an empty answer to an empty question is perfectly precise).
    pub fn pf(&self) -> f64 {
        let total = self.returned + self.missed;
        if total == 0 {
            1.0
        } else {
            self.returned as f64 / total as f64
        }
    }
}

/// Accumulates precision over a batch of queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrecisionAccumulator {
    sum_rf: u64,
    sum_total: u64,
    pf_stats: RunningStats,
    agg_err: RunningStats,
}

impl PrecisionAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a row-returning query outcome.
    pub fn record(&mut self, p: QueryPrecision) {
        self.sum_rf += p.returned as u64;
        self.sum_total += (p.returned + p.missed) as u64;
        self.pf_stats.push(p.pf());
    }

    /// Record an aggregate outcome: approximate (active-only) vs exact
    /// value. `None` values (empty selections) count as error 0 when both
    /// are empty, 1 when only one side is.
    pub fn record_aggregate(&mut self, approx: Option<f64>, exact: Option<f64>) {
        let err = match (approx, exact) {
            (Some(a), Some(e)) => relative_error(a, e),
            (None, None) => 0.0,
            _ => 1.0,
        };
        self.agg_err.push(err);
    }

    /// Number of row queries recorded.
    pub fn queries(&self) -> u64 {
        self.pf_stats.count()
    }

    /// Mean `PF` over the batch.
    pub fn mean_pf(&self) -> f64 {
        if self.pf_stats.count() == 0 {
            1.0
        } else {
            self.pf_stats.mean()
        }
    }

    /// The paper's error margin `E = avg(RF) / avg(RF + MF)`.
    pub fn e_margin(&self) -> f64 {
        if self.sum_total == 0 {
            1.0
        } else {
            self.sum_rf as f64 / self.sum_total as f64
        }
    }

    /// Mean relative error of aggregates (`None` if no aggregates ran).
    pub fn mean_agg_error(&self) -> Option<f64> {
        (self.agg_err.count() > 0).then(|| self.agg_err.mean())
    }

    /// Mean `RF` per query.
    pub fn mean_rf(&self) -> f64 {
        if self.pf_stats.count() == 0 {
            0.0
        } else {
            self.sum_rf as f64 / self.pf_stats.count() as f64
        }
    }

    /// Mean `MF` per query.
    pub fn mean_mf(&self) -> f64 {
        if self.pf_stats.count() == 0 {
            0.0
        } else {
            (self.sum_total - self.sum_rf) as f64 / self.pf_stats.count() as f64
        }
    }

    /// Standard deviation of `PF` across the batch.
    pub fn pf_std_dev(&self) -> f64 {
        self.pf_stats.std_dev()
    }
}

/// Summary of one batch in a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Batch number (1-based; queries ran before this batch's inserts).
    pub batch: u64,
    /// Mean query precision `PF`.
    pub mean_pf: f64,
    /// Error margin `E`.
    pub e_margin: f64,
    /// Mean returned tuples per query.
    pub mean_rf: f64,
    /// Mean missed tuples per query.
    pub mean_mf: f64,
    /// Mean relative error of aggregate queries, if any ran.
    pub agg_error: Option<f64>,
    /// Active rows after this batch's amnesia.
    pub active_rows: usize,
    /// Physical rows (active + forgotten marks).
    pub total_rows: usize,
}

/// Final retention map: active fraction per insertion epoch — one row of
/// the paper's Figure 1/2 heatmaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmnesiaMap {
    /// `totals[e]` = tuples inserted at epoch `e`.
    pub totals: Vec<usize>,
    /// `active[e]` = of those, still active.
    pub active: Vec<usize>,
}

impl AmnesiaMap {
    /// Compute from a (mark-only) table, covering epochs `0..=max_epoch`.
    pub fn from_table(table: &Table, max_epoch: u64) -> Self {
        let n = max_epoch as usize + 1;
        let mut totals = vec![0usize; n];
        let mut active = vec![0usize; n];
        for r in 0..table.num_rows() {
            let id = RowId::from(r);
            let e = (table.insert_epoch(id) as usize).min(n - 1);
            totals[e] += 1;
            if table.activity().is_active(id) {
                active[e] += 1;
            }
        }
        Self { totals, active }
    }

    /// Active fraction per epoch (0 for epochs with no inserts).
    pub fn fractions(&self) -> Vec<f64> {
        self.totals
            .iter()
            .zip(&self.active)
            .map(|(&t, &a)| if t == 0 { 0.0 } else { a as f64 / t as f64 })
            .collect()
    }

    /// Active percentage per epoch (the paper's y-axis).
    pub fn percentages(&self) -> Vec<f64> {
        self.fractions().iter().map(|f| f * 100.0).collect()
    }
}

/// Point-in-time tier metrics of an
/// [`AmnesiacStore`](crate::store::AmnesiacStore): how much of the table
/// rests compressed, what the block-level amnesia transitions reclaimed,
/// and the overall compression ratio. Budget- and cost-based policies
/// read `resident_bytes`/`compression_ratio` so the savings from frozen
/// cold segments actually stretch the storage budget (paper §4.4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Physical rows (active + marked).
    pub total_rows: usize,
    /// Active rows.
    pub active_rows: usize,
    /// True resident bytes of the table (compressed frozen blocks + hot
    /// tail + metadata).
    pub resident_bytes: usize,
    /// Compressed bytes held by frozen blocks.
    pub bytes_frozen: usize,
    /// Frozen blocks currently resident.
    pub frozen_blocks: usize,
    /// Fully-forgotten blocks whose payloads were dropped (cumulative).
    pub blocks_dropped: u64,
    /// Heavily-forgotten blocks re-encoded smaller (cumulative).
    pub blocks_recompressed: u64,
    /// Rows currently living in dropped blocks: row ids that persist but
    /// whose values were surrendered. Reported separately so
    /// `compression_ratio` can stay an honest codec metric — these
    /// savings come from amnesia, not compression.
    pub dropped_rows: usize,
    /// Flat bytes of surviving rows / resident bytes (≥ 1 means tiering
    /// is saving memory). Rows in dropped blocks are excluded from the
    /// numerator, so the ratio stays meaningful even when
    /// `drop_forgotten_blocks` has surrendered most payloads.
    pub compression_ratio: f64,
    /// Cumulative frozen-block accesses across every column: scans and
    /// probes bump a block's counter each time it survives zone-map
    /// pruning and is actually touched. Hot traffic — a block that keeps
    /// getting read is a bad candidate for recompression or dropping.
    /// Excluded from `PartialEq`: a replayed table starts with fresh
    /// counters, and crash-recovery compares snapshots field for field.
    #[serde(default)]
    pub block_accesses: u64,
}

/// Equality ignores `block_accesses`: access counters are runtime
/// telemetry, not logical state, and must not fail crash-recovery
/// layout comparisons.
impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.total_rows == other.total_rows
            && self.active_rows == other.active_rows
            && self.resident_bytes == other.resident_bytes
            && self.bytes_frozen == other.bytes_frozen
            && self.frozen_blocks == other.frozen_blocks
            && self.blocks_dropped == other.blocks_dropped
            && self.blocks_recompressed == other.blocks_recompressed
            && self.dropped_rows == other.dropped_rows
            && self.compression_ratio == other.compression_ratio
    }
}

impl MetricsSnapshot {
    /// Snapshot a bare [`Table`] plus externally-tracked cumulative tier
    /// counters. This is how crash-recovery tests compare a replayed
    /// [`PersistentTable`](amnesia_columnar::PersistentTable) against the
    /// layout an [`AmnesiacStore`](crate::store::AmnesiacStore) reported
    /// before the crash: same struct, field for field.
    pub fn from_table(table: &Table, blocks_dropped: u64, blocks_recompressed: u64) -> Self {
        Self {
            total_rows: table.num_rows(),
            active_rows: table.active_rows(),
            resident_bytes: table.memory_bytes(),
            bytes_frozen: table.bytes_frozen(),
            frozen_blocks: table.frozen_blocks(),
            blocks_dropped,
            blocks_recompressed,
            dropped_rows: table.dropped_rows(),
            compression_ratio: table.compression_ratio(),
            block_accesses: table.block_accesses(),
        }
    }
}

/// Durability-side counters of a run: what the segmented WAL did while
/// the store was executing batches. A serializable mirror of
/// [`WalStats`](amnesia_columnar::WalStats) for reports and bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityCounters {
    /// WAL records appended.
    pub records_appended: u64,
    /// Framed bytes appended across all segments.
    pub bytes_appended: u64,
    /// Segment rotations (a new `wal-*.seg` was started).
    pub segments_rotated: u64,
    /// Segments physically shredded (zero-overwritten and unlinked).
    pub segments_shredded: u64,
    /// Bytes destroyed by shredding.
    pub bytes_shredded: u64,
    /// fsync calls issued by the log against segment data.
    pub fsyncs: u64,
    /// fsync calls issued against the log directory (entry durability
    /// after segment creates and prune/shred unlinks).
    #[serde(default)]
    pub dir_fsyncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

impl From<amnesia_columnar::WalStats> for DurabilityCounters {
    fn from(s: amnesia_columnar::WalStats) -> Self {
        Self {
            records_appended: s.records_appended,
            bytes_appended: s.bytes_appended,
            segments_rotated: s.segments_rotated,
            segments_shredded: s.segments_shredded,
            bytes_shredded: s.bytes_shredded,
            fsyncs: s.fsyncs,
            dir_fsyncs: s.dir_fsyncs,
            checkpoints: s.checkpoints,
        }
    }
}

/// Storage accounting at the end of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageReport {
    /// Active rows at the end (the held budget).
    pub final_active_rows: usize,
    /// Rows ever inserted.
    pub total_rows_inserted: usize,
    /// Rows forgotten over the run.
    pub rows_forgotten: usize,
    /// Approximate heap bytes of the table (columns + marks + stats).
    pub table_bytes: usize,
}

/// Complete report of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy name (figure legend key).
    pub policy: String,
    /// Distribution name.
    pub distribution: String,
    /// Per-batch precision summaries.
    pub batches: Vec<BatchSummary>,
    /// Final retention map.
    pub map: AmnesiaMap,
    /// Storage accounting.
    pub storage: StorageReport,
}

impl SimReport {
    /// Per-batch error margin `E` — the Figure 3 series.
    pub fn precision_series(&self) -> Vec<f64> {
        self.batches.iter().map(|b| b.e_margin).collect()
    }

    /// Per-batch mean `PF`.
    pub fn pf_series(&self) -> Vec<f64> {
        self.batches.iter().map(|b| b.mean_pf).collect()
    }

    /// Per-batch mean aggregate error (empty if no aggregates ran).
    pub fn agg_error_series(&self) -> Vec<f64> {
        self.batches.iter().filter_map(|b| b.agg_error).collect()
    }

    /// Render the retention map as an ASCII heatmap row.
    pub fn render_map(&self) -> String {
        ascii::heatmap(&[(self.policy.clone(), self.map.fractions())], None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::Schema;

    #[test]
    fn pf_definition() {
        assert_eq!(
            QueryPrecision {
                returned: 3,
                missed: 1
            }
            .pf(),
            0.75
        );
        assert_eq!(
            QueryPrecision {
                returned: 0,
                missed: 5
            }
            .pf(),
            0.0
        );
        assert_eq!(
            QueryPrecision {
                returned: 5,
                missed: 0
            }
            .pf(),
            1.0
        );
        assert_eq!(
            QueryPrecision {
                returned: 0,
                missed: 0
            }
            .pf(),
            1.0
        );
    }

    #[test]
    fn e_margin_is_ratio_of_averages_not_average_of_ratios() {
        let mut acc = PrecisionAccumulator::new();
        acc.record(QueryPrecision {
            returned: 9,
            missed: 1,
        }); // pf 0.9
        acc.record(QueryPrecision {
            returned: 0,
            missed: 10,
        }); // pf 0.0
            // mean PF = 0.45; E = 9/20 = 0.45 here they coincide…
        assert!((acc.mean_pf() - 0.45).abs() < 1e-12);
        assert!((acc.e_margin() - 0.45).abs() < 1e-12);
        // …but not in general:
        let mut acc2 = PrecisionAccumulator::new();
        acc2.record(QueryPrecision {
            returned: 1,
            missed: 0,
        }); // pf 1.0
        acc2.record(QueryPrecision {
            returned: 10,
            missed: 90,
        }); // pf 0.1
        assert!((acc2.mean_pf() - 0.55).abs() < 1e-12);
        assert!((acc2.e_margin() - 11.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_error_accounting() {
        let mut acc = PrecisionAccumulator::new();
        acc.record_aggregate(Some(11.0), Some(10.0));
        acc.record_aggregate(None, None);
        acc.record_aggregate(None, Some(5.0));
        let mean = acc.mean_agg_error().unwrap();
        assert!((mean - (0.1 + 0.0 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(PrecisionAccumulator::new().mean_agg_error(), None);
    }

    #[test]
    fn rf_mf_means() {
        let mut acc = PrecisionAccumulator::new();
        acc.record(QueryPrecision {
            returned: 4,
            missed: 2,
        });
        acc.record(QueryPrecision {
            returned: 6,
            missed: 0,
        });
        assert_eq!(acc.mean_rf(), 5.0);
        assert_eq!(acc.mean_mf(), 1.0);
        assert_eq!(acc.queries(), 2);
    }

    #[test]
    fn empty_accumulator_conventions() {
        let acc = PrecisionAccumulator::new();
        assert_eq!(acc.mean_pf(), 1.0);
        assert_eq!(acc.e_margin(), 1.0);
        assert_eq!(acc.mean_rf(), 0.0);
    }

    #[test]
    fn amnesia_map_from_table() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[1, 2, 3, 4], 0).unwrap();
        t.insert_batch(&[5, 6], 1).unwrap();
        t.forget(RowId(0), 1).unwrap();
        t.forget(RowId(4), 1).unwrap();
        let map = AmnesiaMap::from_table(&t, 1);
        assert_eq!(map.totals, vec![4, 2]);
        assert_eq!(map.active, vec![3, 1]);
        let f = map.fractions();
        assert!((f[0] - 0.75).abs() < 1e-12);
        assert!((f[1] - 0.5).abs() < 1e-12);
        assert_eq!(map.percentages()[1], 50.0);
    }
}
