//! Simulator configuration.

use amnesia_distrib::DistributionKind;
use amnesia_util::{config_err, Result};
use amnesia_workload::QueryGenKind;
use serde::{Deserialize, Serialize};

use crate::budget::BudgetMode;
use crate::policy::PolicyKind;

/// Full configuration of one simulation run.
///
/// Defaults follow the paper's experimental setup: `dbsize = 1000`,
/// 1000 queries per batch, fixed-size budget, the Figure-3 range
/// generator, 10 update batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Storage budget in tuples (`DBSIZE`, paper §2.1).
    pub dbsize: usize,
    /// Attribute domain: values live in `0..=domain`.
    pub domain: i64,
    /// Insert batch size as a fraction of `dbsize` (`upd-perc`).
    pub update_fraction: f64,
    /// Number of update batches to run.
    pub batches: u64,
    /// Queries fired before each update batch (the paper uses 1000).
    pub queries_per_batch: usize,
    /// Data distribution of inserted values.
    pub distribution: DistributionKind,
    /// Query generator.
    pub query_gen: QueryGenKind,
    /// Amnesia policy.
    pub policy: PolicyKind,
    /// Storage budget mode.
    pub budget: BudgetMode,
    /// Exponential decay applied to access frequencies after each batch
    /// (1.0 = no decay).
    pub access_decay: f64,
    /// Master RNG seed; identical seeds give identical reports.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dbsize: 1000,
            domain: 100_000,
            update_fraction: 0.20,
            batches: 10,
            queries_per_batch: 1000,
            distribution: DistributionKind::Uniform,
            query_gen: QueryGenKind::paper_range(),
            policy: PolicyKind::Uniform,
            budget: BudgetMode::FixedSize,
            access_decay: 1.0,
            seed: 0xC1D8_2017,
        }
    }
}

impl SimConfig {
    /// Start building a configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Insert batch size in tuples.
    pub fn batch_rows(&self) -> usize {
        amnesia_workload::update::batch_size(self.dbsize, self.update_fraction)
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<()> {
        if self.dbsize == 0 {
            return Err(config_err!("dbsize must be positive"));
        }
        if self.domain < 0 {
            return Err(config_err!("domain must be non-negative"));
        }
        if !(0.0..=100.0).contains(&self.update_fraction) {
            return Err(config_err!(
                "update fraction {} out of range",
                self.update_fraction
            ));
        }
        if !(self.access_decay > 0.0 && self.access_decay <= 1.0) {
            return Err(config_err!(
                "access decay {} must be in (0, 1]",
                self.access_decay
            ));
        }
        self.budget
            .validate()
            .map_err(amnesia_util::Error::InvalidConfig)?;
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Storage budget in tuples.
    pub fn dbsize(mut self, v: usize) -> Self {
        self.cfg.dbsize = v;
        self
    }

    /// Attribute domain upper bound.
    pub fn domain(mut self, v: i64) -> Self {
        self.cfg.domain = v;
        self
    }

    /// Insert batch size as a fraction of dbsize.
    pub fn update_fraction(mut self, v: f64) -> Self {
        self.cfg.update_fraction = v;
        self
    }

    /// Number of update batches.
    pub fn batches(mut self, v: u64) -> Self {
        self.cfg.batches = v;
        self
    }

    /// Queries per batch.
    pub fn queries_per_batch(mut self, v: usize) -> Self {
        self.cfg.queries_per_batch = v;
        self
    }

    /// Data distribution.
    pub fn distribution(mut self, v: DistributionKind) -> Self {
        self.cfg.distribution = v;
        self
    }

    /// Query generator.
    pub fn query_gen(mut self, v: QueryGenKind) -> Self {
        self.cfg.query_gen = v;
        self
    }

    /// Amnesia policy.
    pub fn policy(mut self, v: PolicyKind) -> Self {
        self.cfg.policy = v;
        self
    }

    /// Budget mode.
    pub fn budget(mut self, v: BudgetMode) -> Self {
        self.cfg.budget = v;
        self
    }

    /// Access-frequency decay per batch.
    pub fn access_decay(mut self, v: f64) -> Self {
        self.cfg.access_decay = v;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SimConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.dbsize, 1000);
        assert_eq!(cfg.queries_per_batch, 1000);
        assert_eq!(cfg.batches, 10);
        assert!((cfg.update_fraction - 0.20).abs() < 1e-12);
        assert_eq!(cfg.batch_rows(), 200);
        cfg.validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::builder()
            .dbsize(500)
            .domain(10)
            .update_fraction(0.8)
            .batches(3)
            .queries_per_batch(7)
            .policy(PolicyKind::Fifo)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(cfg.dbsize, 500);
        assert_eq!(cfg.batch_rows(), 400);
        assert_eq!(cfg.policy, PolicyKind::Fifo);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SimConfig::builder().dbsize(0).build().is_err());
        assert!(SimConfig::builder().domain(-1).build().is_err());
        assert!(SimConfig::builder().update_fraction(-0.1).build().is_err());
        assert!(SimConfig::builder().access_decay(0.0).build().is_err());
        assert!(SimConfig::builder()
            .budget(BudgetMode::Watermark {
                high: 1.0,
                low: 2.0
            })
            .build()
            .is_err());
    }
}
