//! Adaptive partitioned amnesia (paper §4.4).
//!
//! "Instead of user defined partitioning schemes, it might be worth to
//! study amnesia in the context of adaptive partitioning. Each partition
//! can then be tuned to provide the best precision for a subset of the
//! workload."
//!
//! [`AdaptiveStore`] splits the value domain into equi-width partitions,
//! gives each its own storage budget and — crucially — its own *choice*
//! of amnesia policy, learned online. Policy selection is an ε-greedy
//! bandit: each partition keeps a mean-reward estimate per candidate
//! policy ("arm"), where the reward is the query precision the workload
//! reports back through [`AdaptiveStore::observe`]. At every batch
//! boundary the partition exploits the best-looking arm (or explores,
//! with probability ε) — so a partition hammered by recency queries
//! drifts to FIFO while a sibling serving historical queries drifts to
//! uniform/area, without anyone turning knobs (the paper's "mostly
//! knobless DBMS").

use amnesia_columnar::{Epoch, Schema, Table, Value};
use amnesia_util::{Result, SimRng};

use crate::policy::{AmnesiaPolicy, PolicyContext, PolicyKind};

/// Configuration for an [`AdaptiveStore`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Candidate policies every partition may choose between.
    pub arms: Vec<PolicyKind>,
    /// Exploration probability at each batch boundary.
    pub epsilon: f64,
    /// Number of equi-width value partitions.
    pub partitions: usize,
    /// Value domain `[0, domain)` being partitioned.
    pub domain: i64,
    /// Active-tuple budget per partition.
    pub budget_per_partition: usize,
}

impl AdaptiveConfig {
    /// A reasonable default arm set: the paper's contrasting trio.
    pub fn default_arms() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fifo,
            PolicyKind::Uniform,
            PolicyKind::Rot { high_water_age: 2 },
        ]
    }
}

/// Per-arm reward statistics.
///
/// Rewards are tracked as an exponentially-weighted moving average, not
/// a lifetime mean: precision decays globally as history accumulates, so
/// a lifetime mean would permanently favour whichever arm happened to
/// run first (when everything still looked precise). The EWMA keeps the
/// estimates comparable across time.
#[derive(Debug, Clone, Default)]
struct ArmStats {
    pulls: u64,
    ewma: f64,
}

/// EWMA smoothing for arm rewards.
const REWARD_EWMA: f64 = 0.4;

impl ArmStats {
    fn mean(&self) -> f64 {
        if self.pulls == 0 {
            // Optimistic initialization: untried arms look perfect, so
            // every arm gets tried before exploitation locks in.
            1.0
        } else {
            self.ewma
        }
    }

    fn record(&mut self, reward: f64) {
        self.ewma = if self.pulls == 0 {
            reward
        } else {
            REWARD_EWMA * reward + (1.0 - REWARD_EWMA) * self.ewma
        };
        self.pulls += 1;
    }
}

/// One value-range partition with its learned policy choice.
struct Partition {
    table: Table,
    policies: Vec<Box<dyn AmnesiaPolicy>>,
    stats: Vec<ArmStats>,
    current: usize,
    pending_reward: f64,
    pending_observations: u64,
}

/// A partitioned store where each partition learns its own amnesia
/// policy from precision feedback.
pub struct AdaptiveStore {
    cfg: AdaptiveConfig,
    partitions: Vec<Partition>,
}

impl AdaptiveStore {
    /// Build the store; panics if `arms` or `partitions` is empty.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(!cfg.arms.is_empty(), "need at least one arm");
        assert!(cfg.partitions > 0, "need at least one partition");
        assert!(cfg.domain > 0, "domain must be positive");
        let partitions = (0..cfg.partitions)
            .map(|_| Partition {
                table: Table::new(Schema::single("a")),
                policies: cfg.arms.iter().map(PolicyKind::build).collect(),
                stats: vec![ArmStats::default(); cfg.arms.len()],
                current: 0,
                pending_reward: 0.0,
                pending_observations: 0,
            })
            .collect();
        Self { cfg, partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Which partition a value routes to.
    pub fn partition_of(&self, v: Value) -> usize {
        let clamped = v.clamp(0, self.cfg.domain - 1);
        ((clamped as u128 * self.partitions.len() as u128) / self.cfg.domain as u128) as usize
    }

    /// The partition's value range `[lo, hi)`.
    pub fn partition_range(&self, p: usize) -> (Value, Value) {
        let n = self.partitions.len() as i64;
        let lo = self.cfg.domain * p as i64 / n;
        let hi = self.cfg.domain * (p as i64 + 1) / n;
        (lo, hi)
    }

    /// A partition's table (queries run against this).
    pub fn table(&self, p: usize) -> &Table {
        &self.partitions[p].table
    }

    /// Name of the policy a partition is currently running.
    pub fn current_arm(&self, p: usize) -> &str {
        self.partitions[p].policies[self.partitions[p].current].name()
    }

    /// Mean observed reward per arm for a partition.
    pub fn arm_means(&self, p: usize) -> Vec<f64> {
        self.partitions[p]
            .stats
            .iter()
            .map(ArmStats::mean)
            .collect()
    }

    /// Route an insert to its value partition.
    pub fn insert(&mut self, v: Value, epoch: Epoch) -> Result<()> {
        let p = self.partition_of(v);
        self.partitions[p].table.insert_batch(&[v], epoch)?;
        Ok(())
    }

    /// Feed precision observed for a query that hit partition `p` (the
    /// bandit's reward; `0.0 ..= 1.0`).
    pub fn observe(&mut self, p: usize, reward: f64) {
        let part = &mut self.partitions[p];
        part.pending_reward += reward.clamp(0.0, 1.0);
        part.pending_observations += 1;
    }

    /// Record that a query's result touched `rows` of partition `p` —
    /// the access-frequency signal the rot/learning arms feed on.
    pub fn touch(&mut self, p: usize, rows: &[amnesia_columnar::RowId], epoch: Epoch) {
        self.partitions[p].table.access_mut().touch_all(rows, epoch);
    }

    /// Batch boundary: every partition trims to its budget with its
    /// current arm, credits the batch's observations to that arm, then
    /// ε-greedily picks the arm for the next batch.
    pub fn end_batch(&mut self, epoch: Epoch, rng: &mut SimRng) -> Result<()> {
        let epsilon = self.cfg.epsilon;
        let budget = self.cfg.budget_per_partition;
        for part in &mut self.partitions {
            // Trim to budget with the current arm.
            let excess = part.table.active_rows().saturating_sub(budget);
            if excess > 0 {
                let victims = {
                    let ctx = PolicyContext {
                        table: &part.table,
                        epoch,
                    };
                    part.policies[part.current].select_victims(&ctx, excess, rng)
                };
                for v in victims {
                    part.table.forget(v, epoch)?;
                }
            }
            // Credit the batch reward to the arm that shaped this batch.
            if part.pending_observations > 0 {
                let mean = part.pending_reward / part.pending_observations as f64;
                part.stats[part.current].record(mean);
                part.pending_reward = 0.0;
                part.pending_observations = 0;
            }
            // ε-greedy arm selection for the next batch.
            part.current = if rng.chance(epsilon) {
                rng.index(part.policies.len())
            } else {
                let mut best = 0;
                for (i, s) in part.stats.iter().enumerate() {
                    if s.mean() > part.stats[best].mean() {
                        best = i;
                    }
                }
                best
            };
        }
        Ok(())
    }

    /// Total active rows across partitions.
    pub fn active_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.table.active_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::RowId;

    fn store(partitions: usize) -> AdaptiveStore {
        AdaptiveStore::new(AdaptiveConfig {
            arms: AdaptiveConfig::default_arms(),
            epsilon: 0.1,
            partitions,
            domain: 1000,
            budget_per_partition: 50,
        })
    }

    #[test]
    fn routing_is_total_and_ordered() {
        let s = store(4);
        assert_eq!(s.partition_of(0), 0);
        assert_eq!(s.partition_of(249), 0);
        assert_eq!(s.partition_of(250), 1);
        assert_eq!(s.partition_of(999), 3);
        // Out-of-domain values clamp instead of panicking.
        assert_eq!(s.partition_of(-5), 0);
        assert_eq!(s.partition_of(10_000), 3);
        // Ranges tile the domain.
        let mut expected_lo = 0;
        for p in 0..4 {
            let (lo, hi) = s.partition_range(p);
            assert_eq!(lo, expected_lo);
            assert!(hi > lo);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, 1000);
    }

    #[test]
    fn budget_holds_per_partition() {
        let mut s = store(2);
        let mut rng = SimRng::new(71);
        for epoch in 0..5u64 {
            for i in 0..200i64 {
                s.insert((i * 5) % 1000, epoch).unwrap();
            }
            s.end_batch(epoch, &mut rng).unwrap();
            for p in 0..2 {
                assert!(
                    s.table(p).active_rows() <= 50,
                    "partition {p} over budget at epoch {epoch}"
                );
            }
        }
        assert_eq!(s.active_rows(), 100);
    }

    #[test]
    fn rewards_steer_arm_selection() {
        let mut s = store(1);
        let mut rng = SimRng::new(72);
        // Feed data and consistently reward whichever arm is running
        // only when it is arm 1 ("uniform"): the bandit must settle on it.
        for epoch in 0..60u64 {
            for i in 0..60i64 {
                s.insert(i * 16 % 1000, epoch).unwrap();
            }
            let reward = if s.current_arm(0) == "uniform" {
                0.9
            } else {
                0.1
            };
            for _ in 0..10 {
                s.observe(0, reward);
            }
            s.end_batch(epoch, &mut rng).unwrap();
        }
        let means = s.arm_means(0);
        let uniform_idx = 1;
        for (i, m) in means.iter().enumerate() {
            if i != uniform_idx {
                assert!(
                    means[uniform_idx] > *m,
                    "uniform arm should dominate: {means:?}"
                );
            }
        }
        // ε-greedy exploitation: the current arm is uniform most of the
        // time by the end (allow the ε exploration wobble).
        let mut uniform_picks = 0;
        for _ in 0..100 {
            s.end_batch(99, &mut rng).unwrap();
            if s.current_arm(0) == "uniform" {
                uniform_picks += 1;
            }
        }
        assert!(uniform_picks > 80, "picked uniform {uniform_picks}/100");
    }

    #[test]
    fn untried_arms_are_optimistic() {
        let s = store(1);
        assert_eq!(s.arm_means(0), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn observations_without_queries_are_harmless() {
        let mut s = store(2);
        let mut rng = SimRng::new(73);
        // end_batch with zero observations must not divide by zero.
        s.end_batch(0, &mut rng).unwrap();
        s.observe(1, 0.5);
        s.end_batch(1, &mut rng).unwrap();
        assert_eq!(s.table(0).num_rows(), 0);
    }

    #[test]
    fn forgotten_rows_stay_in_partition_tables() {
        let mut s = store(1);
        let mut rng = SimRng::new(74);
        for i in 0..100i64 {
            s.insert(i * 7 % 1000, 0).unwrap();
        }
        s.end_batch(0, &mut rng).unwrap();
        let t = s.table(0);
        assert_eq!(t.num_rows(), 100, "mark-only semantics");
        assert_eq!(t.active_rows(), 50);
        assert!(!t.activity().is_active(
            (0..100)
                .map(RowId)
                .find(|r| !t.activity().is_active(*r))
                .unwrap()
        ));
    }
}
