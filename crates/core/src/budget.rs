//! Storage budgets: when (and how much) to forget.
//!
//! Paper §2.1: "the database storage requirements in number of tuples …
//! remains constant and equal to DBSIZE. In this way we simulate a tight
//! storage budget constraint. In a more realistic scenario, one might want
//! to constrain the growth instead of the size … if a database starts by
//! using half of the available RAM, do not let it grow beyond the 90 %
//! mark."
//!
//! [`BudgetMode::FixedSize`] is the paper's experimental regime;
//! [`BudgetMode::Watermark`] is the realistic one; [`BudgetMode::Unbounded`]
//! turns amnesia off (the no-forgetting baseline).

use serde::{Deserialize, Serialize};

/// Storage budget policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BudgetMode {
    /// Keep exactly `dbsize` tuples active: forget as many as were
    /// inserted each batch.
    #[default]
    FixedSize,
    /// Let the active set grow to `high × dbsize`, then trim back down to
    /// `low × dbsize` in one amnesia burst.
    Watermark {
        /// Growth ceiling as a multiple of `dbsize` (e.g. 1.8 = "90 % of
        /// RAM when the initial load was half of it").
        high: f64,
        /// Post-trim level as a multiple of `dbsize`.
        low: f64,
    },
    /// Never forget (baseline; precision stays 1 while memory grows).
    Unbounded,
}

impl BudgetMode {
    /// Number of tuples to forget when `active` tuples are live against a
    /// nominal budget of `dbsize`.
    pub fn victims_needed(&self, active: usize, dbsize: usize) -> usize {
        match *self {
            BudgetMode::FixedSize => active.saturating_sub(dbsize),
            BudgetMode::Watermark { high, low } => {
                let high_mark = (high * dbsize as f64).round() as usize;
                let low_mark = (low * dbsize as f64).round() as usize;
                if active > high_mark {
                    active.saturating_sub(low_mark)
                } else {
                    0
                }
            }
            BudgetMode::Unbounded => 0,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let BudgetMode::Watermark { high, low } = *self {
            // NaN fails both comparisons and is rejected here too.
            if !(high.is_finite() && low.is_finite() && high > 0.0 && low > 0.0) {
                return Err(format!(
                    "watermarks must be positive (high={high}, low={low})"
                ));
            }
            if low > high {
                return Err(format!("low watermark {low} exceeds high watermark {high}"));
            }
        }
        Ok(())
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetMode::FixedSize => "fixed-size",
            BudgetMode::Watermark { .. } => "watermark",
            BudgetMode::Unbounded => "unbounded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_trims_back_to_dbsize() {
        let b = BudgetMode::FixedSize;
        assert_eq!(b.victims_needed(1200, 1000), 200);
        assert_eq!(b.victims_needed(1000, 1000), 0);
        assert_eq!(b.victims_needed(900, 1000), 0);
    }

    #[test]
    fn watermark_bursts() {
        let b = BudgetMode::Watermark {
            high: 1.8,
            low: 1.0,
        };
        // Below the ceiling: no forgetting.
        assert_eq!(b.victims_needed(1500, 1000), 0);
        assert_eq!(b.victims_needed(1800, 1000), 0);
        // Above: trim down to low watermark in one go.
        assert_eq!(b.victims_needed(1801, 1000), 801);
        assert_eq!(b.victims_needed(2000, 1000), 1000);
    }

    #[test]
    fn unbounded_never_forgets() {
        assert_eq!(BudgetMode::Unbounded.victims_needed(1_000_000, 10), 0);
    }

    #[test]
    fn validation() {
        assert!(BudgetMode::FixedSize.validate().is_ok());
        assert!(BudgetMode::Watermark {
            high: 2.0,
            low: 1.0
        }
        .validate()
        .is_ok());
        assert!(BudgetMode::Watermark {
            high: 1.0,
            low: 2.0
        }
        .validate()
        .is_err());
        assert!(BudgetMode::Watermark {
            high: -1.0,
            low: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn names() {
        assert_eq!(BudgetMode::FixedSize.name(), "fixed-size");
        assert_eq!(
            BudgetMode::Watermark {
                high: 2.0,
                low: 1.0
            }
            .name(),
            "watermark"
        );
        assert_eq!(BudgetMode::Unbounded.name(), "unbounded");
    }
}
