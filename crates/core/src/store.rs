//! What *physically* happens to forgotten tuples.
//!
//! Paper §1 lists the design space: "A DBMS might be as radical as to
//! delete all data being forgotten. A lighter and more feasible option is
//! to stop indexing the forgotten data … A more cost-effective option is
//! to move forgotten data to cheap slow cold-storage. Finally, a possibly
//! poor information retention approach would be to keep a summary."
//!
//! [`AmnesiacStore`] realizes all of them behind one insert/forget/query
//! API so the `ABL-FORGET` ablation can compare bytes resident, query cost
//! and recoverability under identical workloads.

use amnesia_columnar::vacuum::vacuum;
use amnesia_columnar::{
    ColdStore, DurabilityHook, Epoch, ModelStore, RowId, Schema, SortedIndex, SummaryStore, Table,
    Value, WalStats, WordZoneMap, ZoneMap,
};
use amnesia_engine::{Aux, CostModel, ExecResult, Executor, ForgetVisibility};
use amnesia_util::{Result, SimRng};
use amnesia_workload::Query;
use serde::{Deserialize, Serialize};

/// Physical fate of forgotten tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForgetMode {
    /// Mark inactive only (the simulator's measurable baseline).
    MarkOnly,
    /// Mark, then physically vacuum every `vacuum_every` batches.
    Delete {
        /// Batches between vacuum passes.
        vacuum_every: u64,
    },
    /// Keep tuples scannable but evict them from index structures; index
    /// paths skip them, full scans still see them.
    Deindex,
    /// Move tuple payloads to cold storage, then mark.
    Tier,
    /// Absorb tuples into per-epoch aggregate summaries, then mark and
    /// periodically vacuum (summaries replace the bytes).
    Summarize,
    /// Absorb tuples into per-epoch micro-models (paper §5 \[15\]): like
    /// `Summarize` but the histogram also interpolates *range-restricted*
    /// aggregates. `bins` sets the per-epoch histogram resolution.
    Model {
        /// Histogram buckets per epoch model.
        bins: usize,
    },
}

impl ForgetMode {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ForgetMode::MarkOnly => "mark-only",
            ForgetMode::Delete { .. } => "delete",
            ForgetMode::Deindex => "deindex",
            ForgetMode::Tier => "tier",
            ForgetMode::Summarize => "summarize",
            ForgetMode::Model { .. } => "model",
        }
    }
}

/// Storage accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreFootprint {
    /// Physical rows in the hot table (active + still-marked).
    pub hot_rows: usize,
    /// Active rows.
    pub active_rows: usize,
    /// Approximate resident bytes (table + index + zone map). Frozen
    /// blocks count at their *compressed* size.
    pub hot_bytes: usize,
    /// Compressed bytes held by frozen tier blocks (part of
    /// `hot_bytes`).
    pub bytes_frozen: usize,
    /// Tuples parked in cold storage.
    pub cold_rows: usize,
    /// Cold storage bytes.
    pub cold_bytes: u64,
    /// Summary bytes.
    pub summary_bytes: usize,
    /// Micro-model bytes.
    pub model_bytes: usize,
}

/// Tier scheduling configuration: how many of the newest rows stay hot
/// (uncompressed) when the store freezes its cold prefix at batch
/// boundaries, and when heavily-forgotten frozen blocks re-encode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Rows kept hot at the tail (rounded up to a block boundary by the
    /// freeze).
    pub hot_rows: usize,
    /// Recompress frozen blocks whose active fraction drops to this or
    /// below (0.5 = half forgotten).
    pub recompress_below: f64,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            hot_rows: 4_096,
            recompress_below: 0.5,
        }
    }
}

/// A table plus the machinery that executes its forget mode.
pub struct AmnesiacStore {
    table: Table,
    mode: ForgetMode,
    executor: Executor,
    index: Option<SortedIndex>,
    zonemap: Option<ZoneMap>,
    word_zones: Option<WordZoneMap>,
    cold: Option<Box<dyn ColdStore>>,
    summaries: SummaryStore,
    models: Option<ModelStore>,
    batches_since_vacuum: u64,
    total_forgotten: u64,
    tiering: Option<TierConfig>,
    blocks_dropped: u64,
    blocks_recompressed: u64,
    durability: Option<Box<dyn DurabilityHook>>,
}

impl AmnesiacStore {
    /// New single-attribute store under `mode`.
    ///
    /// `Tier` mode requires a cold store: pass one with
    /// [`AmnesiacStore::with_cold_store`] before the first forget.
    pub fn new(mode: ForgetMode) -> Self {
        Self::from_table(Table::new(Schema::single("a")), mode)
    }

    /// Wrap an existing table (e.g. one recovered from a
    /// [`PersistentTable`](amnesia_columnar::PersistentTable)) under
    /// `mode`. Auxiliary structures start empty; enable them with the
    /// usual `with_*` builders, which build from the given table.
    pub fn from_table(table: Table, mode: ForgetMode) -> Self {
        let visibility = match mode {
            ForgetMode::Deindex => ForgetVisibility::ScanSeesForgotten,
            _ => ForgetVisibility::ActiveOnly,
        };
        Self {
            table,
            mode,
            executor: Executor::new(visibility, CostModel::default()),
            index: None,
            zonemap: None,
            word_zones: None,
            cold: None,
            summaries: SummaryStore::new(),
            models: match mode {
                ForgetMode::Model { bins } => Some(ModelStore::new(bins)),
                _ => None,
            },
            batches_since_vacuum: 0,
            total_forgotten: 0,
            tiering: None,
            blocks_dropped: 0,
            blocks_recompressed: 0,
            durability: None,
        }
    }

    /// Attach a cold store (required for `Tier`).
    pub fn with_cold_store(mut self, cold: Box<dyn ColdStore>) -> Self {
        self.cold = Some(cold);
        self
    }

    /// Attach a durability hook (typically a
    /// [`DurableLog`](amnesia_columnar::DurableLog) split off a
    /// [`PersistentTable`](amnesia_columnar::PersistentTable) via
    /// `into_parts`). Every insert, forget and tier transition is logged
    /// *before* it is applied; [`AmnesiacStore::end_batch`] commits the
    /// batch, checkpoints after a vacuum (vacuums renumber rows and are
    /// not replayable) and shreds covered segments after a block drop so
    /// forgotten values' encoded bytes do not outlive the drop.
    pub fn with_durability(mut self, hook: Box<dyn DurabilityHook>) -> Self {
        self.durability = Some(hook);
        self
    }

    /// Cumulative counters of the attached durability hook, if any.
    pub fn durability_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.stats())
    }

    /// Restore the cumulative tier-transition counters (used when resuming
    /// a store from a recovered table, so `metrics_snapshot` keeps
    /// counting from the pre-crash totals).
    pub fn restore_tier_counters(&mut self, blocks_dropped: u64, blocks_recompressed: u64) {
        self.blocks_dropped = blocks_dropped;
        self.blocks_recompressed = blocks_recompressed;
    }

    /// Give the durability hook back (e.g. to checkpoint and close
    /// cleanly), detaching it from the store.
    pub fn take_durability(&mut self) -> Option<Box<dyn DurabilityHook>> {
        self.durability.take()
    }

    /// Enable tiered freeze scheduling: at every batch boundary the store
    /// compresses all but the newest `cfg.hot_rows` rows in place
    /// ([`Table::freeze_upto`]), drops the payloads of fully-forgotten
    /// frozen blocks, and recompresses blocks whose active fraction fell
    /// below `cfg.recompress_below`.
    ///
    /// Ignored under `Deindex` mode: its complete-scan regime must keep
    /// reading forgotten tuples, which block drops and recompression
    /// would rewrite.
    pub fn with_tiering(mut self, cfg: TierConfig) -> Self {
        self.tiering = Some(cfg);
        self
    }

    /// Enable a sorted index (rebuilt on vacuum, staleness-tracked).
    pub fn with_index(mut self) -> Self {
        self.index = Some(SortedIndex::build(&self.table, 0));
        self
    }

    /// Enable a zone map.
    pub fn with_zonemap(mut self) -> Self {
        self.zonemap = Some(ZoneMap::build(&self.table, 0));
        self
    }

    /// Enable a word-granularity zone map: scans skip 64-row words whose
    /// min/max can't intersect the predicate, on top of block pruning.
    pub fn with_word_zones(mut self) -> Self {
        self.word_zones = Some(WordZoneMap::build(&self.table, 0));
        self
    }

    /// The forget mode.
    pub fn mode(&self) -> ForgetMode {
        self.mode
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Total tuples forgotten through this store.
    pub fn total_forgotten(&self) -> u64 {
        self.total_forgotten
    }

    /// Insert a batch of values at `epoch`.
    pub fn insert_batch(&mut self, values: &[Value], epoch: Epoch) -> Result<()> {
        if let Some(d) = &mut self.durability {
            // Validate before logging: a record the table would reject
            // must never reach the WAL, or replay would fail on it and
            // brick every future recovery.
            self.table.validate_insert_batch()?;
            let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![v]).collect();
            d.log_insert_rows(&rows, epoch)?;
        }
        self.table.insert_batch(values, epoch)?;
        // Both zone maps are dead weight once blocks are frozen: the
        // executor switches to the tier's built-in block meta, and a
        // rebuild would pay per-row point reads into compressed blocks.
        if let Some(zm) = &mut self.zonemap {
            if !self.table.has_frozen() {
                zm.sync(&self.table);
            }
        }
        // Word zones are dead weight once blocks are frozen (the executor
        // switches to block-meta pruning) — skip the full-column decode
        // their rebuild would cost.
        if let Some(wz) = &mut self.word_zones {
            if !self.table.has_frozen() {
                wz.sync(&self.table);
            }
        }
        if let Some(idx) = &mut self.index {
            idx.rebuild(&self.table);
        }
        Ok(())
    }

    /// Forget one tuple at `epoch`, applying the mode's physical action.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> Result<()> {
        if let Some(d) = &mut self.durability {
            self.table.validate_forget(row)?;
            d.log_forget(row, epoch)?;
        }
        match self.mode {
            ForgetMode::MarkOnly | ForgetMode::Delete { .. } | ForgetMode::Deindex => {}
            ForgetMode::Tier => {
                let values = self.table.row_values(row);
                if let Some(cold) = &mut self.cold {
                    cold.archive(row, &values)?;
                }
            }
            ForgetMode::Summarize => {
                let v = self.table.value(0, row);
                self.summaries.absorb(self.table.insert_epoch(row), v);
            }
            ForgetMode::Model { .. } => {
                let v = self.table.value(0, row);
                if let Some(models) = &mut self.models {
                    models.absorb(self.table.insert_epoch(row), v);
                }
            }
        }
        if self.table.forget(row, epoch)? {
            self.total_forgotten += 1;
            if let Some(zm) = &mut self.zonemap {
                zm.note_forget(row);
            }
            if let Some(wz) = &mut self.word_zones {
                wz.note_forget(row);
            }
            if let Some(idx) = &mut self.index {
                idx.note_forget();
            }
        }
        Ok(())
    }

    /// Forget many tuples.
    pub fn forget_batch(&mut self, rows: &[RowId], epoch: Epoch) -> Result<()> {
        for &r in rows {
            self.forget(r, epoch)?;
        }
        Ok(())
    }

    /// Batch boundary: vacuum if the mode schedules it, refresh auxiliary
    /// structures.
    pub fn end_batch(&mut self) -> Result<()> {
        self.batches_since_vacuum += 1;
        if let Some(models) = &mut self.models {
            models.seal();
        }
        let vacuum_due = match self.mode {
            ForgetMode::Delete { vacuum_every } => self.batches_since_vacuum >= vacuum_every,
            // Summaries and models replace the bytes: reclaim aggressively.
            ForgetMode::Summarize | ForgetMode::Model { .. } => true,
            _ => false,
        };
        if vacuum_due && self.table.forgotten_rows() > 0 {
            let result = vacuum(&self.table);
            self.table = result.table;
            self.batches_since_vacuum = 0;
            // A vacuum renumbers rows, which no WAL replay can reproduce:
            // re-anchor durability on a fresh snapshot of the compacted
            // table instead.
            if let Some(d) = &mut self.durability {
                d.checkpoint(&self.table)?;
            }
            if let Some(idx) = &mut self.index {
                idx.rebuild(&self.table);
            }
            if let Some(zm) = &mut self.zonemap {
                *zm = ZoneMap::build_with_block_rows(&self.table, 0, zm.block_rows());
            }
            if let Some(wz) = &mut self.word_zones {
                if !self.table.has_frozen() {
                    wz.sync(&self.table);
                }
            }
        } else {
            if let Some(zm) = &mut self.zonemap {
                if !self.table.has_frozen() {
                    zm.sync(&self.table);
                }
            }
            if let Some(wz) = &mut self.word_zones {
                if !self.table.has_frozen() {
                    wz.sync(&self.table);
                }
            }
            if let Some(idx) = &mut self.index {
                if idx.needs_rebuild(0.25) {
                    idx.rebuild(&self.table);
                }
            }
        }
        // Tier scheduling: freeze the cold prefix in place, drop dead
        // blocks, recompress heavily-forgotten ones. Gated off the
        // complete-scan regime (Deindex), whose scans must keep reading
        // forgotten tuples.
        if let Some(cfg) = self.tiering {
            if self.executor.mode() == ForgetVisibility::ActiveOnly {
                let n = self.table.num_rows();
                let upto = n.saturating_sub(cfg.hot_rows);
                // Tier transitions log their *parameters* ahead of the
                // mutation; replay re-runs the same deterministic calls.
                if let Some(d) = &mut self.durability {
                    d.log_freeze(upto)?;
                    d.log_drop_blocks()?;
                    d.log_recompress(cfg.recompress_below)?;
                }
                self.table.freeze_upto(upto);
                let (dropped, _) = self.table.drop_forgotten_blocks();
                self.blocks_dropped += dropped as u64;
                let (recompressed, _) = self.table.recompress_frozen(cfg.recompress_below);
                self.blocks_recompressed += recompressed as u64;
                if let Some(d) = &mut self.durability {
                    d.note_transition_results(dropped as u64, recompressed as u64);
                    if dropped > 0 {
                        // Amnesia must reach the log too: snapshot the
                        // post-drop state and destroy the covered
                        // segments, where the dropped values' encodings
                        // still live.
                        d.shred(&self.table)?;
                    }
                }
            }
        }
        if let Some(d) = &mut self.durability {
            d.commit()?;
        }
        Ok(())
    }

    /// Forget every remaining active row of frozen block `b` (a
    /// block-level amnesia decision — see
    /// [`AmnesiaPolicy::select_victim_blocks`](crate::policy::AmnesiaPolicy::select_victim_blocks))
    /// and immediately drop its payload. Returns the rows forgotten.
    pub fn forget_block(&mut self, b: usize, epoch: Epoch) -> Result<usize> {
        let block_rows = self.table.block_rows();
        if b >= self.table.frozen_blocks() {
            return Ok(0);
        }
        let lo = b * block_rows;
        let hi = (lo + block_rows).min(self.table.num_rows());
        let victims: Vec<RowId> = (lo..hi)
            .map(RowId::from)
            .filter(|&r| self.table.activity().is_active(r))
            .collect();
        for &r in &victims {
            self.forget(r, epoch)?;
        }
        if let Some(d) = &mut self.durability {
            d.log_drop_blocks()?;
        }
        let (dropped, _) = self.table.drop_forgotten_blocks();
        self.blocks_dropped += dropped as u64;
        if let Some(d) = &mut self.durability {
            d.note_transition_results(dropped as u64, 0);
            if dropped > 0 {
                d.shred(&self.table)?;
            }
        }
        Ok(victims.len())
    }

    /// Execute a query with the mode's visibility and auxiliary
    /// structures.
    pub fn query(&self, q: &Query) -> ExecResult {
        let aux = Aux {
            zonemap: self.zonemap.as_ref(),
            word_zones: self.word_zones.as_ref(),
            index: self.index.as_ref(),
            summaries: matches!(self.mode, ForgetMode::Summarize).then_some(&self.summaries),
            models: self.models.as_ref(),
        };
        self.executor.execute(&self.table, 0, q, &aux)
    }

    /// Explicitly recover a tuple from cold storage (paper §5: cold data
    /// only returns through deliberate user action).
    pub fn recover_from_cold(&mut self, row: RowId) -> Result<Option<Vec<Value>>> {
        match &mut self.cold {
            Some(cold) => cold.fetch(row),
            None => Ok(None),
        }
    }

    /// Pick a uniformly random active row (for driving test workloads).
    pub fn random_active(&self, rng: &mut SimRng) -> Option<RowId> {
        self.table.random_active(rng)
    }

    /// Storage accounting.
    pub fn footprint(&self) -> StoreFootprint {
        StoreFootprint {
            hot_rows: self.table.num_rows(),
            active_rows: self.table.active_rows(),
            hot_bytes: self.table.memory_bytes()
                + self.index.as_ref().map_or(0, SortedIndex::memory_bytes)
                + self.zonemap.as_ref().map_or(0, ZoneMap::memory_bytes)
                + self
                    .word_zones
                    .as_ref()
                    .map_or(0, WordZoneMap::memory_bytes),
            bytes_frozen: self.table.bytes_frozen(),
            cold_rows: self.cold.as_ref().map_or(0, |c| c.len()),
            cold_bytes: self.cold.as_ref().map_or(0, |c| c.bytes_used()),
            summary_bytes: self.summaries.memory_bytes(),
            model_bytes: self.models.as_ref().map_or(0, ModelStore::memory_bytes),
        }
    }

    /// Tier-aware metrics snapshot: resident bytes, frozen-block
    /// accounting and the overall compression ratio — what budget- and
    /// cost-based policies watch to see compression actually postponing
    /// forgetting.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        crate::metrics::MetricsSnapshot {
            total_rows: self.table.num_rows(),
            active_rows: self.table.active_rows(),
            resident_bytes: self.table.memory_bytes(),
            bytes_frozen: self.table.bytes_frozen(),
            frozen_blocks: self.table.frozen_blocks(),
            blocks_dropped: self.blocks_dropped,
            blocks_recompressed: self.blocks_recompressed,
            dropped_rows: self.table.dropped_rows(),
            compression_ratio: self.table.compression_ratio(),
            block_accesses: self.table.block_accesses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_columnar::{MemoryColdStore, SummaryStore};
    use amnesia_workload::query::{AggKind, RangePredicate};

    fn run_forgetting(mode: ForgetMode) -> AmnesiacStore {
        let mut store = AmnesiacStore::new(mode);
        if matches!(mode, ForgetMode::Tier) {
            store = store.with_cold_store(Box::new(MemoryColdStore::new()));
        }
        store
            .insert_batch(&(0..100).collect::<Vec<i64>>(), 0)
            .unwrap();
        // Forget the first half over two batches.
        store
            .forget_batch(&(0..25).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store.end_batch().unwrap();
        store
            .forget_batch(&(25..50).map(RowId).collect::<Vec<_>>(), 2)
            .unwrap();
        store.end_batch().unwrap();
        store
    }

    #[test]
    fn word_zones_ride_along_and_prune() {
        let mut store = AmnesiacStore::new(ForgetMode::MarkOnly).with_word_zones();
        store
            .insert_batch(&(0..10_000).collect::<Vec<i64>>(), 0)
            .unwrap();
        store
            .forget_batch(&(0..500).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store.end_batch().unwrap();
        let q = Query::Range(RangePredicate::new(6_000, 6_100));
        let r = store.query(&q);
        let expect: Vec<RowId> = (6_000..6_100).map(RowId).collect();
        assert_eq!(r.output.rows().unwrap(), expect);
        assert!(r.stats.words_pruned > 140, "{}", r.stats.words_pruned);
    }

    #[test]
    fn mark_only_keeps_bytes() {
        let store = run_forgetting(ForgetMode::MarkOnly);
        let fp = store.footprint();
        assert_eq!(fp.hot_rows, 100);
        assert_eq!(fp.active_rows, 50);
        assert_eq!(store.total_forgotten(), 50);
    }

    #[test]
    fn delete_reclaims_rows() {
        let store = run_forgetting(ForgetMode::Delete { vacuum_every: 1 });
        let fp = store.footprint();
        assert_eq!(fp.hot_rows, 50, "vacuum removed the forgotten rows");
        assert_eq!(fp.active_rows, 50);
    }

    #[test]
    fn tier_archives_payloads_and_recovers_them() {
        let mut store = run_forgetting(ForgetMode::Tier);
        let fp = store.footprint();
        assert_eq!(fp.cold_rows, 50);
        assert!(fp.cold_bytes > 0);
        // Forgotten values never appear in queries…
        let r = store.query(&Query::Range(RangePredicate::new(0, 50)));
        assert_eq!(r.output.cardinality(), 0);
        // …but can be explicitly recovered.
        let values = store.recover_from_cold(RowId(7)).unwrap();
        assert_eq!(values, Some(vec![7]));
        assert_eq!(store.recover_from_cold(RowId(99)).unwrap(), None);
    }

    #[test]
    fn summarize_answers_whole_table_aggregates_exactly() {
        let store = run_forgetting(ForgetMode::Summarize);
        // Hot bytes shrink (vacuumed) but the whole-table average is exact.
        let fp = store.footprint();
        assert_eq!(fp.hot_rows, 50);
        assert!(fp.summary_bytes > 0);
        let avg = store
            .query(&Query::Aggregate {
                kind: AggKind::Avg,
                predicate: None,
            })
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(49.5), "exact average over all 100 values");
        let count = store
            .query(&Query::Aggregate {
                kind: AggKind::Count,
                predicate: None,
            })
            .output
            .agg()
            .unwrap();
        assert_eq!(count, Some(100.0));
    }

    #[test]
    fn model_mode_recovers_ranged_aggregates_approximately() {
        let store = run_forgetting(ForgetMode::Model { bins: 16 });
        let fp = store.footprint();
        assert_eq!(fp.hot_rows, 50, "models vacuum like summarize");
        assert!(fp.model_bytes > 0);
        assert_eq!(
            fp.summary_bytes,
            SummaryStore::new().memory_bytes(),
            "summary store stays empty in model mode"
        );
        // Whole-table aggregates are exact (model totals are exact).
        let avg = store
            .query(&Query::Aggregate {
                kind: AggKind::Avg,
                predicate: None,
            })
            .output
            .agg()
            .unwrap();
        assert_eq!(avg, Some(49.5));
        // Ranged COUNT over [0, 50) — all 50 forgotten values: the
        // histogram estimate lands near the truth where summarize would
        // answer 0.
        let count = store
            .query(&Query::Aggregate {
                kind: AggKind::Count,
                predicate: Some(RangePredicate::new(0, 50)),
            })
            .output
            .agg()
            .unwrap()
            .unwrap();
        assert!((count - 50.0).abs() < 5.0, "ranged count {count}");
    }

    #[test]
    fn deindex_full_scans_still_see_forgotten_data() {
        let store = run_forgetting(ForgetMode::Deindex);
        let r = store.query(&Query::Range(RangePredicate::new(0, 50)));
        // Scan path: complete answer including forgotten tuples.
        assert_eq!(r.output.cardinality(), 50);
    }

    #[test]
    fn index_is_maintained_through_vacuum() {
        let mut store = AmnesiacStore::new(ForgetMode::Delete { vacuum_every: 1 }).with_index();
        store
            .insert_batch(&(0..1000).collect::<Vec<i64>>(), 0)
            .unwrap();
        store
            .forget_batch(&(0..500).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store.end_batch().unwrap();
        // After vacuum row ids changed; the index was rebuilt, so a probe
        // must return exactly the surviving values.
        let r = store.query(&Query::Range(RangePredicate::new(400, 600)));
        assert_eq!(r.output.cardinality(), 100, "values 500..600 survive");
    }

    #[test]
    fn tiering_freezes_cold_prefix_and_shrinks_resident_bytes() {
        let mut plain = AmnesiacStore::new(ForgetMode::MarkOnly);
        let mut tiered = AmnesiacStore::new(ForgetMode::MarkOnly).with_tiering(TierConfig {
            hot_rows: 2_048,
            recompress_below: 0.5,
        });
        let values: Vec<i64> = (0..50_000).collect();
        plain.insert_batch(&values, 0).unwrap();
        tiered.insert_batch(&values, 0).unwrap();
        plain.end_batch().unwrap();
        tiered.end_batch().unwrap();
        let snap = tiered.metrics_snapshot();
        assert!(snap.frozen_blocks >= 46, "{}", snap.frozen_blocks);
        assert!(snap.bytes_frozen > 0);
        assert!(snap.compression_ratio > 2.0, "{}", snap.compression_ratio);
        assert!(
            tiered.footprint().hot_bytes < plain.footprint().hot_bytes,
            "tiered {} vs plain {}",
            tiered.footprint().hot_bytes,
            plain.footprint().hot_bytes
        );
        assert_eq!(tiered.footprint().bytes_frozen, snap.bytes_frozen);
        // Queries answer identically through the tiers.
        let q = Query::Range(RangePredicate::new(10_000, 10_100));
        assert_eq!(tiered.query(&q).output, plain.query(&q).output);
        let agg = Query::Aggregate {
            kind: AggKind::Sum,
            predicate: Some(RangePredicate::new(0, 25_000)),
        };
        assert_eq!(tiered.query(&agg).output, plain.query(&agg).output);
    }

    #[test]
    fn tiering_drops_dead_blocks_and_recompresses_rotten_ones() {
        let mut store = AmnesiacStore::new(ForgetMode::MarkOnly).with_tiering(TierConfig {
            hot_rows: 0,
            recompress_below: 0.6,
        });
        // Block 1 interleaves a constant survivor value with serial
        // noise, so forgetting the noise lets recompression collapse it.
        let values: Vec<i64> = (0..4_096)
            .map(|i| {
                if (1_024..2_048).contains(&i) && i % 2 == 1 {
                    100_000
                } else {
                    i
                }
            })
            .collect();
        store.insert_batch(&values, 0).unwrap();
        store.end_batch().unwrap();
        assert_eq!(store.metrics_snapshot().frozen_blocks, 4);
        // Kill block 0 entirely, the noisy half of block 1.
        store
            .forget_batch(&(0..1_024).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store
            .forget_batch(
                &(1_024..2_048)
                    .filter(|r| r % 2 == 0)
                    .map(RowId)
                    .collect::<Vec<_>>(),
                1,
            )
            .unwrap();
        let before = store.metrics_snapshot().bytes_frozen;
        store.end_batch().unwrap();
        let snap = store.metrics_snapshot();
        assert_eq!(snap.blocks_dropped, 1);
        assert!(snap.blocks_recompressed >= 1);
        assert!(snap.bytes_frozen < before);
        // Survivors still answer.
        let r = store.query(&Query::Range(RangePredicate::new(100_000, 100_001)));
        assert_eq!(r.output.cardinality(), 512, "block 1 survivors");
    }

    #[test]
    fn dropped_blocks_report_separately_instead_of_inflating_ratio() {
        let mut store = AmnesiacStore::new(ForgetMode::MarkOnly).with_tiering(TierConfig {
            hot_rows: 0,
            recompress_below: 0.0,
        });
        // Incompressible values keep the honest codec ratio near 1.
        let values: Vec<i64> = (0..4_096).map(|i| (i * 0x9E37_79B9) ^ (i << 19)).collect();
        store.insert_batch(&values, 0).unwrap();
        store.end_batch().unwrap();
        let honest = store.metrics_snapshot().compression_ratio;
        assert_eq!(store.metrics_snapshot().dropped_rows, 0);
        // Forget and drop 3 of 4 blocks.
        store
            .forget_batch(&(0..3_072).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store.end_batch().unwrap();
        let snap = store.metrics_snapshot();
        assert_eq!(snap.blocks_dropped, 3);
        assert_eq!(snap.dropped_rows, 3_072, "amnesia savings report as rows");
        assert!(
            snap.compression_ratio < honest * 1.5,
            "codec ratio must not absorb drop savings: {} vs {honest}",
            snap.compression_ratio
        );
    }

    #[test]
    fn forget_block_drops_whole_blocks_via_policy_candidates() {
        use crate::policy::{AmnesiaPolicy, PolicyContext, UniformPolicy};
        let mut store = AmnesiacStore::new(ForgetMode::MarkOnly).with_tiering(TierConfig {
            hot_rows: 0,
            recompress_below: 0.0,
        });
        store
            .insert_batch(&(0..3_072).collect::<Vec<i64>>(), 0)
            .unwrap();
        store.end_batch().unwrap();
        // Make block 1 the cheapest to evict.
        store
            .forget_batch(
                &(1_024..2_048)
                    .filter(|r| r % 4 != 0)
                    .map(RowId)
                    .collect::<Vec<_>>(),
                1,
            )
            .unwrap();
        let mut rng = SimRng::new(5);
        let mut policy = UniformPolicy;
        let ctx = PolicyContext {
            table: store.table(),
            epoch: 2,
        };
        let blocks = policy.select_victim_blocks(&ctx, 1, &mut rng);
        assert_eq!(blocks, vec![1], "fewest active rows first");
        let forgotten = store.forget_block(1, 2).unwrap();
        assert_eq!(forgotten, 256, "the surviving quarter");
        assert_eq!(store.metrics_snapshot().blocks_dropped, 1);
        let r = store.query(&Query::Range(RangePredicate::new(1_024, 2_048)));
        assert_eq!(r.output.cardinality(), 0, "whole block forgotten");
        assert_eq!(
            store
                .query(&Query::Range(RangePredicate::new(0, 1_024)))
                .output
                .cardinality(),
            1_024,
            "neighbours untouched"
        );
    }

    #[test]
    fn durable_store_recovers_exact_tier_layout() {
        use crate::metrics::MetricsSnapshot;
        use amnesia_columnar::PersistentTable;
        let dir = std::env::temp_dir().join(format!("amn-store-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        let (table, log) = pt.into_parts();
        let mut store = AmnesiacStore::from_table(table, ForgetMode::MarkOnly)
            .with_durability(Box::new(log))
            .with_tiering(TierConfig {
                hot_rows: 0,
                recompress_below: 0.5,
            });
        store
            .insert_batch(&(0..4_096).collect::<Vec<i64>>(), 0)
            .unwrap();
        store.end_batch().unwrap();
        // Kill block 0 (dropped + shredded at the batch boundary) and rot
        // most of block 1 (recompressed).
        store
            .forget_batch(&(0..1_024).map(RowId).collect::<Vec<_>>(), 1)
            .unwrap();
        store
            .forget_batch(
                &(1_024..2_048)
                    .filter(|r| r % 4 != 0)
                    .map(RowId)
                    .collect::<Vec<_>>(),
                1,
            )
            .unwrap();
        store.end_batch().unwrap();
        // Tail work after the shred: replayed from the log, not the
        // snapshot.
        store
            .insert_batch(&(0..100).collect::<Vec<i64>>(), 2)
            .unwrap();
        store.forget(RowId(4_100), 2).unwrap();
        let snap = store.metrics_snapshot();
        assert!(snap.blocks_dropped >= 1, "{snap:?}");
        assert!(snap.blocks_recompressed >= 1, "{snap:?}");
        drop(store);

        let rec = PersistentTable::open(&dir).unwrap();
        assert!(rec.recovered_clean());
        let mut recovered = MetricsSnapshot::from_table(
            rec.table(),
            rec.blocks_dropped(),
            rec.blocks_recompressed(),
        );
        // Heap accounting tracks allocation history (Vec growth), which a
        // rebuild legitimately differs on — everything logical must match
        // exactly, resident bytes within a whisker.
        let drift = (recovered.resident_bytes as f64 - snap.resident_bytes as f64).abs()
            / snap.resident_bytes as f64;
        assert!(drift < 0.02, "resident bytes drift {drift}");
        recovered.resident_bytes = snap.resident_bytes;
        recovered.compression_ratio = snap.compression_ratio;
        assert_eq!(
            recovered, snap,
            "recovered tier layout must match pre-crash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footprint_shrinks_most_under_summarize() {
        let mark = run_forgetting(ForgetMode::MarkOnly).footprint();
        let del = run_forgetting(ForgetMode::Delete { vacuum_every: 1 }).footprint();
        let summ = run_forgetting(ForgetMode::Summarize).footprint();
        assert!(del.hot_rows < mark.hot_rows);
        assert!(summ.hot_rows <= del.hot_rows);
        assert!(summ.summary_bytes < 1024);
    }
}
