//! Distribution-aligned amnesia (§4.4).
//!
//! "Alternatively, amnesia may be aligned with the data distribution of
//! present and past. That is, we attempt to forget tuples that do not
//! change the data distribution for all active records. Keeping the two
//! distributions aligned as much as possible is what database sampling
//! techniques often aim for."
//!
//! Target distribution = histogram of *everything ever inserted* (which
//! the mark-only table still physically holds); victims are drained from
//! whichever value bin is most over-represented among active tuples, so
//! the active set remains a faithful sample of history.

use amnesia_columnar::RowId;
use amnesia_distrib::Histogram;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Histogram-balancing forgetting.
#[derive(Debug, Clone, Copy)]
pub struct AlignedPolicy {
    bins: usize,
}

impl AlignedPolicy {
    /// Policy with `bins` histogram buckets (≥ 1).
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Self { bins }
    }
}

impl AmnesiaPolicy for AlignedPolicy {
    fn name(&self) -> &'static str {
        "aligned"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let lo = table.min_seen(0).unwrap_or(0);
        let hi = table.max_seen(0).unwrap_or(0).max(lo);

        // Target: the distribution of all data ever ingested.
        let mut target = Histogram::new(lo, hi, self.bins);
        for r in 0..table.num_rows() {
            target.add(table.value(0, RowId::from(r)));
        }
        let target_p = target.probabilities();

        // Active rows grouped by bin.
        let mut bin_rows: Vec<Vec<RowId>> = vec![Vec::new(); self.bins];
        for r in table.iter_active() {
            bin_rows[target.bin_of(table.value(0, r))].push(r);
        }
        let mut active_total: usize = bin_rows.iter().map(Vec::len).sum();

        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            if active_total == 0 {
                break;
            }
            // Most over-represented non-empty bin.
            let best = (0..self.bins)
                .filter(|&b| !bin_rows[b].is_empty())
                .max_by(|&a, &b| {
                    let sa = bin_rows[a].len() as f64 / active_total as f64 - target_p[a];
                    let sb = bin_rows[b].len() as f64 / active_total as f64 - target_p[b];
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("some bin is non-empty");
            let rows = &mut bin_rows[best];
            let pick = rng.index(rows.len());
            victims.push(rows.swap_remove(pick));
            active_total -= 1;
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;
    use amnesia_columnar::{Schema, Table};

    #[test]
    fn drains_overrepresented_bins() {
        // History: half the rows in [0,99], half in [100,199]. Forget the
        // low half first (simulating earlier skewed amnesia), then check
        // aligned picks victims from the now-over-represented high bin.
        let mut t = Table::new(Schema::single("a"));
        let mut values: Vec<i64> = (0..100).collect();
        values.extend(100..200);
        t.insert_batch(&values, 0).unwrap();
        for r in 0..50u64 {
            t.forget(RowId(r), 1).unwrap();
        }
        // Active: 50 low, 100 high — high is over-represented vs 50/50.
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = AlignedPolicy::new(2);
        let mut rng = SimRng::new(27);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        let high = victims.iter().filter(|v| t.value(0, **v) >= 100).count();
        assert_eq!(high, 50, "all victims must come from the surplus bin");
    }

    #[test]
    fn keeps_active_distribution_close_to_history() {
        let mut p = AlignedPolicy::new(16);
        let mut rng = SimRng::new(28);
        let t = run_loop(&mut p, 400, 100, 8, &mut rng);
        // Compare final active histogram against all-history histogram.
        let lo = t.min_seen(0).unwrap();
        let hi = t.max_seen(0).unwrap();
        let mut hist_all = Histogram::new(lo, hi, 16);
        let mut hist_active = Histogram::new(lo, hi, 16);
        for r in 0..t.num_rows() {
            hist_all.add(t.value(0, RowId::from(r)));
        }
        for r in t.iter_active() {
            hist_active.add(t.value(0, r));
        }
        let tv = hist_active.total_variation(&hist_all);
        assert!(tv < 0.06, "active set drifted from history: TV {tv}");
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = AlignedPolicy::new(8);
        let mut rng = SimRng::new(29);
        let _ = run_loop(&mut p, 120, 30, 6, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        AlignedPolicy::new(0);
    }
}
