//! Human-forgetting-curve amnesia (paper §5).
//!
//! "Recent studies [6, 2] use neurological inspired models of the human
//! short term memory system to assess the recall precision in the context
//! of forgetting data. The results show that amnesia algorithms based on
//! 'human forgetting inspired heuristics' can be an effective tool for
//! shrinking and managing the database."
//!
//! This policy realizes the classic Ebbinghaus model: memory retention
//! decays as `R = exp(−t / S)` where `t` is the time since the last
//! rehearsal and `S` is the memory strength. Every rehearsal — here, a
//! tuple appearing in a query result — raises `S`, flattening the curve.
//! A tuple's probability of being chosen as a victim is its *lapse*
//! probability `1 − R`.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Forgetting-curve policy: victims are drawn with probability
/// proportional to their memory-lapse probability `1 − exp(−t/S)`.
#[derive(Debug, Clone, Copy)]
pub struct EbbinghausPolicy {
    base_strength: f64,
    rehearsal_boost: f64,
}

impl EbbinghausPolicy {
    /// New policy.
    ///
    /// `base_strength` is the strength `S₀` (in batches) of a never-
    /// rehearsed memory: after `S₀` batches without access, retention has
    /// dropped to `1/e ≈ 37 %`. `rehearsal_boost` is the per-access
    /// strength increment: `S = S₀ · (1 + boost · frequency)`.
    pub fn new(base_strength: f64, rehearsal_boost: f64) -> Self {
        Self {
            base_strength: base_strength.max(f64::MIN_POSITIVE),
            rehearsal_boost: rehearsal_boost.max(0.0),
        }
    }

    /// The paper-era defaults used by the RECALL experiment: strength one
    /// batch, each rehearsal adds one batch-equivalent of strength.
    pub fn default_params() -> Self {
        Self::new(1.0, 1.0)
    }

    /// Retention `R = exp(−age / S)` for a tuple `age` batches past its
    /// last rehearsal with cumulative access `frequency`.
    pub fn retention(&self, age: f64, frequency: f64) -> f64 {
        let strength = self.base_strength * (1.0 + self.rehearsal_boost * frequency);
        (-age.max(0.0) / strength).exp()
    }

    /// Lapse probability `1 − R`, floored so fresh tables still produce a
    /// valid weighting.
    pub fn lapse(&self, age: f64, frequency: f64) -> f64 {
        (1.0 - self.retention(age, frequency)).max(1e-12)
    }
}

impl AmnesiaPolicy for EbbinghausPolicy {
    fn name(&self) -> &'static str {
        "ebbinghaus"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let ids: Vec<RowId> = table.active_row_ids();
        let weights: Vec<f64> = ids
            .iter()
            .map(|&r| {
                // A rehearsal resets the clock; an untouched tuple's clock
                // starts at insertion.
                let last = table.access().last_access(r).max(table.insert_epoch(r));
                let age = ctx.epoch.saturating_sub(last) as f64;
                self.lapse(age, table.access().frequency(r))
            })
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn retention_decays_with_age_and_grows_with_rehearsal() {
        let p = EbbinghausPolicy::new(2.0, 1.0);
        // Monotone decreasing in age.
        assert!(p.retention(0.0, 0.0) > p.retention(1.0, 0.0));
        assert!(p.retention(1.0, 0.0) > p.retention(5.0, 0.0));
        // Monotone increasing in rehearsal count at fixed age.
        assert!(p.retention(3.0, 10.0) > p.retention(3.0, 1.0));
        assert!(p.retention(3.0, 1.0) > p.retention(3.0, 0.0));
        // R(0) = 1 regardless of strength.
        assert!((p.retention(0.0, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rehearsed_rows_survive() {
        let mut t = staged_table(200, 0, 0);
        // Rows 0..100 rehearsed heavily at epoch 4; the rest untouched.
        for r in 0..100u64 {
            for _ in 0..20 {
                t.access_mut().touch(RowId(r), 4);
            }
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 5,
        };
        let mut p = EbbinghausPolicy::default_params();
        let mut rng = SimRng::new(41);
        let victims = p.select_victims(&ctx, 80, &mut rng);
        assert_victims_valid(&t, &victims, 80);
        let rehearsed = victims.iter().filter(|v| v.as_usize() < 100).count();
        // Rehearsed rows: age 1, strength 21 → lapse ≈ 0.047.
        // Untouched rows: age 5, strength 1 → lapse ≈ 0.993.
        assert!(rehearsed < 20, "rehearsed victims {rehearsed}");
    }

    #[test]
    fn stale_memories_lapse_before_fresh_ones() {
        // Two cohorts, no accesses at all: age alone drives the curve.
        let t = staged_table(100, 100, 1); // epoch 0 and epoch 1
        let ctx = PolicyContext {
            table: &t,
            epoch: 6,
        };
        let mut p = EbbinghausPolicy::default_params();
        let mut rng = SimRng::new(42);
        let mut old_victims = 0;
        let rounds = 50;
        for _ in 0..rounds {
            let victims = p.select_victims(&ctx, 40, &mut rng);
            old_victims += victims.iter().filter(|v| t.insert_epoch(**v) == 0).count();
        }
        let frac = old_victims as f64 / (rounds * 40) as f64;
        // lapse(6) ≈ 0.9975 vs lapse(5) ≈ 0.9933: a slight bias only —
        // deep ages saturate, like human memory.
        assert!(frac > 0.5, "older cohort fraction {frac}");
    }

    #[test]
    fn saturation_means_old_cohorts_look_alike() {
        let p = EbbinghausPolicy::new(1.0, 1.0);
        let a = p.lapse(20.0, 0.0);
        let b = p.lapse(40.0, 0.0);
        assert!((a - b).abs() < 1e-6, "deep past is uniformly foggy");
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = EbbinghausPolicy::default_params();
        let mut rng = SimRng::new(43);
        let _ = run_loop(&mut p, 100, 20, 8, &mut rng);
    }

    #[test]
    fn over_request_returns_all_active() {
        let t = staged_table(10, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = EbbinghausPolicy::default_params();
        let mut rng = SimRng::new(44);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 10);
    }
}
