//! Weighted blends of amnesia policies.
//!
//! §4.4 closes with "better application specific amnesia algorithms is
//! another area for innovative research" — composites are the simplest
//! constructor: e.g. 70 % rot + 30 % fifo keeps hot data while still
//! guaranteeing a sliding horizon.

use std::collections::HashSet;

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{active_rows, clamp_victims, AmnesiaPolicy, PolicyContext};

/// Weighted mixture of sub-policies.
pub struct CompositePolicy {
    parts: Vec<(f64, Box<dyn AmnesiaPolicy>)>,
    total_weight: f64,
}

impl CompositePolicy {
    /// New blend; panics on empty parts or non-positive total weight.
    pub fn new(parts: Vec<(f64, Box<dyn AmnesiaPolicy>)>) -> Self {
        assert!(!parts.is_empty(), "composite needs sub-policies");
        let total_weight: f64 = parts.iter().map(|(w, _)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "composite needs positive weight");
        Self {
            parts,
            total_weight,
        }
    }
}

impl AmnesiaPolicy for CompositePolicy {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        // Multinomial quota assignment.
        let mut quotas = vec![0usize; self.parts.len()];
        for _ in 0..n {
            let mut pick = rng.f64() * self.total_weight;
            let mut chosen = self.parts.len() - 1;
            for (i, (w, _)) in self.parts.iter().enumerate() {
                pick -= w.max(0.0);
                if pick <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            quotas[chosen] += 1;
        }
        // Sub-policies select independently; duplicates are possible and
        // removed, then backfilled uniformly.
        let mut seen: HashSet<RowId> = HashSet::with_capacity(n * 2);
        let mut victims = Vec::with_capacity(n);
        for (i, quota) in quotas.iter().enumerate() {
            if *quota == 0 {
                continue;
            }
            for v in self.parts[i].1.select_victims(ctx, *quota, rng) {
                if seen.insert(v) {
                    victims.push(v);
                }
            }
        }
        if victims.len() < n {
            let pool: Vec<RowId> = active_rows(ctx)
                .into_iter()
                .filter(|r| !seen.contains(r))
                .collect();
            let extra = (n - victims.len()).min(pool.len());
            for i in rng.sample_indices(pool.len(), extra) {
                victims.push(pool[i]);
            }
        }
        victims.truncate(n);
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;
    use crate::policy::{FifoPolicy, UniformPolicy};

    fn blend(w_fifo: f64, w_uniform: f64) -> CompositePolicy {
        CompositePolicy::new(vec![
            (w_fifo, Box::new(FifoPolicy) as Box<dyn AmnesiaPolicy>),
            (w_uniform, Box::new(UniformPolicy)),
        ])
    }

    #[test]
    fn exact_victim_count_despite_overlap() {
        // FIFO and uniform will frequently collide on the oldest rows;
        // the composite must still deliver exactly n victims.
        let t = staged_table(100, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = blend(0.5, 0.5);
        let mut rng = SimRng::new(30);
        for n in [1usize, 10, 50, 99] {
            let victims = p.select_victims(&ctx, n, &mut rng);
            assert_victims_valid(&t, &victims, n);
        }
    }

    #[test]
    fn pure_fifo_weight_behaves_like_fifo() {
        let t = staged_table(50, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = blend(1.0, 0.0);
        let mut rng = SimRng::new(31);
        let victims = p.select_victims(&ctx, 10, &mut rng);
        let expected: Vec<RowId> = (0..10).map(RowId).collect();
        assert_eq!(victims, expected);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = blend(0.3, 0.7);
        let mut rng = SimRng::new(32);
        let _ = run_loop(&mut p, 80, 20, 6, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weights_rejected() {
        let _ = CompositePolicy::new(vec![(0.0, Box::new(FifoPolicy) as Box<dyn AmnesiaPolicy>)]);
    }
}
