//! LRU amnesia: least-recently-*used* tuples are forgotten first.
//!
//! Paper §3.1 introduces FIFO through the buffer-management analogy
//! ("much like a FIFO strategy works for buffer management"); LRU is the
//! canonical next step on that axis and separates *recency of use* from
//! rot's *frequency of use* (§3.2). A tuple's recency is the later of its
//! insertion epoch and its last access epoch, so fresh data is not
//! instantly evicted just because no query touched it yet.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Least-recently-used forgetting (deterministic: oldest recency first,
/// ties broken by insertion order).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl AmnesiaPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        _rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let mut by_recency: Vec<(u64, RowId)> = table
            .iter_active()
            .map(|r| {
                let recency = table.insert_epoch(r).max(table.access().last_access(r));
                (recency, r)
            })
            .collect();
        // Stable ordering: recency ascending, then insertion order (RowId).
        by_recency.sort_unstable();
        by_recency.truncate(n);
        by_recency.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn recently_used_rows_survive() {
        let mut t = staged_table(100, 0, 0);
        // Touch rows 50..100 recently (epoch 5).
        for r in 50..100u64 {
            t.access_mut().touch(RowId(r), 5);
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 6,
        };
        let mut p = LruPolicy;
        let mut rng = SimRng::new(60);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        assert!(
            victims.iter().all(|v| v.as_usize() < 50),
            "only untouched rows may be evicted"
        );
    }

    #[test]
    fn insertion_counts_as_use() {
        // Epoch-2 rows were never queried but are newer than epoch-0 rows
        // that were queried at epoch 1: the epoch-0 rows are still more
        // recent (accessed at 1 < inserted at 2 — wait, 1 < 2), so the
        // *old queried* rows go first.
        let mut t = staged_table(10, 10, 2); // epochs 0,1,2
        for r in 0..10u64 {
            t.access_mut().touch(RowId(r), 1); // old rows used at epoch 1
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 3,
        };
        let mut p = LruPolicy;
        let mut rng = SimRng::new(61);
        let victims = p.select_victims(&ctx, 10, &mut rng);
        assert_victims_valid(&t, &victims, 10);
        // recency: epoch0 rows = 1, epoch1 rows = 1, epoch2 rows = 2.
        // Ties broken by insertion order → epoch0 rows evicted first.
        assert!(victims.iter().all(|v| t.insert_epoch(*v) == 0));
    }

    #[test]
    fn degenerates_to_fifo_without_accesses() {
        let t = staged_table(30, 10, 2);
        let ctx = PolicyContext {
            table: &t,
            epoch: 3,
        };
        let mut p = LruPolicy;
        let mut rng = SimRng::new(62);
        let victims = p.select_victims(&ctx, 5, &mut rng);
        let expected: Vec<RowId> = (0..5).map(RowId).collect();
        assert_eq!(victims, expected, "no accesses ⇒ insertion order");
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = LruPolicy;
        let mut rng = SimRng::new(63);
        let _ = run_loop(&mut p, 80, 20, 6, &mut rng);
    }
}
