//! Anterograde amnesia (§3.1): new memories don't stick.
//!
//! "In anterograde amnesia, one can not accumulate new memories easily. We
//! implement this kind of amnesia by choosing randomly mostly recently
//! added tuples to be forgotten. This strategy prioritizes historical
//! data, and a new piece of information is only remembered if it appears
//! too often."
//!
//! Victims are drawn *without replacement* with weight `(epoch + 1)^bias`:
//! recent tuples carry the highest weight, the initial load (epoch 0) the
//! lowest. Two forces shape the retention map of Figure 1: recent batches
//! are hit hardest *per round*, but old update batches have been exposed
//! to more rounds — so the initial data survives, the oldest updates form
//! the deepest "black hole", and the newest updates are only partially
//! forgotten ("if we were to continue the update batches, the black hole
//! would increase to include more recent updates").

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{active_rows, clamp_victims, AmnesiaPolicy, PolicyContext};

/// Recency-weighted random forgetting.
#[derive(Debug, Clone, Copy)]
pub struct AnterogradePolicy {
    bias: f64,
}

impl AnterogradePolicy {
    /// `bias` ≥ 0 is the exponent on `epoch + 1`; 0 degenerates to
    /// uniform.
    pub fn new(bias: f64) -> Self {
        assert!(bias >= 0.0, "bias must be non-negative");
        Self { bias }
    }
}

impl AmnesiaPolicy for AnterogradePolicy {
    fn name(&self) -> &'static str {
        "ante"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let ids = active_rows(ctx);
        let weights: Vec<f64> = ids
            .iter()
            .map(|&r| ((ctx.table.insert_epoch(r) + 1) as f64).powf(self.bias))
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn initial_load_is_retained() {
        let mut p = AnterogradePolicy::new(3.0);
        let mut rng = SimRng::new(6);
        let t = run_loop(&mut p, 500, 100, 10, &mut rng);
        let retention = retention_by_epoch(&t, 10);
        assert!(
            retention[0] > 0.8,
            "epoch 0 should be mostly retained, got {}",
            retention[0]
        );
        // Updates are largely forgotten.
        for (e, &r) in retention.iter().enumerate().take(10).skip(1) {
            assert!(r < 0.5, "update epoch {e} retention {r} too high");
        }
    }

    #[test]
    fn black_hole_starts_at_the_oldest_updates() {
        let mut p = AnterogradePolicy::new(3.0);
        let mut rng = SimRng::new(7);
        let t = run_loop(&mut p, 1000, 200, 10, &mut rng);
        let retention = retention_by_epoch(&t, 10);
        // More exposure rounds dominate: old updates darker than new ones.
        let old_updates = (retention[1] + retention[2] + retention[3]) / 3.0;
        let new_updates = (retention[8] + retention[9] + retention[10]) / 3.0;
        assert!(
            new_updates > old_updates,
            "new {new_updates} should exceed old {old_updates}"
        );
    }

    #[test]
    fn zero_bias_degenerates_to_uniform_like_behaviour() {
        let mut p = AnterogradePolicy::new(0.0);
        let mut rng = SimRng::new(8);
        let t = run_loop(&mut p, 500, 100, 5, &mut rng);
        let retention = retention_by_epoch(&t, 5);
        // Epoch 0 is NOT specially protected anymore.
        assert!(retention[0] < 0.9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bias_rejected() {
        AnterogradePolicy::new(-1.0);
    }
}
