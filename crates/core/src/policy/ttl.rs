//! TTL amnesia: privacy-mandated expiry.
//!
//! Paper §1: "observations that are constrained by a Data Privacy Act
//! should be forgotten within the legally defined time frame." Rows whose
//! age exceeds `max_age` batches are *guaranteed* to be selected before
//! any younger row, oldest first; if the budget demands more victims than
//! have expired, the remainder is drawn uniformly from the young.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Age-based mandatory expiry.
#[derive(Debug, Clone, Copy)]
pub struct TtlPolicy {
    max_age: u64,
}

impl TtlPolicy {
    /// Rows older than `max_age` batches expire.
    pub fn new(max_age: u64) -> Self {
        Self { max_age }
    }

    /// Rows whose age strictly exceeds the TTL at `epoch`.
    pub fn expired(&self, ctx: &PolicyContext<'_>) -> Vec<RowId> {
        ctx.table
            .iter_active()
            .filter(|&r| ctx.epoch.saturating_sub(ctx.table.insert_epoch(r)) > self.max_age)
            .collect()
    }
}

impl AmnesiaPolicy for TtlPolicy {
    fn name(&self) -> &'static str {
        "ttl"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        // iter_active yields insertion order, so `expired` is oldest-first.
        let mut victims = self.expired(ctx);
        if victims.len() >= n {
            victims.truncate(n);
            return victims;
        }
        // Fill the shortfall uniformly from the non-expired young.
        let taken: std::collections::HashSet<RowId> = victims.iter().copied().collect();
        let young: Vec<RowId> = ctx
            .table
            .iter_active()
            .filter(|r| !taken.contains(r))
            .collect();
        let extra = n - victims.len();
        for i in rng.sample_indices(young.len(), extra.min(young.len())) {
            victims.push(young[i]);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn expired_rows_go_first_oldest_first() {
        // epochs: 0 (100 rows), 1..=3 (10 rows each); at epoch 3 with
        // max_age 1, epochs 0 and 1 are expired.
        let t = staged_table(100, 10, 3);
        let ctx = PolicyContext {
            table: &t,
            epoch: 3,
        };
        let mut p = TtlPolicy::new(1);
        let mut rng = SimRng::new(19);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        // All 50 victims come from epoch 0 (the oldest expired rows).
        assert!(victims.iter().all(|v| t.insert_epoch(*v) == 0));
        // And they are the *first* 50 rows.
        assert_eq!(victims[0], RowId(0));
        assert_eq!(victims[49], RowId(49));
    }

    #[test]
    fn shortfall_filled_uniformly_from_young() {
        let t = staged_table(10, 100, 1);
        let ctx = PolicyContext {
            table: &t,
            epoch: 2,
        };
        let mut p = TtlPolicy::new(1); // only epoch 0 (age 2) expired
        let mut rng = SimRng::new(20);
        let victims = p.select_victims(&ctx, 40, &mut rng);
        assert_victims_valid(&t, &victims, 40);
        let expired = victims.iter().filter(|v| t.insert_epoch(**v) == 0).count();
        assert_eq!(expired, 10, "all expired rows must be included");
    }

    #[test]
    fn nothing_expired_degenerates_to_uniform() {
        let t = staged_table(100, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 0,
        };
        let mut p = TtlPolicy::new(10);
        let mut rng = SimRng::new(21);
        let victims = p.select_victims(&ctx, 25, &mut rng);
        assert_victims_valid(&t, &victims, 25);
    }

    #[test]
    fn budget_loop_drains_expired_rows_oldest_first() {
        let mut p = TtlPolicy::new(2);
        let mut rng = SimRng::new(22);
        let t = run_loop(&mut p, 100, 25, 8, &mut rng);
        // The budget (25 victims/batch) caps the drain rate, so a backlog
        // of at most one batch's worth of expired rows can persist; it
        // must never grow beyond that steady state.
        let over_age: Vec<RowId> = t
            .iter_active()
            .filter(|&r| 8u64.saturating_sub(t.insert_epoch(r)) > 2)
            .collect();
        assert!(
            over_age.len() <= 25,
            "expired backlog {} exceeds one batch",
            over_age.len()
        );
        // Oldest-first drain: every surviving expired row is younger than
        // (or same epoch as) every *forgotten* expired row's epoch ceiling.
        if let Some(min_active_expired) = over_age.iter().map(|r| t.insert_epoch(*r)).min() {
            // No active expired row should be older than epoch 4 after 8
            // batches of oldest-first draining (epochs 0..=3 are fully
            // drained: 100 + 25×3 rows < 25×8 victims… minus the uniform
            // fallback burned in batches 1-2, leaving at most epoch ≥ 3).
            assert!(
                min_active_expired >= 3,
                "oldest surviving expired row from epoch {min_active_expired}"
            );
        }
    }
}
