//! Learned interest-decay amnesia (paper §5).
//!
//! "It is conceivable that modern AI learning techniques can provide
//! hooks to improve the amnesia algorithms." This policy is the smallest
//! such hook: an online learner that predicts *future* interest in a
//! tuple as an exponentially-weighted moving average of its *recent*
//! access increments.
//!
//! The distinction from [`RotPolicy`](super::RotPolicy) matters: rot
//! weighs victims by cumulative lifetime frequency, so a tuple that was
//! hot long ago is protected forever. The decay learner forgets that
//! tuple as soon as the interest stops — its score halves every
//! `ln(2)/alpha`-ish rounds without new hits.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// EWMA-of-interest policy: victims are the rows whose *learned* interest
/// score is lowest (inverse-score weighted sampling), with an
/// anterograde guard protecting rows younger than `protect_age`.
#[derive(Debug, Clone)]
pub struct DecayPolicy {
    alpha: f64,
    protect_age: u64,
    /// Learned interest per physical row.
    score: Vec<f64>,
    /// Cumulative frequency seen at the previous round (to derive the
    /// per-round increment from the table's monotone counters).
    seen_freq: Vec<f64>,
}

impl DecayPolicy {
    /// New learner. `alpha ∈ (0, 1]` is the EWMA smoothing factor (1.0 =
    /// only the latest round counts); rows younger than `protect_age`
    /// batches are exempt while older candidates exist.
    pub fn new(alpha: f64, protect_age: u64) -> Self {
        Self {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            protect_age,
            score: Vec::new(),
            seen_freq: Vec::new(),
        }
    }

    /// Defaults used by the RECALL experiment: half-life ≈ 1.3 rounds,
    /// newest batch protected.
    pub fn default_params() -> Self {
        Self::new(0.4, 1)
    }

    /// Learned interest score of a row (test / introspection hook).
    pub fn score(&self, row: RowId) -> f64 {
        self.score.get(row.as_usize()).copied().unwrap_or(0.0)
    }

    /// Fold the newest access increments into the learned scores.
    fn learn(&mut self, ctx: &PolicyContext<'_>) {
        let n = ctx.table.num_rows();
        self.score.resize(n, 0.0);
        self.seen_freq.resize(n, 0.0);
        let freqs = ctx.table.access().frequencies();
        for (i, &f) in freqs.iter().enumerate() {
            let delta = (f - self.seen_freq[i]).max(0.0);
            self.score[i] = self.alpha * delta + (1.0 - self.alpha) * self.score[i];
            self.seen_freq[i] = f;
        }
    }
}

impl AmnesiaPolicy for DecayPolicy {
    fn name(&self) -> &'static str {
        "decay"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        self.learn(ctx);
        let table = ctx.table;
        let mut ids: Vec<RowId> = table
            .iter_active()
            .filter(|&r| ctx.epoch.saturating_sub(table.insert_epoch(r)) >= self.protect_age)
            .collect();
        if ids.len() < n {
            // The guard must yield when the budget demands victims.
            ids = table.active_row_ids();
        }
        let weights: Vec<f64> = ids
            .iter()
            .map(|&r| 1.0 / (1.0 + self.score[r.as_usize()]))
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    /// Touch rows `[lo, hi)` `hits` times at `epoch`.
    fn touch_range(t: &mut amnesia_columnar::Table, lo: u64, hi: u64, hits: usize, epoch: u64) {
        for r in lo..hi {
            for _ in 0..hits {
                t.access_mut().touch(RowId(r), epoch);
            }
        }
    }

    #[test]
    fn recent_interest_protects() {
        let mut t = staged_table(200, 0, 0);
        touch_range(&mut t, 0, 100, 10, 4);
        let ctx = PolicyContext {
            table: &t,
            epoch: 5,
        };
        let mut p = DecayPolicy::new(0.5, 0);
        let mut rng = SimRng::new(51);
        let victims = p.select_victims(&ctx, 80, &mut rng);
        assert_victims_valid(&t, &victims, 80);
        let hot_victims = victims.iter().filter(|v| v.as_usize() < 100).count();
        assert!(hot_victims < 25, "recently-hot victims {hot_victims}");
    }

    #[test]
    fn interest_that_stopped_fades_where_rot_would_protect_forever() {
        let mut t = staged_table(200, 0, 0);
        let mut p = DecayPolicy::new(0.9, 0);
        let mut rng = SimRng::new(52);
        // Round 1: rows 0..100 are hot. The learner sees the spike.
        touch_range(&mut t, 0, 100, 10, 1);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let _ = p.select_victims(&ctx, 1, &mut rng);
        assert!(p.score(RowId(0)) > 5.0, "spike learned");
        // Rounds 2..6: interest moves to rows 100..200.
        for e in 2..=6u64 {
            touch_range(&mut t, 100, 200, 10, e);
            let ctx = PolicyContext {
                table: &t,
                epoch: e,
            };
            let _ = p.select_victims(&ctx, 1, &mut rng);
        }
        // The stale cohort's score decayed away; the fresh cohort's holds.
        assert!(p.score(RowId(0)) < 0.1, "stale score {}", p.score(RowId(0)));
        assert!(
            p.score(RowId(150)) > 5.0,
            "fresh score {}",
            p.score(RowId(150))
        );
        // Victims now lean clearly toward the formerly-hot cohort —
        // cumulative frequency (what rot uses) is identical for both, so
        // rot could not tell them apart at all.
        let ctx = PolicyContext {
            table: &t,
            epoch: 7,
        };
        let victims = p.select_victims(&ctx, 80, &mut rng);
        let stale_victims = victims.iter().filter(|v| v.as_usize() < 100).count();
        let fresh_victims = victims.len() - stale_victims;
        assert!(
            stale_victims as f64 > 1.2 * fresh_victims as f64,
            "stale {stale_victims} vs fresh {fresh_victims}"
        );
    }

    #[test]
    fn protect_age_guards_the_young() {
        let t = staged_table(100, 100, 1);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = DecayPolicy::new(0.5, 1);
        let mut rng = SimRng::new(53);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        assert!(
            victims.iter().all(|v| t.insert_epoch(*v) == 0),
            "epoch-1 rows are protected at epoch 1"
        );
    }

    #[test]
    fn guard_relaxes_when_budget_demands() {
        let t = staged_table(10, 100, 1);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = DecayPolicy::new(0.5, 5);
        let mut rng = SimRng::new(54);
        let victims = p.select_victims(&ctx, 60, &mut rng);
        assert_victims_valid(&t, &victims, 60);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = DecayPolicy::default_params();
        let mut rng = SimRng::new(55);
        let _ = run_loop(&mut p, 100, 20, 8, &mut rng);
    }

    #[test]
    fn alpha_is_clamped_to_a_sane_range() {
        let p = DecayPolicy::new(7.0, 0);
        assert!(p.alpha <= 1.0);
        let p = DecayPolicy::new(-3.0, 0);
        assert!(p.alpha > 0.0);
    }
}
