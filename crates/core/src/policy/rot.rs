//! Query-based rot (§3.2): rarely-used data rots first.
//!
//! "A tuple that appears often in a query result might be considered more
//! important and should not be forgotten easily … tuples are forgotten
//! with probability analogous to their frequency. Care should be taken not
//! to drop most recently added tuples … we use a high water mark approach,
//! where tuples are forgotten when they are not frequently accessed but
//! also been part of the database long enough."

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Inverse-frequency forgetting with a minimum-age high-water mark.
#[derive(Debug, Clone, Copy)]
pub struct RotPolicy {
    high_water_age: u64,
}

impl RotPolicy {
    /// Rows younger than `high_water_age` batches are protected.
    pub fn new(high_water_age: u64) -> Self {
        Self { high_water_age }
    }
}

impl AmnesiaPolicy for RotPolicy {
    fn name(&self) -> &'static str {
        "rot"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        // Candidates: active rows old enough to rot.
        let mut ids: Vec<RowId> = table
            .iter_active()
            .filter(|&r| ctx.epoch.saturating_sub(table.insert_epoch(r)) >= self.high_water_age)
            .collect();
        if ids.len() < n {
            // Not enough aged rows: the budget still must hold, so the
            // high-water mark relaxes to the whole active set.
            ids = table.active_row_ids();
        }
        let weights: Vec<f64> = ids
            .iter()
            .map(|&r| 1.0 / (1.0 + table.access().frequency(r)))
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn hot_rows_survive_cold_rows_rot() {
        let mut t = staged_table(200, 0, 0);
        // Rows 0..100 are "hot": heavily accessed.
        for r in 0..100u64 {
            for _ in 0..50 {
                t.access_mut().touch(RowId(r), 1);
            }
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 5,
        };
        let mut p = RotPolicy::new(1);
        let mut rng = SimRng::new(9);
        let victims = p.select_victims(&ctx, 100, &mut rng);
        assert_victims_valid(&t, &victims, 100);
        let hot_victims = victims.iter().filter(|v| v.as_usize() < 100).count();
        // Hot rows have weight 1/51 vs 1 for cold: nearly all victims cold.
        assert!(hot_victims < 15, "hot victims {hot_victims}");
    }

    #[test]
    fn high_water_mark_protects_the_young() {
        let t = staged_table(100, 100, 1); // epoch 0 old, epoch 1 fresh
                                           // At epoch 2, epoch-0 rows have age 2 (rot-eligible) while
                                           // epoch-1 rows have age 1 < 2: protected.
        let ctx = PolicyContext {
            table: &t,
            epoch: 2,
        };
        let mut p = RotPolicy::new(2);
        let mut rng = SimRng::new(10);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        assert!(
            victims.iter().all(|v| t.insert_epoch(*v) == 0),
            "only aged rows may rot"
        );
    }

    #[test]
    fn high_water_mark_relaxes_when_budget_demands() {
        let t = staged_table(10, 100, 1);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = RotPolicy::new(5); // nothing is old enough
        let mut rng = SimRng::new(11);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        // Must still deliver the budget.
        assert_victims_valid(&t, &victims, 50);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = RotPolicy::new(1);
        let mut rng = SimRng::new(12);
        let _ = run_loop(&mut p, 100, 20, 8, &mut rng);
    }
}
