//! Amnesia policies: who gets forgotten.
//!
//! Paper §3 frames amnesia as "a controlled random process" plus "the
//! effects of learning which tuples are of interest". Every policy
//! implements [`AmnesiaPolicy::select_victims`]: given the table state and
//! a victim count `n`, return `n` distinct *active* rows to forget (or all
//! active rows when fewer than `n` remain).
//!
//! | name | paper | bias |
//! |---|---|---|
//! | [`FifoPolicy`] | §3.1 | retrograde: oldest rows go first (sliding buffer) |
//! | [`UniformPolicy`] | §3.1 | reservoir-style uniform choice |
//! | [`AnterogradePolicy`] | §3.1 | recent rows forgotten preferentially |
//! | [`RotPolicy`] | §3.2 | rarely-accessed rows past a high-water age |
//! | [`OverusePolicy`] | §3.2 | *most*-accessed rows ("already consumed") |
//! | [`LruPolicy`] | §3.1 analogy | least-recently-used rows (buffer recency) |
//! | [`AreaPolicy`] | §3.3 | spatial mold: holes grow in row space |
//! | [`TtlPolicy`] | §1 | privacy: rows older than a legal age expire |
//! | [`PairPolicy`] | §4.4 | forget antipodal pairs, preserving AVG |
//! | [`AlignedPolicy`] | §4.4 | keep active values distributed like history |
//! | [`CostBasedPolicy`] | §4.4 | ditch tuples that blow up processing cost |
//! | [`EbbinghausPolicy`] | §5 | human forgetting curve, rehearsal-strengthened |
//! | [`DecayPolicy`] | §5 | learned EWMA interest: stale hotness fades |
//! | [`CompositePolicy`] | — | weighted blend of the above |

mod aligned;
mod anterograde;
mod area;
mod composite;
mod cost_based;
mod decay;
mod ebbinghaus;
mod fifo;
mod lru;
mod overuse;
mod pair;
mod rot;
mod ttl;
mod uniform;

pub use aligned::AlignedPolicy;
pub use anterograde::AnterogradePolicy;
pub use area::AreaPolicy;
pub use composite::CompositePolicy;
pub use cost_based::CostBasedPolicy;
pub use decay::DecayPolicy;
pub use ebbinghaus::EbbinghausPolicy;
pub use fifo::FifoPolicy;
pub use lru::LruPolicy;
pub use overuse::OverusePolicy;
pub use pair::PairPolicy;
pub use rot::RotPolicy;
pub use ttl::TtlPolicy;
pub use uniform::UniformPolicy;

use amnesia_columnar::{Epoch, RowId, Table};
use amnesia_util::SimRng;
use serde::{Deserialize, Serialize};

/// Everything a policy may look at when choosing victims.
///
/// Policies see the *table* (values, activity, insertion epochs, access
/// frequencies) — never the ground truth the metrics use; amnesia has "no
/// reference to the original and complete view of information" (paper §5).
pub struct PolicyContext<'a> {
    /// The amnesiac table.
    pub table: &'a Table,
    /// Current batch number (victims are forgotten at this epoch).
    pub epoch: Epoch,
}

/// An amnesia algorithm.
pub trait AmnesiaPolicy: Send {
    /// Stable short name ("fifo", "uniform", "ante", "rot", "area", …).
    fn name(&self) -> &'static str;

    /// Choose up to `n` distinct active rows to forget.
    ///
    /// Implementations must only return active rows and must not return
    /// duplicates; when fewer than `n` rows are active they return all of
    /// them.
    fn select_victims(&mut self, ctx: &PolicyContext<'_>, n: usize, rng: &mut SimRng)
        -> Vec<RowId>;

    /// Choose up to `max_blocks` *frozen tier blocks* as whole-block
    /// forget candidates — the block-granular amnesia decision layered on
    /// tiered storage: forgetting an entire block lets the store drop its
    /// compressed payload outright
    /// (`AmnesiacStore::forget_block`), reclaiming bytes without moving a
    /// row id.
    ///
    /// The default ranks blocks by the cached meta's remaining active
    /// count (fewest survivors first — the cheapest information loss per
    /// byte reclaimed), breaking ties toward older blocks. Policies with
    /// a stronger opinion (e.g. strict FIFO age) may override.
    fn select_victim_blocks(
        &mut self,
        ctx: &PolicyContext<'_>,
        max_blocks: usize,
        _rng: &mut SimRng,
    ) -> Vec<usize> {
        if ctx.table.schema().arity() == 0 {
            return Vec::new();
        }
        let tier = ctx.table.col_tier(0);
        let mut candidates: Vec<(usize, usize)> = (0..tier.frozen_blocks())
            .filter_map(|b| {
                let meta = tier.meta(b);
                (meta.active > 0).then_some((meta.active, b))
            })
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .take(max_blocks)
            .map(|(_, b)| b)
            .collect()
    }
}

/// Serializable recipe for an [`AmnesiaPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Sliding window over arrival order (§3.1).
    Fifo,
    /// Uniform random victims (§3.1, reservoir-sampling flavour).
    Uniform,
    /// Anterograde: victim weight grows with insertion epoch, so new data
    /// struggles to be remembered (§3.1). `bias` is the exponent on
    /// `epoch + 1` (the paper does not fix it; 3.0 reproduces the Figure 1
    /// narrative: epoch 0 retained, oldest updates darkest).
    Anterograde {
        /// Recency-bias exponent (≥ 0; 0 degenerates to uniform).
        bias: f64,
    },
    /// Query-based rot: forget rarely-accessed rows that have been in the
    /// database at least `high_water_age` batches (§3.2).
    Rot {
        /// Minimum age in batches before a row may rot.
        high_water_age: u64,
    },
    /// Forget the *most* frequently accessed rows (§3.2's opposite
    /// policy).
    Overuse,
    /// Least-recently-used forgetting: buffer-management recency, the
    /// natural companion to §3.1's FIFO analogy.
    Lru,
    /// Spatial mold areas over the row space (§3.3).
    Area,
    /// Privacy-driven expiry: rows older than `max_age` batches must go
    /// (§1's Data Privacy Act deadline), oldest first; falls back to
    /// uniform when nothing has expired.
    Ttl {
        /// Maximum age in batches.
        max_age: u64,
    },
    /// Average-preserving antipodal pair forgetting (§4.4).
    Pair,
    /// Distribution-aligned forgetting: keep the active histogram close to
    /// the all-history histogram (§4.4).
    Aligned {
        /// Number of histogram bins.
        bins: usize,
    },
    /// Cost-based forgetting (§4.4): shed tuples from over-dense,
    /// frequently-hit value regions — the ones that blow up intermediate
    /// result sizes.
    CostBased {
        /// Histogram buckets over the active value range.
        bins: usize,
        /// Density exponent (0 = pure frequency weighting).
        gamma: f64,
    },
    /// Ebbinghaus human forgetting curve (§5 refs [2, 6]): victim weight
    /// is the memory-lapse probability `1 − exp(−age/strength)`;
    /// rehearsals (query hits) raise the strength.
    Ebbinghaus {
        /// Strength `S₀` in batches of a never-rehearsed memory.
        base_strength: f64,
        /// Per-access strength increment factor.
        rehearsal_boost: f64,
    },
    /// Learned interest decay (§5 "AI learning techniques … hooks"):
    /// EWMA of per-batch access increments; tuples whose interest
    /// *stopped* are forgotten even if they were hot once.
    Decay {
        /// EWMA smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Rows younger than this many batches are protected.
        protect_age: u64,
    },
    /// Weighted blend: each victim slot is assigned to a sub-policy with
    /// probability proportional to its weight.
    Composite(
        /// `(weight, recipe)` pairs.
        Vec<(f64, PolicyKind)>,
    ),
}

impl PolicyKind {
    /// The five policies evaluated in the paper's figures, in the order
    /// the legends list them.
    pub fn paper_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fifo,
            PolicyKind::Uniform,
            PolicyKind::Anterograde { bias: 3.0 },
            PolicyKind::Rot { high_water_age: 2 },
            PolicyKind::Area,
        ]
    }

    /// The Figure-1 subset (all except rot — "Figure 1 illustrates … all
    /// amnesia algorithms except the rot amnesia").
    pub fn fig1_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fifo,
            PolicyKind::Uniform,
            PolicyKind::Anterograde { bias: 3.0 },
            PolicyKind::Area,
        ]
    }

    /// The RECALL experiment set: the paper's two baselines, its
    /// query-based rot, and the three §4.4/§5 research-vista policies
    /// this reproduction adds.
    pub fn learning_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fifo,
            PolicyKind::Uniform,
            PolicyKind::Rot { high_water_age: 2 },
            PolicyKind::Ebbinghaus {
                base_strength: 1.0,
                rehearsal_boost: 1.0,
            },
            PolicyKind::Decay {
                alpha: 0.4,
                protect_age: 1,
            },
            PolicyKind::CostBased {
                bins: 64,
                gamma: 1.0,
            },
        ]
    }

    /// Build the live policy.
    pub fn build(&self) -> Box<dyn AmnesiaPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy),
            PolicyKind::Uniform => Box::new(UniformPolicy),
            PolicyKind::Anterograde { bias } => Box::new(AnterogradePolicy::new(*bias)),
            PolicyKind::Rot { high_water_age } => Box::new(RotPolicy::new(*high_water_age)),
            PolicyKind::Overuse => Box::new(OverusePolicy),
            PolicyKind::Lru => Box::new(LruPolicy),
            PolicyKind::Area => Box::new(AreaPolicy::new()),
            PolicyKind::Ttl { max_age } => Box::new(TtlPolicy::new(*max_age)),
            PolicyKind::Pair => Box::new(PairPolicy),
            PolicyKind::Aligned { bins } => Box::new(AlignedPolicy::new(*bins)),
            PolicyKind::CostBased { bins, gamma } => Box::new(CostBasedPolicy::new(*bins, *gamma)),
            PolicyKind::Ebbinghaus {
                base_strength,
                rehearsal_boost,
            } => Box::new(EbbinghausPolicy::new(*base_strength, *rehearsal_boost)),
            PolicyKind::Decay { alpha, protect_age } => {
                Box::new(DecayPolicy::new(*alpha, *protect_age))
            }
            PolicyKind::Composite(parts) => Box::new(CompositePolicy::new(
                parts.iter().map(|(w, k)| (*w, k.build())).collect(),
            )),
        }
    }

    /// Stable short name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Uniform => "uniform",
            PolicyKind::Anterograde { .. } => "ante",
            PolicyKind::Rot { .. } => "rot",
            PolicyKind::Overuse => "overuse",
            PolicyKind::Lru => "lru",
            PolicyKind::Area => "area",
            PolicyKind::Ttl { .. } => "ttl",
            PolicyKind::Pair => "pair",
            PolicyKind::Aligned { .. } => "aligned",
            PolicyKind::CostBased { .. } => "cost",
            PolicyKind::Ebbinghaus { .. } => "ebbinghaus",
            PolicyKind::Decay { .. } => "decay",
            PolicyKind::Composite(_) => "composite",
        }
    }
}

/// Shared helper: all active rows as a vector (insertion order).
pub(crate) fn active_rows(ctx: &PolicyContext<'_>) -> Vec<RowId> {
    ctx.table.active_row_ids()
}

/// Shared helper: clamp a victim request to the active population.
pub(crate) fn clamp_victims(ctx: &PolicyContext<'_>, n: usize) -> usize {
    n.min(ctx.table.active_rows())
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Helpers for policy unit tests.

    use super::*;
    use amnesia_columnar::Schema;

    /// Build a table with `initial` values at epoch 0 and `per_batch`
    /// values for each subsequent epoch (serial values).
    pub fn staged_table(initial: usize, per_batch: usize, batches: u64) -> Table {
        let mut t = Table::new(Schema::single("a"));
        let mut next = 0i64;
        let vals: Vec<i64> = (0..initial as i64).map(|i| next + i).collect();
        next += initial as i64;
        t.insert_batch(&vals, 0).unwrap();
        for b in 1..=batches {
            let vals: Vec<i64> = (0..per_batch as i64).map(|i| next + i).collect();
            next += per_batch as i64;
            t.insert_batch(&vals, b).unwrap();
        }
        t
    }

    /// Assert the victim contract: distinct, active, correct count.
    pub fn assert_victims_valid(table: &Table, victims: &[RowId], expected: usize) {
        assert_eq!(victims.len(), expected, "victim count");
        let mut seen = std::collections::HashSet::new();
        for &v in victims {
            assert!(table.activity().is_active(v), "victim {v} not active");
            assert!(seen.insert(v), "duplicate victim {v}");
        }
    }

    /// Run a miniature fixed-size amnesia loop and return the table.
    pub fn run_loop(
        policy: &mut dyn AmnesiaPolicy,
        initial: usize,
        per_batch: usize,
        batches: u64,
        rng: &mut SimRng,
    ) -> Table {
        let mut t = Table::new(Schema::single("a"));
        let mut next = 0i64;
        let vals: Vec<i64> = (0..initial as i64).collect();
        next += initial as i64;
        t.insert_batch(&vals, 0).unwrap();
        for b in 1..=batches {
            let vals: Vec<i64> = (0..per_batch as i64).map(|i| next + i).collect();
            next += per_batch as i64;
            t.insert_batch(&vals, b).unwrap();
            let need = t.active_rows().saturating_sub(initial);
            let victims = {
                let ctx = PolicyContext {
                    table: &t,
                    epoch: b,
                };
                policy.select_victims(&ctx, need, rng)
            };
            assert_victims_valid(&t, &victims, need.min(t.active_rows()));
            for v in victims {
                t.forget(v, b).unwrap();
            }
            assert_eq!(t.active_rows(), initial, "budget must hold");
        }
        t
    }

    /// Active fraction per insertion epoch.
    pub fn retention_by_epoch(table: &Table, batches: u64) -> Vec<f64> {
        let mut total = vec![0usize; batches as usize + 1];
        let mut active = vec![0usize; batches as usize + 1];
        for r in 0..table.num_rows() {
            let id = RowId::from(r);
            let e = table.insert_epoch(id) as usize;
            total[e] += 1;
            if table.activity().is_active(id) {
                active[e] += 1;
            }
        }
        total
            .iter()
            .zip(&active)
            .map(|(&t, &a)| if t == 0 { 0.0 } else { a as f64 / t as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_figure_legends() {
        let names: Vec<&str> = PolicyKind::paper_set().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["fifo", "uniform", "ante", "rot", "area"]);
        let fig1: Vec<&str> = PolicyKind::fig1_set().iter().map(|p| p.name()).collect();
        assert_eq!(fig1, vec!["fifo", "uniform", "ante", "area"]);
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in PolicyKind::paper_set() {
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PolicyKind::Overuse.build().name(), "overuse");
        assert_eq!(PolicyKind::Lru.build().name(), "lru");
        assert_eq!(PolicyKind::Ttl { max_age: 3 }.build().name(), "ttl");
        assert_eq!(PolicyKind::Pair.build().name(), "pair");
        assert_eq!(PolicyKind::Aligned { bins: 10 }.build().name(), "aligned");
        for kind in PolicyKind::learning_set() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn every_policy_honours_the_victim_contract() {
        use testkit::*;
        let mut rng = SimRng::new(99);
        let kinds = vec![
            PolicyKind::Fifo,
            PolicyKind::Uniform,
            PolicyKind::Anterograde { bias: 3.0 },
            PolicyKind::Rot { high_water_age: 1 },
            PolicyKind::Overuse,
            PolicyKind::Lru,
            PolicyKind::Area,
            PolicyKind::Ttl { max_age: 2 },
            PolicyKind::Pair,
            PolicyKind::Aligned { bins: 8 },
            PolicyKind::CostBased {
                bins: 32,
                gamma: 1.0,
            },
            PolicyKind::Ebbinghaus {
                base_strength: 1.0,
                rehearsal_boost: 1.0,
            },
            PolicyKind::Decay {
                alpha: 0.4,
                protect_age: 1,
            },
            PolicyKind::Composite(vec![(0.5, PolicyKind::Fifo), (0.5, PolicyKind::Uniform)]),
        ];
        for kind in kinds {
            let mut policy = kind.build();
            // Loop keeps budget; panics inside run_loop on violations.
            let _ = run_loop(&mut *policy, 50, 10, 5, &mut rng);
            // Over-request: must return everything active, no more.
            let t = staged_table(10, 0, 0);
            let ctx = PolicyContext {
                table: &t,
                epoch: 1,
            };
            let victims = policy.select_victims(&ctx, 100, &mut rng);
            assert_victims_valid(&t, &victims, 10);
        }
    }
}
