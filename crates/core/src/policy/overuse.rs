//! Overuse amnesia (§3.2): forget what has been consumed.
//!
//! "A totally opposite approach would be to forget data that has been used
//! too frequently … no data should continue to appear in a result set, if
//! that data has not been curated, analyzed, or consumed in any other
//! way." Victim weight is the access frequency itself.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{active_rows, clamp_victims, AmnesiaPolicy, PolicyContext};

/// Frequency-proportional forgetting.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverusePolicy;

impl AmnesiaPolicy for OverusePolicy {
    fn name(&self) -> &'static str {
        "overuse"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let ids = active_rows(ctx);
        // +epsilon keeps never-accessed rows selectable so the budget can
        // always be met.
        let weights: Vec<f64> = ids
            .iter()
            .map(|&r| ctx.table.access().frequency(r) + 1e-3)
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn consumed_rows_go_first() {
        let mut t = staged_table(200, 0, 0);
        for r in 0..50u64 {
            for _ in 0..100 {
                t.access_mut().touch(RowId(r), 1);
            }
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 2,
        };
        let mut p = OverusePolicy;
        let mut rng = SimRng::new(13);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 50);
        let consumed = victims.iter().filter(|v| v.as_usize() < 50).count();
        assert!(consumed > 40, "consumed victims {consumed}");
    }

    #[test]
    fn works_with_no_accesses_at_all() {
        let t = staged_table(100, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = OverusePolicy;
        let mut rng = SimRng::new(14);
        let victims = p.select_victims(&ctx, 30, &mut rng);
        assert_victims_valid(&t, &victims, 30);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = OverusePolicy;
        let mut rng = SimRng::new(15);
        let _ = run_loop(&mut p, 100, 25, 6, &mut rng);
    }
}
