//! Spatial (area-based) amnesia (§3.3): mold grows on the database.
//!
//! "Mimic nature more closely using a forgetting algorithm fit with a bias
//! towards areas already infected with mold … keeping a list of areas of
//! forgotten tuples, say K, and set n to a value between 1..K+1. If
//! n = K+1, then we start new mold for a tuple by randomly selecting a new
//! active starting point. Otherwise, we look into the database tiling and
//! extend the n-th area of forgotten tuples in either direction."
//!
//! Areas live in *row space* (physical insertion order), matching the
//! observation that disk errors are spatially correlated. The resulting
//! retention map "resembles a uniform-fifo combination" (Figure 1).

use std::collections::HashSet;

use amnesia_columnar::{RowId, Table};
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Hole-growing forgetting.
#[derive(Debug, Clone, Default)]
pub struct AreaPolicy {
    /// Inclusive `[lo, hi]` row intervals this policy has eaten.
    areas: Vec<(usize, usize)>,
}

impl AreaPolicy {
    /// Fresh policy with no mold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of mold areas (after merging).
    pub fn num_areas(&self) -> usize {
        self.areas.len()
    }

    /// Next active row at/after `from` that is not already chosen.
    fn next_free(table: &Table, from: usize, chosen: &HashSet<RowId>) -> Option<RowId> {
        let mut cur = from;
        while cur < table.num_rows() {
            let r = table.activity().next_active(RowId::from(cur))?;
            if !chosen.contains(&r) {
                return Some(r);
            }
            cur = r.as_usize() + 1;
        }
        None
    }

    /// Previous active row at/before `from` that is not already chosen.
    fn prev_free(table: &Table, from: usize, chosen: &HashSet<RowId>) -> Option<RowId> {
        let mut cur = from as i64;
        while cur >= 0 {
            let r = table.activity().prev_active(RowId::from(cur as usize))?;
            if !chosen.contains(&r) {
                return Some(r);
            }
            if r.as_usize() == 0 {
                return None;
            }
            cur = r.as_usize() as i64 - 1;
        }
        None
    }

    /// A random active row not already chosen.
    fn random_free(table: &Table, chosen: &HashSet<RowId>, rng: &mut SimRng) -> Option<RowId> {
        for _ in 0..32 {
            if let Some(r) = table.random_active(rng) {
                if !chosen.contains(&r) {
                    return Some(r);
                }
            } else {
                return None;
            }
        }
        // Dense fallback: scan from a random start.
        let start = rng.index(table.num_rows().max(1));
        Self::next_free(table, start, chosen).or_else(|| Self::next_free(table, 0, chosen))
    }

    /// Merge overlapping / adjacent areas.
    fn coalesce(&mut self) {
        if self.areas.len() < 2 {
            return;
        }
        self.areas.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.areas.len());
        for &(lo, hi) in &self.areas {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + 1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.areas = merged;
    }
}

impl AmnesiaPolicy for AreaPolicy {
    fn name(&self) -> &'static str {
        "area"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let mut chosen: HashSet<RowId> = HashSet::with_capacity(n * 2);
        let mut victims = Vec::with_capacity(n);

        while victims.len() < n {
            let k = self.areas.len();
            let pick = rng.index(k + 1);
            let victim = if pick == k {
                // Start new mold at a random active point.
                match Self::random_free(table, &chosen, rng) {
                    Some(r) => {
                        self.areas.push((r.as_usize(), r.as_usize()));
                        Some(r)
                    }
                    None => None,
                }
            } else {
                // Extend area `pick` in a random direction.
                let (lo, hi) = self.areas[pick];
                let go_up = rng.chance(0.5);
                let extend = |up: bool, chosen: &HashSet<RowId>| {
                    if up {
                        Self::next_free(table, hi + 1, chosen)
                    } else if lo == 0 {
                        None
                    } else {
                        Self::prev_free(table, lo - 1, chosen)
                    }
                };
                let found = extend(go_up, &chosen).or_else(|| extend(!go_up, &chosen));
                match found {
                    Some(r) => {
                        let area = &mut self.areas[pick];
                        area.0 = area.0.min(r.as_usize());
                        area.1 = area.1.max(r.as_usize());
                        Some(r)
                    }
                    // Area is walled in: seed a new one instead.
                    None => match Self::random_free(table, &chosen, rng) {
                        Some(r) => {
                            self.areas.push((r.as_usize(), r.as_usize()));
                            Some(r)
                        }
                        None => None,
                    },
                }
            };
            match victim {
                Some(r) => {
                    chosen.insert(r);
                    victims.push(r);
                }
                None => break, // nothing active remains
            }
        }
        self.coalesce();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn victims_form_contiguous_holes() {
        let t = staged_table(1000, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = AreaPolicy::new();
        let mut rng = SimRng::new(16);
        let victims = p.select_victims(&ctx, 200, &mut rng);
        assert_victims_valid(&t, &victims, 200);
        // Few areas cover many victims: mold is spatially clustered.
        assert!(
            p.num_areas() < 60,
            "200 victims in {} areas — not clustered",
            p.num_areas()
        );
        // Every victim is inside a recorded area.
        for v in &victims {
            let r = v.as_usize();
            assert!(
                p.areas.iter().any(|&(lo, hi)| lo <= r && r <= hi),
                "victim {r} outside all areas"
            );
        }
    }

    #[test]
    fn areas_merge_when_they_touch() {
        let mut p = AreaPolicy::new();
        p.areas = vec![(0, 5), (6, 10), (20, 30), (25, 40)];
        p.coalesce();
        assert_eq!(p.areas, vec![(0, 10), (20, 40)]);
    }

    #[test]
    fn budget_loop_holds_and_mixes_uniform_and_fifo_character() {
        let mut p = AreaPolicy::new();
        let mut rng = SimRng::new(17);
        let t = run_loop(&mut p, 500, 100, 10, &mut rng);
        let retention = retention_by_epoch(&t, 10);
        // "Naturally, the oldest the data the more holes they will contain,
        // resulting to a fifo effect, but the newer the data the more
        // uniform it will be."
        assert!(
            retention[10] > retention[1],
            "recent {} vs old {}",
            retention[10],
            retention[1]
        );
    }

    #[test]
    fn exhausts_the_table_gracefully() {
        let t = staged_table(20, 0, 0);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = AreaPolicy::new();
        let mut rng = SimRng::new(18);
        let victims = p.select_victims(&ctx, 50, &mut rng);
        assert_victims_valid(&t, &victims, 20);
    }
}
