//! Uniform amnesia (§3.1): victims drawn uniformly from the active set.
//!
//! "After each update batch we uniformly select tuples to be removed. This
//! approach is similar to the reservoir sampling technique [19]. At any
//! round of amnesia, a tuple has the same probability to be forgotten, but
//! older tuples have been a candidate to be forgotten multiple times." The
//! easy-to-understand baseline.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{active_rows, clamp_victims, AmnesiaPolicy, PolicyContext};

/// Uniform random forgetting.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPolicy;

impl AmnesiaPolicy for UniformPolicy {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let ids = active_rows(ctx);
        rng.sample_indices(ids.len(), n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn older_epochs_retain_less() {
        let mut p = UniformPolicy;
        let mut rng = SimRng::new(4);
        let t = run_loop(&mut p, 500, 100, 10, &mut rng);
        let retention = retention_by_epoch(&t, 10);
        // The newest batch had 1 exposure, epoch 1 had 10: retention must
        // increase (statistically) toward recent epochs.
        assert!(
            retention[10] > retention[1] + 0.1,
            "recent {} vs old {}",
            retention[10],
            retention[1]
        );
        // Uniform never zeroes out an epoch as fast as FIFO does.
        assert!(retention[0] > 0.0);
    }

    #[test]
    fn single_round_is_unbiased_across_positions() {
        // Forget 50% once; each half of the table should lose ~half.
        let mut rng = SimRng::new(5);
        let mut front = 0usize;
        for _ in 0..200 {
            let t = staged_table(100, 0, 0);
            let ctx = PolicyContext {
                table: &t,
                epoch: 1,
            };
            let mut p = UniformPolicy;
            let victims = p.select_victims(&ctx, 50, &mut rng);
            front += victims.iter().filter(|v| v.as_usize() < 50).count();
        }
        let frac = front as f64 / (200.0 * 50.0);
        assert!((frac - 0.5).abs() < 0.03, "front fraction {frac}");
    }
}
