//! Average-preserving pair forgetting (§4.4).
//!
//! "The average query could be used to identify pairs of tuples to be
//! forgotten instead of a single one. It would retain the precision as
//! long as possible." — and §1: "you can safely drop two tuples that
//! together do not affect the average measured."
//!
//! Victims are chosen as antipodal pairs around the current active mean:
//! the smallest remaining value paired with the largest. Each pair's sum
//! is close to `2·mean` for roughly symmetric data, so `AVG` barely moves;
//! an odd final victim is the value closest to the mean.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Antipodal-pair forgetting.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairPolicy;

impl AmnesiaPolicy for PairPolicy {
    fn name(&self) -> &'static str {
        "pair"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        _rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let mut by_value: Vec<(i64, RowId)> = table
            .iter_active()
            .map(|r| (table.value(0, r), r))
            .collect();
        by_value.sort_unstable();
        if n >= by_value.len() {
            return by_value.into_iter().map(|(_, r)| r).collect();
        }
        let mean = by_value.iter().map(|&(v, _)| v as f64).sum::<f64>() / by_value.len() as f64;

        let mut victims = Vec::with_capacity(n);
        let mut lo = 0usize;
        let mut hi = by_value.len() - 1;
        while victims.len() + 2 <= n && lo < hi {
            victims.push(by_value[lo].1);
            victims.push(by_value[hi].1);
            lo += 1;
            hi -= 1;
        }
        if victims.len() < n && lo <= hi {
            // Odd remainder: take the remaining value closest to the mean.
            let closest = (lo..=hi)
                .min_by(|&a, &b| {
                    let da = (by_value[a].0 as f64 - mean).abs();
                    let db = (by_value[b].0 as f64 - mean).abs();
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty remainder");
            victims.push(by_value[closest].1);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;
    use amnesia_columnar::{Schema, Table};

    fn symmetric_table(n: i64) -> Table {
        let mut t = Table::new(Schema::single("a"));
        let values: Vec<i64> = (0..n).collect(); // mean (n-1)/2
        t.insert_batch(&values, 0).unwrap();
        t
    }

    fn active_mean(t: &Table) -> f64 {
        let (sum, count) = t.iter_active().fold((0f64, 0usize), |(s, c), r| {
            (s + t.value(0, r) as f64, c + 1)
        });
        sum / count as f64
    }

    #[test]
    fn mean_is_preserved_exactly_on_symmetric_data() {
        let mut t = symmetric_table(1000);
        let before = active_mean(&t);
        let mut p = PairPolicy;
        let mut rng = SimRng::new(23);
        let victims = {
            let ctx = PolicyContext {
                table: &t,
                epoch: 1,
            };
            p.select_victims(&ctx, 200, &mut rng)
        };
        assert_victims_valid(&t, &victims, 200);
        for v in victims {
            t.forget(v, 1).unwrap();
        }
        let after = active_mean(&t);
        assert!(
            (after - before).abs() < 1e-9,
            "mean moved {before} -> {after}"
        );
    }

    #[test]
    fn odd_victim_count_still_tracks_mean() {
        let mut t = symmetric_table(1001);
        let before = active_mean(&t);
        let mut p = PairPolicy;
        let mut rng = SimRng::new(24);
        let victims = {
            let ctx = PolicyContext {
                table: &t,
                epoch: 1,
            };
            p.select_victims(&ctx, 201, &mut rng)
        };
        assert_victims_valid(&t, &victims, 201);
        for v in victims {
            t.forget(v, 1).unwrap();
        }
        let after = active_mean(&t);
        assert!(
            (after - before).abs() < 1.0,
            "mean moved {before} -> {after}"
        );
    }

    #[test]
    fn takes_everything_when_overasked() {
        let t = symmetric_table(10);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = PairPolicy;
        let mut rng = SimRng::new(25);
        let victims = p.select_victims(&ctx, 100, &mut rng);
        assert_victims_valid(&t, &victims, 10);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = PairPolicy;
        let mut rng = SimRng::new(26);
        let _ = run_loop(&mut p, 100, 20, 5, &mut rng);
    }
}
