//! FIFO amnesia (§3.1): the oldest active tuples are forgotten first.
//!
//! "This creates a time-line over which a sliding buffer of size DBSIZE
//! defines the active tuples … Streaming database applications are good
//! examples for this kind of amnesia." The canonical *retrograde* policy.

use amnesia_columnar::RowId;
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Sliding-window forgetting: victims are the oldest active rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl AmnesiaPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        _rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        // Row ids are insertion-ordered, so the first n active rows are
        // exactly the n oldest.
        ctx.table.iter_active().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;

    #[test]
    fn takes_oldest_active() {
        let mut t = staged_table(5, 5, 1); // rows 0-4 epoch 0, rows 5-9 epoch 1
        t.forget(RowId(0), 1).unwrap(); // row 0 already gone
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = FifoPolicy;
        let mut rng = SimRng::new(1);
        let victims = p.select_victims(&ctx, 3, &mut rng);
        assert_eq!(victims, vec![RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn window_survivors_are_the_most_recent() {
        let mut p = FifoPolicy;
        let mut rng = SimRng::new(2);
        // 100 initial, 20 per batch, 10 batches: window should hold the
        // last 100 inserted rows.
        let t = run_loop(&mut p, 100, 20, 10, &mut rng);
        let total = t.num_rows();
        let survivors: Vec<usize> = t.iter_active().map(|r| r.as_usize()).collect();
        let expected: Vec<usize> = (total - 100..total).collect();
        assert_eq!(survivors, expected);
    }

    #[test]
    fn retention_is_a_step_function() {
        let mut p = FifoPolicy;
        let mut rng = SimRng::new(3);
        let t = run_loop(&mut p, 100, 20, 10, &mut rng);
        let retention = retention_by_epoch(&t, 10);
        // 100 survivors = epochs 7..=10 fully active (20 each = 80) plus
        // 20 from epoch 6; everything older fully forgotten.
        assert!(retention[0] < 1e-9);
        assert!(retention[3] < 1e-9);
        assert!((retention[10] - 1.0).abs() < 1e-9);
        assert!((retention[8] - 1.0).abs() < 1e-9);
    }
}
