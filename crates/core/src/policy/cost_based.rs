//! Cost-based amnesia (paper §4.4).
//!
//! "After a query has been executed we know both its interest in the
//! database portion and the cost of the relational algebra components. An
//! alternative is giving preference to ditching tuples that cause an
//! explosion in either processing time or intermediate storage
//! requirements."
//!
//! In the simulator's range-query workload, the tuples that blow up
//! intermediate results are those in *over-dense, frequently-hit* value
//! regions: every range query that crosses such a region drags the whole
//! clump into its result set. The policy therefore weighs victims by the
//! local value-space density of their region (raised to `gamma`), scaled
//! by their access frequency — so the store sheds redundant mass from hot
//! dense clumps while rare values, which carry the most information per
//! byte, survive.

use amnesia_columnar::{RowId, Value};
use amnesia_util::SimRng;

use super::{clamp_victims, AmnesiaPolicy, PolicyContext};

/// Density × frequency weighted forgetting.
#[derive(Debug, Clone, Copy)]
pub struct CostBasedPolicy {
    bins: usize,
    gamma: f64,
}

impl CostBasedPolicy {
    /// New policy with `bins` histogram buckets over the active value
    /// range and density exponent `gamma ≥ 0` (0 disables the density
    /// term, leaving pure frequency weighting).
    pub fn new(bins: usize, gamma: f64) -> Self {
        Self {
            bins: bins.max(1),
            gamma: gamma.max(0.0),
        }
    }

    /// Defaults used by the RECALL experiment.
    pub fn default_params() -> Self {
        Self::new(64, 1.0)
    }
}

/// Equi-width histogram over the active values; returns per-row bin
/// counts normalized by the mean bin occupancy.
fn relative_density(values: &[Value], bins: usize) -> Vec<f64> {
    let (lo, hi) = values
        .iter()
        .fold((Value::MAX, Value::MIN), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if values.is_empty() || lo == hi {
        return vec![1.0; values.len()];
    }
    let span = (hi - lo) as f64;
    let bin_of = |v: Value| -> usize {
        (((v - lo) as f64 / span) * bins as f64)
            .floor()
            .min(bins as f64 - 1.0) as usize
    };
    let mut counts = vec![0usize; bins];
    for &v in values {
        counts[bin_of(v)] += 1;
    }
    let occupied = counts.iter().filter(|&&c| c > 0).count().max(1);
    let mean = values.len() as f64 / occupied as f64;
    values
        .iter()
        .map(|&v| counts[bin_of(v)] as f64 / mean)
        .collect()
}

impl AmnesiaPolicy for CostBasedPolicy {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn select_victims(
        &mut self,
        ctx: &PolicyContext<'_>,
        n: usize,
        rng: &mut SimRng,
    ) -> Vec<RowId> {
        let n = clamp_victims(ctx, n);
        let table = ctx.table;
        let ids: Vec<RowId> = table.active_row_ids();
        let values: Vec<Value> = ids.iter().map(|&r| table.value(0, r)).collect();
        let density = relative_density(&values, self.bins);
        let weights: Vec<f64> = ids
            .iter()
            .zip(&density)
            .map(|(&r, &d)| {
                let freq = table.access().frequency(r);
                d.powf(self.gamma) * (1.0 + freq)
            })
            .collect();
        rng.weighted_sample(&weights, n)
            .into_iter()
            .map(|i| ids[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::*;
    use amnesia_columnar::{Schema, Table};

    /// Table with `clump` rows at one value and `spread` rows fanned out.
    fn clumped_table(clump: usize, spread: usize) -> Table {
        let mut t = Table::new(Schema::single("a"));
        let mut vals = vec![500i64; clump];
        vals.extend((0..spread as i64).map(|i| i * 97));
        t.insert_batch(&vals, 0).unwrap();
        t
    }

    #[test]
    fn dense_clumps_are_shed_first() {
        let t = clumped_table(900, 100);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = CostBasedPolicy::new(64, 1.5);
        let mut rng = SimRng::new(61);
        let victims = p.select_victims(&ctx, 200, &mut rng);
        assert_victims_valid(&t, &victims, 200);
        let clump_victims = victims.iter().filter(|v| v.as_usize() < 900).count();
        // Clump density ≫ spread density: nearly all victims from the clump.
        assert!(clump_victims > 180, "clump victims {clump_victims}");
    }

    #[test]
    fn rare_values_survive() {
        let t = clumped_table(990, 10);
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = CostBasedPolicy::default_params();
        let mut rng = SimRng::new(62);
        // Forget half the table; the 10 rare values should mostly remain.
        let victims = p.select_victims(&ctx, 500, &mut rng);
        let rare_victims = victims.iter().filter(|v| v.as_usize() >= 990).count();
        assert!(rare_victims <= 3, "rare victims {rare_victims}");
    }

    #[test]
    fn gamma_zero_reduces_to_frequency_weighting() {
        let mut t = clumped_table(500, 500);
        // Make the *spread* rows hot: with gamma=0 density is ignored, so
        // the hot spread rows become the likelier victims.
        for r in 500..1000u64 {
            for _ in 0..20 {
                t.access_mut().touch(RowId(r), 1);
            }
        }
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = CostBasedPolicy::new(64, 0.0);
        let mut rng = SimRng::new(63);
        let victims = p.select_victims(&ctx, 200, &mut rng);
        let hot_victims = victims.iter().filter(|v| v.as_usize() >= 500).count();
        assert!(hot_victims > 150, "hot victims {hot_victims}");
    }

    #[test]
    fn constant_column_degenerates_to_uniform() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&vec![7i64; 300], 0).unwrap();
        let ctx = PolicyContext {
            table: &t,
            epoch: 1,
        };
        let mut p = CostBasedPolicy::default_params();
        let mut rng = SimRng::new(64);
        let victims = p.select_victims(&ctx, 100, &mut rng);
        assert_victims_valid(&t, &victims, 100);
    }

    #[test]
    fn budget_loop_holds() {
        let mut p = CostBasedPolicy::default_params();
        let mut rng = SimRng::new(65);
        let _ = run_loop(&mut p, 100, 20, 8, &mut rng);
    }

    #[test]
    fn relative_density_flags_the_clump() {
        let mut values = vec![10i64; 90];
        values.extend([1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 9999]);
        let d = relative_density(&values, 10);
        assert!(d[0] > d[95], "clump {} vs spread {}", d[0], d[95]);
        // Uniform data: all densities near 1.
        let uniform: Vec<i64> = (0..1000).collect();
        let du = relative_density(&uniform, 10);
        assert!(du.iter().all(|&x| (x - 1.0).abs() < 0.2));
    }
}
