//! Canned experiment runners: one function per figure/table of the paper
//! plus the `DESIGN.md` ablations. The repro harness and the integration
//! tests both call these; `Scale` lets tests run the same code at reduced
//! size.

use amnesia_columnar::compress::{EncodedBlock, Encoding};
use amnesia_columnar::{MemoryColdStore, RowId, Table};
use amnesia_distrib::{DistributionKind, Histogram};
use amnesia_util::{Result, SimRng};
use amnesia_workload::query::{AggKind, RangePredicate};
use amnesia_workload::{Query, QueryGenKind};
use serde::{Deserialize, Serialize};

use crate::budget::BudgetMode;
use crate::config::SimConfig;
use crate::policy::{PolicyContext, PolicyKind};
use crate::sim::Simulator;
use crate::store::{AmnesiacStore, ForgetMode};

/// Experiment size knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Storage budget (`DBSIZE`).
    pub dbsize: usize,
    /// Queries per batch.
    pub queries_per_batch: usize,
    /// Update batches.
    pub batches: u64,
    /// Value domain.
    pub domain: i64,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's parameters (Figures 1–3): dbsize 1000, 1000 queries per
    /// batch, 10 batches.
    pub fn paper() -> Self {
        Self {
            dbsize: 1000,
            queries_per_batch: 1000,
            batches: 10,
            domain: 100_000,
            seed: 0xC1D8_2017,
        }
    }

    /// Reduced size for fast CI tests (same code paths).
    pub fn test() -> Self {
        Self {
            dbsize: 200,
            queries_per_batch: 60,
            batches: 6,
            domain: 10_000,
            seed: 0xC1D8_2017,
        }
    }

    fn base_config(&self) -> SimConfig {
        SimConfig {
            dbsize: self.dbsize,
            domain: self.domain,
            queries_per_batch: self.queries_per_batch,
            batches: self.batches,
            seed: self.seed,
            ..SimConfig::default()
        }
    }
}

/// Named series over batches (Figure 3 and friends).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesReport {
    /// Experiment title.
    pub title: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// Meaning of the y axis.
    pub y_label: String,
    /// `(name, y-values)` per line.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SeriesReport {
    /// Render as an ASCII chart.
    pub fn render_ascii(&self) -> String {
        let y_max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);
        format!(
            "{} ({} vs {})\n{}",
            self.title,
            self.y_label,
            self.x_label,
            amnesia_util::ascii::line_chart(&self.series, 0.0, y_max, 12)
        )
    }

    /// Render as a CSV block (one row per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let width = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        out.push_str("name");
        for i in 0..width {
            out.push_str(&format!(",{}", i + 1));
        }
        out.push('\n');
        for (name, values) in &self.series {
            out.push_str(name);
            for v in values {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Named retention maps (Figures 1–2): one row per strategy/distribution,
/// active fraction per insertion epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapReport {
    /// Experiment title.
    pub title: String,
    /// `(name, active fraction per epoch 0..=batches)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl MapReport {
    /// ASCII heatmap, mirroring the paper's color maps.
    pub fn render_ascii(&self) -> String {
        format!(
            "{}\n{}",
            self.title,
            amnesia_util::ascii::heatmap(&self.rows, None)
        )
    }

    /// CSV block.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let width = self.rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        out.push_str("name");
        for i in 0..width {
            out.push_str(&format!(",epoch{i}"));
        }
        out.push('\n');
        for (name, values) in &self.rows {
            out.push_str(name);
            for v in values {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Generic result table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableReport {
    /// Experiment title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Aligned text rendering.
    pub fn render_ascii(&self) -> String {
        let mut t = amnesia_util::ascii::TextTable::new(self.header.clone());
        for row in &self.rows {
            t.row(row.clone());
        }
        format!("{}\n{}", self.title, t.render())
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut t = amnesia_util::ascii::TextTable::new(self.header.clone());
        for row in &self.rows {
            t.row(row.clone());
        }
        t.to_csv()
    }
}

// ---------------------------------------------------------------------------
// FIG1 — database amnesia map (Figure 1)
// ---------------------------------------------------------------------------

/// Figure 1: retention map after `batches` update batches, `upd-perc =
/// 0.20`, for fifo / uniform / ante / area. The data distribution "plays
/// no role, only the relative position of each tuple" — serial data makes
/// that explicit.
pub fn fig1_amnesia_map(scale: &Scale) -> Result<MapReport> {
    let mut rows = Vec::new();
    for kind in PolicyKind::fig1_set() {
        let cfg = SimConfig {
            update_fraction: 0.20,
            distribution: DistributionKind::Serial,
            policy: kind.clone(),
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        rows.push((kind.name().to_string(), report.map.fractions()));
    }
    Ok(MapReport {
        title: format!(
            "Figure 1: database amnesia map after {} batches (dbsize={}, upd-perc=0.20)",
            scale.batches, scale.dbsize
        ),
        rows,
    })
}

// ---------------------------------------------------------------------------
// FIG2 — database rot map (Figure 2)
// ---------------------------------------------------------------------------

/// Figure 2: retention map of the *rot* policy under the four data
/// distributions. Rot weights victims by inverse access frequency, so the
/// query workload (paper range queries) shapes the map per distribution.
pub fn fig2_rot_map(scale: &Scale) -> Result<MapReport> {
    let mut rows = Vec::new();
    for dist in DistributionKind::paper_set() {
        let cfg = SimConfig {
            update_fraction: 0.20,
            distribution: dist.clone(),
            policy: PolicyKind::Rot { high_water_age: 2 },
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        let label = match dist {
            DistributionKind::Serial => "Serial",
            DistributionKind::Uniform => "Uniform",
            DistributionKind::Normal { .. } => "Normal",
            DistributionKind::Zipfian { .. } => "Zipfian",
            _ => "other",
        };
        rows.push((label.to_string(), report.map.fractions()));
    }
    Ok(MapReport {
        title: format!(
            "Figure 2: database rot map after {} batches (dbsize={}, upd-perc=0.20)",
            scale.batches, scale.dbsize
        ),
        rows,
    })
}

// ---------------------------------------------------------------------------
// FIG3 — range query precision (Figure 3, both panels)
// ---------------------------------------------------------------------------

/// Figure 3: per-batch range-query precision under high volatility
/// (`upd-perc = 0.80`) for all five paper policies, on the given data
/// distribution (the paper shows Uniform and Zipfian panels).
pub fn fig3_range_precision(scale: &Scale, dist: DistributionKind) -> Result<SeriesReport> {
    let mut series = Vec::new();
    for kind in PolicyKind::paper_set() {
        let cfg = SimConfig {
            update_fraction: 0.80,
            distribution: dist.clone(),
            policy: kind.clone(),
            query_gen: QueryGenKind::paper_range(),
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        series.push((kind.name().to_string(), report.precision_series()));
    }
    Ok(SeriesReport {
        title: format!(
            "Figure 3: {} range experiment (dbsize={}, upd-perc=0.80)",
            dist.name(),
            scale.dbsize
        ),
        x_label: "batch".into(),
        y_label: "precision E".into(),
        series,
    })
}

// ---------------------------------------------------------------------------
// AGG — aggregate query precision (§4.3)
// ---------------------------------------------------------------------------

/// §4.3: relative error of `SELECT AVG(a) FROM t` (optionally with a range
/// predicate) over an extended run, for all five policies.
pub fn aggregate_precision(
    scale: &Scale,
    dist: DistributionKind,
    with_predicate: bool,
) -> Result<SeriesReport> {
    let query_gen = if with_predicate {
        QueryGenKind::paper_avg_over_range()
    } else {
        QueryGenKind::paper_avg()
    };
    let mut series = Vec::new();
    for kind in PolicyKind::paper_set() {
        let cfg = SimConfig {
            update_fraction: 0.20,
            distribution: dist.clone(),
            policy: kind.clone(),
            query_gen: query_gen.clone(),
            // "we increased the experimental run length" (§4.3)
            batches: scale.batches * 3,
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        series.push((kind.name().to_string(), report.agg_error_series()));
    }
    Ok(SeriesReport {
        title: format!(
            "Section 4.3: AVG precision, {} data{} (dbsize={}, upd-perc=0.20)",
            dist.name(),
            if with_predicate {
                ", range predicate"
            } else {
                ""
            },
            scale.dbsize
        ),
        x_label: "batch".into(),
        y_label: "relative error of AVG".into(),
        series,
    })
}

// ---------------------------------------------------------------------------
// T-VOL — volatility comparison (§4.2)
// ---------------------------------------------------------------------------

/// §4.2: final precision under low (10 %) and high (80 %) update
/// volatility for every policy.
pub fn volatility_table(scale: &Scale, dist: DistributionKind) -> Result<TableReport> {
    let mut rows = Vec::new();
    for kind in PolicyKind::paper_set() {
        let mut cells = vec![kind.name().to_string()];
        for upd in [0.10, 0.80] {
            let cfg = SimConfig {
                update_fraction: upd,
                distribution: dist.clone(),
                policy: kind.clone(),
                ..scale.base_config()
            };
            let report = Simulator::new(cfg)?.run()?;
            let last = report.precision_series().last().copied().unwrap_or(1.0);
            cells.push(format!("{last:.4}"));
        }
        rows.push(cells);
    }
    Ok(TableReport {
        title: format!(
            "Volatility: precision at batch {} under low/high volatility ({} data)",
            scale.batches,
            dist.name()
        ),
        header: vec!["policy".into(), "E (upd 10%)".into(), "E (upd 80%)".into()],
        rows,
    })
}

// ---------------------------------------------------------------------------
// T-SEL — selectivity sweep (§4.2)
// ---------------------------------------------------------------------------

/// §4.2: "Increasing the selectivity factor does not improve the
/// precision, because it affects the complete database, active and
/// forgotten." Final precision per policy across selectivity factors.
pub fn selectivity_table(scale: &Scale, dist: DistributionKind) -> Result<TableReport> {
    let selectivities = [0.001, 0.01, 0.05, 0.20];
    let mut rows = Vec::new();
    for kind in PolicyKind::paper_set() {
        let mut cells = vec![kind.name().to_string()];
        for s in selectivities {
            let cfg = SimConfig {
                update_fraction: 0.80,
                distribution: dist.clone(),
                policy: kind.clone(),
                query_gen: QueryGenKind::UniformRange { selectivity: s },
                ..scale.base_config()
            };
            let report = Simulator::new(cfg)?.run()?;
            let last = report.precision_series().last().copied().unwrap_or(1.0);
            cells.push(format!("{last:.4}"));
        }
        rows.push(cells);
    }
    Ok(TableReport {
        title: format!(
            "Selectivity sweep: precision at batch {} ({} data, upd-perc=0.80)",
            scale.batches,
            dist.name()
        ),
        header: vec![
            "policy".into(),
            "S=0.001".into(),
            "S=0.01".into(),
            "S=0.05".into(),
            "S=0.20".into(),
        ],
        rows,
    })
}

// ---------------------------------------------------------------------------
// ABL-PAIR — average-preserving pair forgetting (§4.4)
// ---------------------------------------------------------------------------

/// Pair forgetting vs uniform/fifo on whole-table AVG error (normal data,
/// where antipodal pairs exist around the mean).
pub fn ablation_pair(scale: &Scale) -> Result<SeriesReport> {
    let mut series = Vec::new();
    for kind in [PolicyKind::Pair, PolicyKind::Uniform, PolicyKind::Fifo] {
        let cfg = SimConfig {
            update_fraction: 0.20,
            distribution: DistributionKind::normal_default(),
            policy: kind.clone(),
            query_gen: QueryGenKind::paper_avg(),
            batches: scale.batches * 2,
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        series.push((kind.name().to_string(), report.agg_error_series()));
    }
    Ok(SeriesReport {
        title: "Ablation: pair forgetting preserves AVG (normal data)".into(),
        x_label: "batch".into(),
        y_label: "relative error of AVG".into(),
        series,
    })
}

// ---------------------------------------------------------------------------
// ABL-DIST — distribution-aligned amnesia (§4.4)
// ---------------------------------------------------------------------------

/// Total-variation distance between the active set and full history, per
/// batch, for aligned vs uniform vs fifo (zipfian data).
pub fn ablation_aligned(scale: &Scale) -> Result<SeriesReport> {
    let bins = 32;
    let mut series = Vec::new();
    for kind in [
        PolicyKind::Aligned { bins },
        PolicyKind::Uniform,
        PolicyKind::Fifo,
    ] {
        let cfg = SimConfig {
            update_fraction: 0.40,
            distribution: DistributionKind::zipfian_default(),
            policy: kind.clone(),
            ..scale.base_config()
        };
        let mut sim = Simulator::new(cfg)?;
        let mut tv_series = Vec::with_capacity(scale.batches as usize);
        for _ in 0..scale.batches {
            sim.step()?;
            tv_series.push(active_history_tv(sim.table(), bins));
        }
        series.push((kind.name().to_string(), tv_series));
    }
    Ok(SeriesReport {
        title: "Ablation: distribution alignment (TV distance to history, zipfian data)".into(),
        x_label: "batch".into(),
        y_label: "total variation distance".into(),
        series,
    })
}

/// Total-variation distance between active and all-history value
/// histograms.
pub fn active_history_tv(table: &Table, bins: usize) -> f64 {
    let lo = table.min_seen(0).unwrap_or(0);
    let hi = table.max_seen(0).unwrap_or(0).max(lo);
    let mut all = Histogram::new(lo, hi, bins);
    let mut active = Histogram::new(lo, hi, bins);
    for r in 0..table.num_rows() {
        let v = table.value(0, RowId::from(r));
        all.add(v);
        if table.activity().is_active(RowId::from(r)) {
            active.add(v);
        }
    }
    active.total_variation(&all)
}

// ---------------------------------------------------------------------------
// ABL-BUDGET — fixed vs watermark budgets (§2.1)
// ---------------------------------------------------------------------------

/// Precision and footprint under fixed-size vs watermark budgets.
pub fn ablation_budget(scale: &Scale) -> Result<(SeriesReport, SeriesReport)> {
    let budgets: Vec<(&str, BudgetMode)> = vec![
        ("fixed", BudgetMode::FixedSize),
        (
            "watermark(1.8/1.0)",
            BudgetMode::Watermark {
                high: 1.8,
                low: 1.0,
            },
        ),
        ("unbounded", BudgetMode::Unbounded),
    ];
    let mut precision = Vec::new();
    let mut footprint = Vec::new();
    for (name, budget) in budgets {
        let cfg = SimConfig {
            update_fraction: 0.40,
            distribution: DistributionKind::Uniform,
            policy: PolicyKind::Uniform,
            budget,
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        precision.push((name.to_string(), report.precision_series()));
        footprint.push((
            name.to_string(),
            report
                .batches
                .iter()
                .map(|b| b.active_rows as f64)
                .collect(),
        ));
    }
    Ok((
        SeriesReport {
            title: "Ablation: storage budget modes — precision".into(),
            x_label: "batch".into(),
            y_label: "precision E".into(),
            series: precision,
        },
        SeriesReport {
            title: "Ablation: storage budget modes — active rows".into(),
            x_label: "batch".into(),
            y_label: "active tuples".into(),
            series: footprint,
        },
    ))
}

// ---------------------------------------------------------------------------
// ABL-FORGET — what happens to forgotten data (§1)
// ---------------------------------------------------------------------------

/// Compare the five forget modes under an identical uniform-amnesia
/// workload: bytes resident, range completeness, whole-table AVG error,
/// mean query cost.
pub fn ablation_forget_modes(scale: &Scale) -> Result<TableReport> {
    let modes = [
        ForgetMode::MarkOnly,
        ForgetMode::Delete { vacuum_every: 2 },
        ForgetMode::Deindex,
        ForgetMode::Tier,
        ForgetMode::Summarize,
        ForgetMode::Model { bins: 64 },
    ];
    let mut rows = Vec::new();
    for mode in modes {
        let row = run_forget_mode(scale, mode)?;
        rows.push(row);
    }
    Ok(TableReport {
        title: format!(
            "Forget modes after {} batches (dbsize={}, upd-perc=0.40, uniform policy)",
            scale.batches, scale.dbsize
        ),
        header: vec![
            "mode".into(),
            "hot rows".into(),
            "hot KiB".into(),
            "cold rows".into(),
            "summary B".into(),
            "range completeness".into(),
            "avg rel-err".into(),
            "mean query cost".into(),
        ],
        rows,
    })
}

fn run_forget_mode(scale: &Scale, mode: ForgetMode) -> Result<Vec<String>> {
    let mut rng = SimRng::new(scale.seed);
    let mut dist = DistributionKind::Uniform.build(scale.domain, scale.seed);
    let mut store = AmnesiacStore::new(mode).with_zonemap();
    if matches!(mode, ForgetMode::Tier) {
        store = store.with_cold_store(Box::new(MemoryColdStore::new()));
    }
    if matches!(mode, ForgetMode::Deindex | ForgetMode::Delete { .. }) {
        store = store.with_index();
    }
    // Ground truth ledger: every value ever inserted.
    let mut ledger: Vec<i64> = Vec::new();
    let mut policy = PolicyKind::Uniform.build();

    let initial: Vec<i64> = (0..scale.dbsize).map(|_| dist.sample(&mut rng)).collect();
    ledger.extend_from_slice(&initial);
    store.insert_batch(&initial, 0)?;

    let batch_rows = (scale.dbsize as f64 * 0.40).round() as usize;
    for b in 1..=scale.batches {
        let fresh: Vec<i64> = (0..batch_rows).map(|_| dist.sample(&mut rng)).collect();
        ledger.extend_from_slice(&fresh);
        store.insert_batch(&fresh, b)?;
        let need = store.table().active_rows().saturating_sub(scale.dbsize);
        let victims = {
            let ctx = PolicyContext {
                table: store.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, need, &mut rng)
        };
        store.forget_batch(&victims, b)?;
        store.end_batch()?;
    }

    // Probe: range completeness + aggregate error + cost.
    let mut completeness_sum = 0.0;
    let mut cost_sum = 0.0;
    let probes = 100;
    let range = ledger.iter().copied().max().unwrap_or(1).max(1);
    let width = (range / 50).max(1);
    for _ in 0..probes {
        let lo = rng.range_i64(0, range);
        let pred = RangePredicate::new(lo, lo.saturating_add(width));
        let truth = ledger.iter().filter(|&&v| pred.matches(v)).count();
        let result = store.query(&Query::Range(pred));
        cost_sum += result.stats.cost;
        if truth > 0 {
            completeness_sum += result.output.cardinality().min(truth) as f64 / truth as f64;
        } else {
            completeness_sum += 1.0;
        }
    }
    let exact_avg = ledger.iter().map(|&v| v as f64).sum::<f64>() / ledger.len() as f64;
    let got_avg = store
        .query(&Query::Aggregate {
            kind: AggKind::Avg,
            predicate: None,
        })
        .output
        .agg()
        .flatten()
        .unwrap_or(0.0);
    let avg_err = amnesia_util::stats::relative_error(got_avg, exact_avg);

    let fp = store.footprint();
    Ok(vec![
        mode.name().to_string(),
        fp.hot_rows.to_string(),
        format!("{:.1}", fp.hot_bytes as f64 / 1024.0),
        fp.cold_rows.to_string(),
        fp.summary_bytes.to_string(),
        format!("{:.4}", completeness_sum / probes as f64),
        format!("{avg_err:.4}"),
        format!("{:.0}", cost_sum / probes as f64),
    ])
}

// ---------------------------------------------------------------------------
// ABL-DRIFT — amnesia under concept drift (§4.4)
// ---------------------------------------------------------------------------

/// §4.4: "the data distribution evolves as more and more tuples are
/// ingested (and forgotten)". Precision per batch when the insert
/// distribution drifts upward every epoch, for the paper policies plus
/// the aligned extension.
pub fn ablation_drift(scale: &Scale) -> Result<SeriesReport> {
    let drift = DistributionKind::Drift {
        base: Box::new(DistributionKind::Uniform),
        shift_per_epoch: scale.domain / 4,
    };
    let mut kinds = PolicyKind::paper_set();
    kinds.push(PolicyKind::Aligned { bins: 32 });
    let mut series = Vec::new();
    for kind in kinds {
        let cfg = SimConfig {
            update_fraction: 0.40,
            distribution: drift.clone(),
            policy: kind.clone(),
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        series.push((kind.name().to_string(), report.precision_series()));
    }
    Ok(SeriesReport {
        title: format!(
            "Ablation: concept drift (+{} per epoch, upd-perc=0.40)",
            scale.domain / 4
        ),
        x_label: "batch".into(),
        y_label: "precision E".into(),
        series,
    })
}

// ---------------------------------------------------------------------------
// ABL-COMP — compression postpones forgetting (§4.4)
// ---------------------------------------------------------------------------

/// Bytes per tuple for each codec × distribution, and the implied budget
/// stretch (how many times more tuples fit before amnesia must kick in).
pub fn ablation_compression(scale: &Scale) -> Result<TableReport> {
    let n = (scale.dbsize * 8).max(4096);
    let mut rng = SimRng::new(scale.seed);
    let mut rows = Vec::new();
    for dist_kind in DistributionKind::paper_set() {
        let mut dist = dist_kind.build(scale.domain, scale.seed);
        let values: Vec<i64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        for enc in Encoding::ALL {
            let block = EncodedBlock::encode(&values, enc);
            let bpv = block.compressed_bytes() as f64 / n as f64;
            rows.push(vec![
                dist_kind.name().to_string(),
                enc.name().to_string(),
                format!("{bpv:.3}"),
                format!("{:.2}", block.compression_ratio()),
            ]);
        }
        let auto = EncodedBlock::encode_auto(&values);
        rows.push(vec![
            dist_kind.name().to_string(),
            format!("auto({})", auto.encoding().name()),
            format!("{:.3}", auto.compressed_bytes() as f64 / n as f64),
            format!("{:.2}", auto.compression_ratio()),
        ]);
    }
    Ok(TableReport {
        title: format!("Compression: bytes/tuple by codec and distribution (n={n})"),
        header: vec![
            "distribution".into(),
            "codec".into(),
            "bytes/tuple".into(),
            "budget stretch".into(),
        ],
        rows,
    })
}

// ---------------------------------------------------------------------------
// RECALL — learning policies vs the paper baselines (§4.4 / §5)
// ---------------------------------------------------------------------------

/// Recall precision of the learning policies (ebbinghaus, decay, cost)
/// against the paper's fifo/uniform/rot on a skewed, repeated-interest
/// workload: zipfian data queried around active values, so the hot head
/// of the distribution is rehearsed every batch. Frequency-aware
/// policies should hold precision above the oblivious baselines.
pub fn recall_comparison(scale: &Scale) -> Result<SeriesReport> {
    let mut series = Vec::new();
    for kind in PolicyKind::learning_set() {
        let cfg = SimConfig {
            update_fraction: 0.20,
            distribution: DistributionKind::Zipfian { theta: 0.99 },
            policy: kind.clone(),
            query_gen: QueryGenKind::paper_range(),
            batches: scale.batches * 2,
            ..scale.base_config()
        };
        let report = Simulator::new(cfg)?.run()?;
        series.push((kind.name().to_string(), report.precision_series()));
    }
    Ok(SeriesReport {
        title: format!(
            "Recall: learning policies vs paper baselines (zipfian, dbsize={}, upd-perc=0.20)",
            scale.dbsize
        ),
        x_label: "batch".into(),
        y_label: "precision E".into(),
        series,
    })
}

// ---------------------------------------------------------------------------
// JOIN-PREC — join precision under referential amnesia (§2.2 / §5)
// ---------------------------------------------------------------------------

/// Drive a parent/child database through the amnesia loop under a policy
/// and a referential action, recording join precision per batch.
///
/// Returns `(precision per batch, dangling references at the end,
/// final parent-budget overshoot)`.
fn run_join_loop(
    scale: &Scale,
    policy_kind: &PolicyKind,
    action: Option<amnesia_columnar::ReferentialAction>,
) -> Result<(Vec<f64>, usize, usize)> {
    use amnesia_columnar::{Database, ForeignKey, ReferentialAction, Schema};

    let mut rng = SimRng::new(scale.seed ^ 0x4A01_4A01);
    let mut db = Database::new();
    let parent = db.add_table("parent", Schema::single("key"));
    let child = db.add_table("child", Schema::new(vec!["fk", "payload"]));
    db.add_foreign_key(ForeignKey {
        child_table: child,
        child_col: 0,
        parent_table: parent,
        parent_col: 0,
    })?;

    let dbsize = scale.dbsize;
    let mut next_key: i64 = 0;
    let mut policy = policy_kind.build();

    // Initial load: dbsize parents, dbsize children referencing them.
    for _ in 0..dbsize {
        db.table_mut(parent).insert(&[next_key], 0)?;
        next_key += 1;
    }
    let insert_children = |db: &mut Database, n: usize, epoch: u64, rng: &mut SimRng| {
        // Children reference a random *active* parent key; a zipf-ish
        // skew makes some parents hot, so cascades differ by policy.
        let keys: Vec<i64> = db
            .table(parent)
            .iter_active()
            .map(|r| db.table(parent).value(0, r))
            .collect();
        for _ in 0..n {
            // Quadratic skew toward the front of the active key list.
            let pos = (rng.f64() * rng.f64() * keys.len() as f64) as usize;
            let fk = keys[pos.min(keys.len() - 1)];
            let payload = rng.range_i64(0, scale.domain.max(1));
            db.table_mut(child).insert(&[fk, payload], epoch).unwrap();
        }
    };
    insert_children(&mut db, dbsize, 0, &mut rng);

    let batch_rows = ((dbsize as f64) * 0.20).round() as usize;
    let mut precisions = Vec::with_capacity(scale.batches as usize);

    for b in 1..=scale.batches {
        // Update batch: fresh parents and children.
        for _ in 0..batch_rows {
            db.table_mut(parent).insert(&[next_key], b)?;
            next_key += 1;
        }
        insert_children(&mut db, batch_rows, b, &mut rng);

        // Amnesia on the parent table under the policy.
        let excess = db.table(parent).active_rows().saturating_sub(dbsize);
        let victims = {
            let ctx = PolicyContext {
                table: db.table(parent),
                epoch: b,
            };
            policy.select_victims(&ctx, excess, &mut rng)
        };
        match action {
            Some(ReferentialAction::Cascade) => {
                for v in victims {
                    db.forget(parent, v, b, ReferentialAction::Cascade)?;
                }
            }
            Some(ReferentialAction::Restrict) => {
                // Forget only unreferenced parents; keep drawing extra
                // candidates so the budget can still be met when enough
                // unreferenced keys exist.
                let mut remaining = excess;
                for v in victims {
                    if remaining == 0 {
                        break;
                    }
                    if db.forget(parent, v, b, ReferentialAction::Restrict).is_ok() {
                        remaining -= 1;
                    }
                }
                if remaining > 0 {
                    let actives = db.table(parent).active_row_ids();
                    for v in actives {
                        if remaining == 0 {
                            break;
                        }
                        if db
                            .forget(parent, v, b, ReferentialAction::Restrict)
                            .map(|f| !f.is_empty())
                            .unwrap_or(false)
                        {
                            remaining -= 1;
                        }
                    }
                }
            }
            None => {
                // Raw forgets: referential semantics bypassed entirely.
                for v in victims {
                    db.table_mut(parent).forget(v, b)?;
                }
            }
        }

        // Child budget: trim with the same policy (children have no
        // dependents, so raw forgetting is safe).
        let child_excess = db.table(child).active_rows().saturating_sub(dbsize);
        if child_excess > 0 {
            let victims = {
                let ctx = PolicyContext {
                    table: db.table(child),
                    epoch: b,
                };
                policy.select_victims(&ctx, child_excess, &mut rng)
            };
            for v in victims {
                db.table_mut(child).forget(v, b)?;
            }
        }

        precisions.push(
            amnesia_engine::join::join_precision(db.table(parent), 0, db.table(child), 0)
                .unwrap_or(1.0),
        );
    }

    let dangling = db.dangling_references().len();
    let overshoot = db.table(parent).active_rows().saturating_sub(dbsize);
    Ok((precisions, dangling, overshoot))
}

/// JOIN-PREC: per-batch precision of `parent ⋈ child` under cascade
/// forgetting for every paper policy. The ground truth is the join over
/// all tuples ever inserted (mark-only storage keeps them scannable).
pub fn join_precision_experiment(scale: &Scale) -> Result<SeriesReport> {
    use amnesia_columnar::ReferentialAction;
    let mut series = Vec::new();
    for kind in PolicyKind::paper_set() {
        let (precisions, _, _) = run_join_loop(scale, &kind, Some(ReferentialAction::Cascade))?;
        series.push((kind.name().to_string(), precisions));
    }
    Ok(SeriesReport {
        title: format!(
            "Join precision under cascade amnesia (dbsize={}, upd-perc=0.20)",
            scale.dbsize
        ),
        x_label: "batch".into(),
        y_label: "join precision".into(),
        series,
    })
}

/// Referential-action comparison (§5: "forbid … or cascade?"): final
/// join precision, dangling references and parent-budget overshoot for
/// cascade vs restrict vs raw forgetting under uniform amnesia.
pub fn referential_actions_table(scale: &Scale) -> Result<TableReport> {
    use amnesia_columnar::ReferentialAction;
    let cases: [(&str, Option<ReferentialAction>); 3] = [
        ("cascade", Some(ReferentialAction::Cascade)),
        ("restrict", Some(ReferentialAction::Restrict)),
        ("raw", None),
    ];
    let mut rows = Vec::new();
    for (name, action) in cases {
        let (precisions, dangling, overshoot) = run_join_loop(scale, &PolicyKind::Uniform, action)?;
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", precisions.last().copied().unwrap_or(1.0)),
            dangling.to_string(),
            overshoot.to_string(),
        ]);
    }
    Ok(TableReport {
        title: format!(
            "Referential actions: integrity vs budget (dbsize={}, uniform policy)",
            scale.dbsize
        ),
        header: vec![
            "action".into(),
            "final join precision".into(),
            "dangling refs".into(),
            "budget overshoot".into(),
        ],
        rows,
    })
}

// ---------------------------------------------------------------------------
// ABL-MODEL — micro-models of forgotten data (§5, ref [15])
// ---------------------------------------------------------------------------

/// Micro-model ablation: mean relative error of *range-restricted* COUNT
/// and AVG after the amnesia loop, for mark-only / summarize / model
/// stores. Summaries only help whole-table aggregates; micro-models
/// interpolate the forgotten mass inside the range, at a histogram-sized
/// footprint.
pub fn ablation_micromodels(scale: &Scale) -> Result<TableReport> {
    let modes = [
        ("mark-only", ForgetMode::MarkOnly),
        ("summarize", ForgetMode::Summarize),
        ("model-16", ForgetMode::Model { bins: 16 }),
        ("model-128", ForgetMode::Model { bins: 128 }),
    ];
    let mut rows = Vec::new();
    for (label, mode) in modes {
        let mut rng = SimRng::new(scale.seed ^ 0x0DE1);
        let mut dist = DistributionKind::Uniform.build(scale.domain, scale.seed);
        let mut store = AmnesiacStore::new(mode);
        let mut ledger: Vec<i64> = Vec::new();
        let mut policy = PolicyKind::Uniform.build();

        let initial: Vec<i64> = (0..scale.dbsize).map(|_| dist.sample(&mut rng)).collect();
        ledger.extend_from_slice(&initial);
        store.insert_batch(&initial, 0)?;
        let batch_rows = (scale.dbsize as f64 * 0.40).round() as usize;
        for b in 1..=scale.batches {
            let fresh: Vec<i64> = (0..batch_rows).map(|_| dist.sample(&mut rng)).collect();
            ledger.extend_from_slice(&fresh);
            store.insert_batch(&fresh, b)?;
            let need = store.table().active_rows().saturating_sub(scale.dbsize);
            let victims = {
                let ctx = PolicyContext {
                    table: store.table(),
                    epoch: b,
                };
                policy.select_victims(&ctx, need, &mut rng)
            };
            store.forget_batch(&victims, b)?;
            store.end_batch()?;
        }

        // Probe ranged COUNT and AVG against the ledger ground truth.
        let probes = 200;
        let range = ledger.iter().copied().max().unwrap_or(1).max(1);
        let width = (range / 10).max(1);
        let mut count_err = 0.0;
        let mut avg_err = 0.0;
        let mut avg_probes = 0usize;
        for _ in 0..probes {
            let lo = rng.range_i64(0, range - width + 1);
            let pred = RangePredicate::new(lo, lo + width);
            let truth: Vec<i64> = ledger
                .iter()
                .copied()
                .filter(|&v| pred.matches(v))
                .collect();
            let got_count = store
                .query(&Query::Aggregate {
                    kind: AggKind::Count,
                    predicate: Some(pred),
                })
                .output
                .agg()
                .flatten()
                .unwrap_or(0.0);
            count_err += amnesia_util::stats::relative_error(got_count, truth.len() as f64);
            if !truth.is_empty() {
                let true_avg = truth.iter().map(|&v| v as f64).sum::<f64>() / truth.len() as f64;
                let got_avg = store
                    .query(&Query::Aggregate {
                        kind: AggKind::Avg,
                        predicate: Some(pred),
                    })
                    .output
                    .agg()
                    .flatten()
                    .unwrap_or(0.0);
                avg_err += amnesia_util::stats::relative_error(got_avg, true_avg);
                avg_probes += 1;
            }
        }
        let fp = store.footprint();
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", count_err / probes as f64),
            format!("{:.4}", avg_err / avg_probes.max(1) as f64),
            fp.hot_rows.to_string(),
            (fp.summary_bytes + fp.model_bytes).to_string(),
        ]);
    }
    Ok(TableReport {
        title: format!(
            "Micro-models: ranged-aggregate error after {} batches (dbsize={}, upd-perc=0.40)",
            scale.batches, scale.dbsize
        ),
        header: vec![
            "store".into(),
            "ranged COUNT rel-err".into(),
            "ranged AVG rel-err".into(),
            "hot rows".into(),
            "aux bytes".into(),
        ],
        rows,
    })
}

// ---------------------------------------------------------------------------
// ABL-ADAPT — adaptive partitioning (§4.4)
// ---------------------------------------------------------------------------

/// Drive a two-sided workload over a partitioned store: the lower half
/// of the value space receives *recency* queries (FIFO territory), the
/// upper half *historical* queries (uniform/area territory). Returns the
/// per-batch mean precision.
///
/// `arms = None` runs the adaptive bandit; `Some(kind)` pins every
/// partition to one fixed policy (the global baselines).
fn run_partitioned_workload(
    scale: &Scale,
    arms: Option<PolicyKind>,
    chosen_arms: Option<&mut Vec<String>>,
) -> Result<Vec<f64>> {
    use crate::adaptive::{AdaptiveConfig, AdaptiveStore};

    let partitions = 2usize;
    let cfg = AdaptiveConfig {
        arms: match &arms {
            Some(kind) => vec![kind.clone()],
            None => AdaptiveConfig::default_arms(),
        },
        epsilon: 0.15,
        partitions,
        domain: scale.domain,
        budget_per_partition: scale.dbsize / partitions,
    };
    let mut store = AdaptiveStore::new(cfg);
    let mut rng = SimRng::new(scale.seed ^ 0xADA9);

    // Ledger per partition: (value, insert batch).
    let mut ledgers: Vec<Vec<(i64, u64)>> = vec![Vec::new(); partitions];
    let half = scale.domain / 2;
    // Partition 0's data is time-correlated: each batch writes a fresh
    // value stripe, so recency queries land on recent *tuples* (FIFO
    // territory). Partition 1 is stationary uniform over the upper half
    // and queried across all of history (uniform/rot territory).
    let stripes = scale.batches + 1;
    let stripe = (half / stripes as i64).max(1);
    let insert_batchful = |store: &mut AdaptiveStore,
                           ledgers: &mut Vec<Vec<(i64, u64)>>,
                           n: usize,
                           epoch: u64,
                           rng: &mut SimRng|
     -> Result<()> {
        for i in 0..n {
            let v = if i % 2 == 0 {
                // Drifting stripe within the lower half.
                (epoch.min(stripes - 1) as i64 * stripe + rng.range_i64(0, stripe)).min(half - 1)
            } else {
                rng.range_i64(half, scale.domain)
            };
            store.insert(v, epoch)?;
            ledgers[if v < half { 0 } else { 1 }].push((v, epoch));
        }
        Ok(())
    };

    insert_batchful(&mut store, &mut ledgers, scale.dbsize, 0, &mut rng)?;
    store.end_batch(0, &mut rng)?;

    let batch_rows = (scale.dbsize as f64 * 0.4).round() as usize;
    // Narrow predicates keep the truth sets small, so the *identity* of
    // the retained tuples (not just their count) decides precision.
    let width = (scale.domain / 2000).max(1).min(stripe / 2).max(1);
    let mut series = Vec::with_capacity(scale.batches as usize);
    for b in 1..=scale.batches {
        insert_batchful(&mut store, &mut ledgers, batch_rows, b, &mut rng)?;

        // Query round: precision measured against the partition ledger.
        let mut precision_sum = 0.0;
        let mut queries = 0usize;
        for q in 0..scale.queries_per_batch {
            let p = q % partitions;
            let ledger = &ledgers[p];
            // Partition 0: recency focus — anchor on a value from the two
            // newest batches (FIFO territory). Partition 1: a stable hot
            // set — anchor on the oldest tenth of everything ever
            // inserted, over and over (rot territory: only frequency
            // tracking keeps those tuples alive).
            let anchor = if p == 0 {
                let candidates: Vec<i64> = ledger
                    .iter()
                    .filter(|(_, e)| *e + 1 >= b)
                    .map(|(v, _)| *v)
                    .collect();
                match rng.choose(&candidates) {
                    Some(&v) => v,
                    None => continue,
                }
            } else {
                let hot = (ledger.len() / 10).max(1);
                ledger[rng.index(hot)].0
            };
            let pred =
                RangePredicate::new(anchor.saturating_sub(width), anchor.saturating_add(width));
            let truth = ledger.iter().filter(|(v, _)| pred.matches(*v)).count();
            if truth == 0 {
                continue;
            }
            let (rf, touched) = {
                let table = store.table(p);
                let touched: Vec<amnesia_columnar::RowId> = table
                    .iter_active()
                    .filter(|&r| pred.matches(table.value(0, r)))
                    .collect();
                (touched.len(), touched)
            };
            store.touch(p, &touched, b);
            let pf = rf as f64 / truth as f64;
            store.observe(p, pf);
            precision_sum += pf;
            queries += 1;
        }
        series.push(if queries == 0 {
            1.0
        } else {
            precision_sum / queries as f64
        });
        store.end_batch(b, &mut rng)?;
    }
    if let Some(out) = chosen_arms {
        for p in 0..partitions {
            out.push(format!("p{p}:{}", store.current_arm(p)));
        }
    }
    Ok(series)
}

/// ABL-ADAPT: adaptive per-partition policy choice vs the same policies
/// applied globally, on a workload whose best policy differs by value
/// region.
pub fn ablation_adaptive(scale: &Scale) -> Result<SeriesReport> {
    // Longer run: the bandit needs batches to explore all arms.
    let scale = Scale {
        batches: scale.batches * 4,
        ..*scale
    };
    let mut series = Vec::new();
    let mut arms = Vec::new();
    let adaptive = run_partitioned_workload(&scale, None, Some(&mut arms))?;
    series.push((format!("adaptive[{}]", arms.join(",")), adaptive));
    for kind in crate::adaptive::AdaptiveConfig::default_arms() {
        let fixed = run_partitioned_workload(&scale, Some(kind.clone()), None)?;
        series.push((format!("global-{}", kind.name()), fixed));
    }
    Ok(SeriesReport {
        title: format!(
            "Adaptive partitioning: split recency/history workload (dbsize={}, 2 partitions)",
            scale.dbsize
        ),
        x_label: "batch".into(),
        y_label: "mean query precision".into(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes() {
        let report = fig1_amnesia_map(&Scale::test()).unwrap();
        assert_eq!(report.rows.len(), 4);
        let names: Vec<&str> = report.rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fifo", "uniform", "ante", "area"]);

        let get = |name: &str| {
            report
                .rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let fifo = get("fifo");
        // FIFO: a step function — old epochs zero, latest epochs full.
        assert!(fifo[0] < 1e-9, "fifo epoch0 {}", fifo[0]);
        assert!((fifo.last().unwrap() - 1.0).abs() < 1e-9);
        // Uniform: gradient increasing toward recent epochs.
        let uni = get("uniform");
        assert!(uni.last().unwrap() > &uni[1]);
        // Ante: epoch 0 retained the most.
        let ante = get("ante");
        assert!(ante[0] > 0.7, "ante epoch0 {}", ante[0]);
        let mid = ante[1..ante.len() - 1].iter().sum::<f64>() / (ante.len() - 2) as f64;
        assert!(ante[0] > mid, "ante initial > updates");
    }

    #[test]
    fn fig2_distribution_matters_for_rot() {
        let report = fig2_rot_map(&Scale::test()).unwrap();
        assert_eq!(report.rows.len(), 4);
        // Serial data under rot decays old epochs (fifo-like): the last
        // epoch retains more than the first.
        let serial = &report.rows[0].1;
        assert!(
            serial.last().unwrap() > &serial[0],
            "serial rot map should favour fresh data: {serial:?}"
        );
        // Maps must differ across distributions (Figure 2's point).
        let uniform = &report.rows[1].1;
        assert_ne!(serial, uniform);
    }

    #[test]
    fn fig3_precision_decays_and_first_batch_is_perfect() {
        let report = fig3_range_precision(&Scale::test(), DistributionKind::Uniform).unwrap();
        assert_eq!(report.series.len(), 5);
        for (name, series) in &report.series {
            assert!(
                series[0] > 0.999,
                "{name}: batch 1 ran before any forgetting, got {}",
                series[0]
            );
            assert!(
                series.last().unwrap() < &0.9,
                "{name}: precision must decay, got {:?}",
                series
            );
        }
    }

    #[test]
    fn aggregate_errors_are_marginal() {
        let report = aggregate_precision(&Scale::test(), DistributionKind::Uniform, false).unwrap();
        for (name, series) in &report.series {
            let max = series.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(max < 0.25, "{name}: AVG error should stay small, got {max}");
        }
    }

    #[test]
    fn pair_beats_uniform_on_avg() {
        let report = ablation_pair(&Scale::test()).unwrap();
        let mean = |name: &str| {
            let s = &report.series.iter().find(|(n, _)| n == name).unwrap().1;
            s.iter().sum::<f64>() / s.len() as f64
        };
        assert!(
            mean("pair") <= mean("uniform") + 1e-6,
            "pair {} vs uniform {}",
            mean("pair"),
            mean("uniform")
        );
    }

    #[test]
    fn aligned_tracks_history_better_than_fifo() {
        let report = ablation_aligned(&Scale::test()).unwrap();
        let last = |name: &str| {
            *report
                .series
                .iter()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .last()
                .unwrap()
        };
        assert!(
            last("aligned") < last("fifo"),
            "aligned {} should beat fifo {}",
            last("aligned"),
            last("fifo")
        );
    }

    #[test]
    fn budget_modes_trade_memory_for_precision() {
        let (precision, footprint) = ablation_budget(&Scale::test()).unwrap();
        let last = |r: &SeriesReport, name: &str| {
            *r.series
                .iter()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .last()
                .unwrap()
        };
        // Unbounded: perfect precision, biggest footprint.
        assert!((last(&precision, "unbounded") - 1.0).abs() < 1e-9);
        assert!(last(&footprint, "unbounded") > last(&footprint, "fixed"));
        // Fixed: smallest footprint.
        assert_eq!(last(&footprint, "fixed"), Scale::test().dbsize as f64);
    }

    #[test]
    fn forget_modes_table_has_all_modes() {
        let report = ablation_forget_modes(&Scale::test()).unwrap();
        assert_eq!(report.rows.len(), 6);
        let modes: Vec<&str> = report.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            modes,
            vec![
                "mark-only",
                "delete",
                "deindex",
                "tier",
                "summarize",
                "model"
            ]
        );
        // Deindex keeps complete scans: completeness column == 1.
        let deindex = &report.rows[2];
        assert_eq!(deindex[5], "1.0000");
        // Summarize answers whole-table AVG exactly; so does model.
        let summarize = &report.rows[4];
        assert_eq!(summarize[6], "0.0000");
        let model = &report.rows[5];
        assert_eq!(model[6], "0.0000");
    }

    #[test]
    fn drift_ablation_runs_for_all_policies() {
        let report = ablation_drift(&Scale::test()).unwrap();
        assert_eq!(report.series.len(), 6);
        for (name, series) in &report.series {
            assert_eq!(series.len(), Scale::test().batches as usize);
            assert!(series[0] > 0.999, "{name} starts perfect");
            // Under drift the query focus moves with the data; precision
            // still decays but stays a valid ratio.
            for &e in series {
                assert!((0.0..=1.0).contains(&e), "{name}: E={e}");
            }
        }
    }

    #[test]
    fn compression_table_covers_grid() {
        let report = ablation_compression(&Scale::test()).unwrap();
        // 4 distributions × (5 codecs + auto) = 24 rows.
        assert_eq!(report.rows.len(), 24);
        // Serial data must compress extremely well under delta.
        let serial_delta = report
            .rows
            .iter()
            .find(|r| r[0] == "serial" && r[1] == "delta")
            .unwrap();
        let ratio: f64 = serial_delta[3].parse().unwrap();
        assert!(ratio > 4.0, "serial/delta ratio {ratio}");
    }

    #[test]
    fn reports_render() {
        let report = fig1_amnesia_map(&Scale::test()).unwrap();
        let ascii = report.render_ascii();
        assert!(ascii.contains("fifo"));
        let csv = report.to_csv();
        assert!(csv.starts_with("name,epoch0"));
    }

    #[test]
    fn join_precision_decays_for_all_policies() {
        let report = join_precision_experiment(&Scale::test()).unwrap();
        assert_eq!(report.series.len(), 5);
        for (name, series) in &report.series {
            assert_eq!(series.len(), Scale::test().batches as usize);
            for &p in series {
                assert!((0.0..=1.0).contains(&p), "{name}: precision {p}");
            }
            // Forgetting on both sides compounds: precision falls well
            // below the single-table level by the final batch.
            assert!(
                series.last().unwrap() < &0.9,
                "{name}: join precision must decay, got {series:?}"
            );
        }
    }

    #[test]
    fn referential_actions_tradeoff_holds() {
        let report = referential_actions_table(&Scale::test()).unwrap();
        assert_eq!(report.rows.len(), 3);
        let row = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .clone()
        };
        // Cascade and restrict never leave dangling references.
        assert_eq!(row("cascade")[2], "0");
        assert_eq!(row("restrict")[2], "0");
        // Raw forgetting dangles (children of forgotten parents remain).
        let raw_dangling: usize = row("raw")[2].parse().unwrap();
        assert!(raw_dangling > 0, "raw forgetting must dangle");
        // Cascade meets the parent budget exactly.
        assert_eq!(row("cascade")[3], "0");
    }

    #[test]
    fn adaptive_partitioning_tracks_the_best_global_policy() {
        let report = ablation_adaptive(&Scale::test()).unwrap();
        assert_eq!(report.series.len(), 4);
        let tail_mean = |prefix: &str| -> f64 {
            let s = &report
                .series
                .iter()
                .find(|(n, _)| n.starts_with(prefix))
                .unwrap()
                .1;
            let tail = &s[s.len() * 2 / 3..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let adaptive = tail_mean("adaptive");
        let best_global = ["global-fifo", "global-uniform", "global-rot"]
            .iter()
            .map(|n| tail_mean(n))
            .fold(0.0f64, f64::max);
        // The bandit mixes per-partition winners, so it must at least
        // approach the best single policy (small slack for exploration).
        assert!(
            adaptive >= best_global - 0.05,
            "adaptive {adaptive} vs best global {best_global}"
        );
    }

    #[test]
    fn micromodels_beat_summaries_on_ranged_aggregates() {
        let report = ablation_micromodels(&Scale::test()).unwrap();
        assert_eq!(report.rows.len(), 4);
        let count_err = |name: &str| -> f64 {
            report.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        // Summaries cannot answer ranged queries: same error as mark-only.
        // Models interpolate and must cut the error substantially.
        assert!(
            count_err("model-128") < 0.5 * count_err("mark-only"),
            "model-128 {} vs mark-only {}",
            count_err("model-128"),
            count_err("mark-only")
        );
        assert!(
            count_err("model-128") <= count_err("model-16") + 0.05,
            "finer bins should not be much worse"
        );
    }

    #[test]
    fn recall_learning_policies_beat_oblivious_baselines() {
        let report = recall_comparison(&Scale::test()).unwrap();
        assert_eq!(report.series.len(), 6);
        let tail_mean = |name: &str| {
            let s = &report.series.iter().find(|(n, _)| n == name).unwrap().1;
            let tail = &s[s.len() / 2..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        // Query hits rehearse the zipfian head every batch; the
        // count-based policies must retain it far better than fifo,
        // which blindly evicts by age.
        for learner in ["rot", "decay"] {
            assert!(
                tail_mean(learner) > tail_mean("fifo") + 0.05,
                "{learner} {} should beat fifo {}",
                tail_mean(learner),
                tail_mean("fifo")
            );
        }
        // Ebbinghaus documents a negative result: the broad query load
        // rehearses every active tuple each batch, so its recency clock
        // pins to zero and it tracks the oblivious baselines.
        assert!(
            tail_mean("ebbinghaus") > 0.8 * tail_mean("fifo"),
            "ebbinghaus {} collapsed below fifo {}",
            tail_mean("ebbinghaus"),
            tail_mean("fifo")
        );
        // And every series starts perfect before any forgetting.
        for (name, series) in &report.series {
            assert!(series[0] > 0.999, "{name} starts at {}", series[0]);
        }
    }
}
