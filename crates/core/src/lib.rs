//! # The Data Amnesia Simulator
//!
//! This crate is the Rust reproduction of the system contributed by
//! *"A Database System with Amnesia"* (Kersten & Sidirourgos, CIDR 2017):
//! a simulator that lets a columnar store **forget tuples on purpose** to
//! stay inside a storage budget, and measures how much *query precision*
//! survives.
//!
//! The moving parts:
//!
//! * [`policy`] — the amnesia algorithms of paper §3 (`fifo`, `uniform`,
//!   `ante`, `rot`, `area`, plus the §3.2 "overuse" variant) and the §4.4
//!   extensions (TTL, average-preserving pair forgetting, distribution-
//!   aligned forgetting, composites),
//! * [`budget`] — when to forget: fixed `DBSIZE` (paper default) or
//!   watermark growth bounds (§2.1's "do not let it grow beyond the 90 %
//!   mark"),
//! * [`adaptive`] — §4.4's adaptive partitioning: per-partition policy
//!   choice learned from precision feedback (ε-greedy bandit),
//! * [`metrics`] — the §2.3 precision metrics `RF`, `MF`, `PF`, `E`, the
//!   amnesia-map matrices behind Figures 1–2, and aggregate error
//!   tracking,
//! * [`sim`] — the query-batch → update-batch → amnesia loop (§2.3),
//! * [`store`] — what *physically* happens to forgotten tuples
//!   (mark / delete / de-index / cold-tier / summarize, §1),
//! * [`experiments`] — canned runners for every figure and table of the
//!   paper plus the ablations listed in `DESIGN.md`.
//!
//! ## Quickstart
//!
//! ```
//! use amnesia_core::config::SimConfig;
//! use amnesia_core::policy::PolicyKind;
//! use amnesia_core::sim::Simulator;
//! use amnesia_distrib::DistributionKind;
//!
//! let cfg = SimConfig::builder()
//!     .dbsize(200)
//!     .domain(10_000)
//!     .update_fraction(0.2)
//!     .batches(5)
//!     .queries_per_batch(50)
//!     .distribution(DistributionKind::Uniform)
//!     .policy(PolicyKind::Uniform)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let report = Simulator::new(cfg).unwrap().run().unwrap();
//! assert_eq!(report.batches.len(), 5);
//! // The storage budget held: exactly dbsize tuples stay active.
//! assert_eq!(report.storage.final_active_rows, 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod budget;
pub mod config;
pub mod experiments;
pub mod metrics;
pub mod policy;
pub mod sim;
pub mod store;

pub use adaptive::{AdaptiveConfig, AdaptiveStore};
pub use budget::BudgetMode;
pub use config::SimConfig;
pub use metrics::{AmnesiaMap, BatchSummary, DurabilityCounters, MetricsSnapshot, SimReport};
pub use policy::{AmnesiaPolicy, PolicyContext, PolicyKind};
pub use sim::Simulator;
pub use store::{AmnesiacStore, ForgetMode, TierConfig};
