//! The Data Amnesia Simulator loop.
//!
//! Paper §2.3: "we assume a query dominant environment, where a batch of
//! queries is followed by a batch of updates, immediately followed by
//! applying an amnesia algorithm to guarantee that the database is always
//! of DBSIZE. The metrics are reported by averaging over a batch of 1000
//! individual queries fired against the incomplete database."
//!
//! Because the simulator only *marks* tuples as forgotten (§2.1), the
//! table itself doubles as the ground-truth ledger: every query is scored
//! against all physically present rows to compute `RF`/`MF` exactly.

use amnesia_columnar::{RowId, Schema, Table};
use amnesia_util::{Result, SimRng};
use amnesia_workload::query::{AggKind, RangePredicate};
use amnesia_workload::{Query, QueryGenerator, TableSnapshot, UpdateGenerator};

use crate::config::SimConfig;
use crate::metrics::{
    AmnesiaMap, BatchSummary, PrecisionAccumulator, QueryPrecision, SimReport, StorageReport,
};
use crate::policy::{AmnesiaPolicy, PolicyContext};

/// Adapter exposing a [`Table`] to query generators.
struct Snapshot<'a>(&'a Table);

impl TableSnapshot for Snapshot<'_> {
    fn max_value_seen(&self) -> Option<i64> {
        self.0.max_seen(0)
    }

    fn random_active_value(&self, rng: &mut SimRng) -> Option<i64> {
        self.0.random_active(rng).map(|r| self.0.value(0, r))
    }

    fn active_count(&self) -> usize {
        self.0.active_rows()
    }
}

/// Score a range predicate against the full history held in the table.
///
/// Returns the precision outcome and the active matches (for access-
/// frequency accounting).
pub fn eval_range(table: &Table, pred: RangePredicate) -> (QueryPrecision, Vec<RowId>) {
    let col = table.column(0);
    let activity = table.activity();
    let mut returned = 0usize;
    let mut missed = 0usize;
    let mut matches = Vec::new();
    for r in 0..table.num_rows() {
        if pred.matches(col.get(r)) {
            let id = RowId::from(r);
            if activity.is_active(id) {
                returned += 1;
                matches.push(id);
            } else {
                missed += 1;
            }
        }
    }
    (QueryPrecision { returned, missed }, matches)
}

/// Aggregate twice: over active tuples (the amnesiac answer) and over all
/// tuples ever inserted (the exact answer). Returns `(approx, exact,
/// active contributors)`.
pub fn eval_aggregate(
    table: &Table,
    kind: AggKind,
    pred: Option<RangePredicate>,
) -> (Option<f64>, Option<f64>, Vec<RowId>) {
    use amnesia_engine::kernels::AggState;
    let col = table.column(0);
    let activity = table.activity();
    let mut active_state = AggState::new();
    let mut full_state = AggState::new();
    let mut contributors = Vec::new();
    for r in 0..table.num_rows() {
        let v = col.get(r);
        if pred.is_none_or(|p| p.matches(v)) {
            full_state.push(v);
            let id = RowId::from(r);
            if activity.is_active(id) {
                active_state.push(v);
                contributors.push(id);
            }
        }
    }
    (
        active_state.finalize(kind),
        full_state.finalize(kind),
        contributors,
    )
}

/// The simulator.
pub struct Simulator {
    cfg: SimConfig,
    table: Table,
    updates: UpdateGenerator,
    query_gen: Box<dyn QueryGenerator>,
    policy: Box<dyn AmnesiaPolicy>,
    rng_data: SimRng,
    rng_queries: SimRng,
    rng_policy: SimRng,
    current_batch: u64,
    summaries: Vec<BatchSummary>,
}

impl Simulator {
    /// Validate the configuration, build all components, and load the
    /// initial `DBSIZE` tuples (epoch 0).
    pub fn new(cfg: SimConfig) -> Result<Self> {
        cfg.validate()?;
        let mut master = SimRng::new(cfg.seed);
        let mut rng_data = master.fork();
        let rng_queries = master.fork();
        let rng_policy = master.fork();

        let mut updates = UpdateGenerator::from_kind(&cfg.distribution, cfg.domain, cfg.seed);
        let query_gen = cfg.query_gen.build();
        let policy = cfg.policy.build();

        let mut table = Table::new(Schema::single("a"));
        let initial = updates.batch(cfg.dbsize, &mut rng_data);
        table.insert_batch(&initial, 0)?;

        Ok(Self {
            cfg,
            table,
            updates,
            query_gen,
            policy,
            rng_data,
            rng_queries,
            rng_policy,
            current_batch: 0,
            summaries: Vec::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The amnesiac table (ground truth included, as forgotten marks).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Batches executed so far.
    pub fn batches_run(&self) -> u64 {
        self.current_batch
    }

    /// Execute one batch: queries → inserts → amnesia. Returns the batch
    /// summary (also retained internally for the final report).
    pub fn step(&mut self) -> Result<BatchSummary> {
        let batch = self.current_batch + 1;
        let mut acc = PrecisionAccumulator::new();

        // ---- query phase ------------------------------------------------
        for _ in 0..self.cfg.queries_per_batch {
            let query = {
                let snapshot = Snapshot(&self.table);
                self.query_gen.next_query(&snapshot, &mut self.rng_queries)
            };
            match query {
                Query::Range(pred) => {
                    let (precision, matches) = eval_range(&self.table, pred);
                    acc.record(precision);
                    self.table.access_mut().touch_all(&matches, batch);
                }
                Query::Point(v) => {
                    let pred = RangePredicate::new(v, v.saturating_add(1));
                    let (precision, matches) = eval_range(&self.table, pred);
                    acc.record(precision);
                    self.table.access_mut().touch_all(&matches, batch);
                }
                Query::Aggregate { kind, predicate } => {
                    let (approx, exact, contributors) =
                        eval_aggregate(&self.table, kind, predicate);
                    acc.record_aggregate(approx, exact);
                    self.table.access_mut().touch_all(&contributors, batch);
                }
            }
        }
        if self.cfg.access_decay < 1.0 {
            self.table.access_mut().decay(self.cfg.access_decay);
        }

        // ---- update phase -----------------------------------------------
        self.updates.on_epoch(batch);
        let fresh = self
            .updates
            .batch(self.cfg.batch_rows(), &mut self.rng_data);
        if !fresh.is_empty() {
            self.table.insert_batch(&fresh, batch)?;
        }

        // ---- amnesia phase ----------------------------------------------
        let need = self
            .cfg
            .budget
            .victims_needed(self.table.active_rows(), self.cfg.dbsize);
        if need > 0 {
            let victims = {
                let ctx = PolicyContext {
                    table: &self.table,
                    epoch: batch,
                };
                self.policy.select_victims(&ctx, need, &mut self.rng_policy)
            };
            debug_assert_eq!(victims.len(), need.min(self.table.active_rows()));
            for v in victims {
                self.table.forget(v, batch)?;
            }
        }

        self.current_batch = batch;
        let summary = BatchSummary {
            batch,
            mean_pf: acc.mean_pf(),
            e_margin: acc.e_margin(),
            mean_rf: acc.mean_rf(),
            mean_mf: acc.mean_mf(),
            agg_error: acc.mean_agg_error(),
            active_rows: self.table.active_rows(),
            total_rows: self.table.num_rows(),
        };
        self.summaries.push(summary.clone());
        Ok(summary)
    }

    /// Run all configured batches and produce the report.
    pub fn run(mut self) -> Result<SimReport> {
        for _ in 0..self.cfg.batches {
            self.step()?;
        }
        Ok(self.into_report())
    }

    /// Produce a report from the current state (useful after manual
    /// stepping).
    pub fn into_report(self) -> SimReport {
        let map = AmnesiaMap::from_table(&self.table, self.current_batch.max(1));
        let storage = StorageReport {
            final_active_rows: self.table.active_rows(),
            total_rows_inserted: self.table.num_rows(),
            rows_forgotten: self.table.forgotten_rows(),
            table_bytes: self.table.memory_bytes(),
        };
        SimReport {
            policy: self.cfg.policy.name().to_string(),
            distribution: self.cfg.distribution.name().to_string(),
            batches: self.summaries,
            map,
            storage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetMode;
    use crate::policy::PolicyKind;
    use amnesia_distrib::DistributionKind;
    use amnesia_workload::QueryGenKind;

    fn small_cfg(policy: PolicyKind) -> SimConfig {
        SimConfig::builder()
            .dbsize(200)
            .domain(10_000)
            .update_fraction(0.2)
            .batches(5)
            .queries_per_batch(50)
            .distribution(DistributionKind::Uniform)
            .policy(policy)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn budget_invariant_holds_every_batch() {
        let mut sim = Simulator::new(small_cfg(PolicyKind::Uniform)).unwrap();
        for _ in 0..5 {
            let s = sim.step().unwrap();
            assert_eq!(s.active_rows, 200, "DBSIZE must hold after amnesia");
        }
        assert_eq!(sim.table().num_rows(), 200 + 5 * 40);
    }

    #[test]
    fn precision_decays_toward_the_floor() {
        let report = Simulator::new(small_cfg(PolicyKind::Uniform))
            .unwrap()
            .run()
            .unwrap();
        let series = report.precision_series();
        assert_eq!(series.len(), 5);
        // Batch 1 queries ran before any forgetting: perfect precision.
        assert!(series[0] > 0.999, "first batch precision {}", series[0]);
        // Later batches have forgotten data: precision strictly below 1.
        assert!(series[4] < 0.95, "last batch precision {}", series[4]);
        // The floor is dbsize / total_seen.
        let floor = 200.0 / (200.0 + 5.0 * 40.0);
        assert!(series[4] > floor * 0.5, "not below half the floor");
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let r1 = Simulator::new(small_cfg(PolicyKind::Area))
            .unwrap()
            .run()
            .unwrap();
        let r2 = Simulator::new(small_cfg(PolicyKind::Area))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r1.precision_series(), r2.precision_series());
        assert_eq!(r1.map.active, r2.map.active);

        let mut cfg = small_cfg(PolicyKind::Area);
        cfg.seed = 8;
        let r3 = Simulator::new(cfg).unwrap().run().unwrap();
        assert_ne!(r1.precision_series(), r3.precision_series());
    }

    #[test]
    fn unbounded_budget_never_forgets_and_stays_precise() {
        let mut cfg = small_cfg(PolicyKind::Uniform);
        cfg.budget = BudgetMode::Unbounded;
        let report = Simulator::new(cfg).unwrap().run().unwrap();
        assert_eq!(report.storage.rows_forgotten, 0);
        for b in &report.batches {
            assert!((b.e_margin - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_workload_produces_agg_errors() {
        let mut cfg = small_cfg(PolicyKind::Uniform);
        cfg.query_gen = QueryGenKind::paper_avg();
        let report = Simulator::new(cfg).unwrap().run().unwrap();
        for b in &report.batches {
            assert!(
                b.agg_error.is_some(),
                "agg error missing in batch {}",
                b.batch
            );
        }
        // Whole-table AVG under uniform amnesia stays accurate (paper
        // §4.3: "the differences were marginal").
        let last = report.batches.last().unwrap().agg_error.unwrap();
        assert!(last < 0.05, "avg error {last}");
    }

    #[test]
    fn eval_range_counts_rf_and_mf() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[1, 2, 3, 4, 5], 0).unwrap();
        t.forget(RowId(1), 1).unwrap(); // 2 forgotten
        let (p, matches) = eval_range(&t, RangePredicate::new(1, 4));
        assert_eq!(p.returned, 2); // 1, 3
        assert_eq!(p.missed, 1); // 2
        assert_eq!(matches, vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn eval_aggregate_compares_active_to_history() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30], 0).unwrap();
        t.forget(RowId(2), 1).unwrap(); // 30 forgotten
        let (approx, exact, contributors) = eval_aggregate(&t, AggKind::Avg, None);
        assert_eq!(approx, Some(15.0));
        assert_eq!(exact, Some(20.0));
        assert_eq!(contributors.len(), 2);
    }

    #[test]
    fn serial_distribution_with_fifo_keeps_perfect_recent_precision() {
        // With serial data + FIFO, active tuples are exactly the newest
        // values; queries centred on active values rarely touch forgotten
        // ones, so precision stays high (paper: "if the user is mostly
        // interested in the recently inserted data then a FIFO style
        // amnesia suffices").
        let cfg = SimConfig::builder()
            .dbsize(200)
            .domain(10_000)
            .update_fraction(0.2)
            .batches(8)
            .queries_per_batch(100)
            .distribution(DistributionKind::Serial)
            .policy(PolicyKind::Fifo)
            .seed(9)
            .build()
            .unwrap();
        let report = Simulator::new(cfg).unwrap().run().unwrap();
        let last = *report.precision_series().last().unwrap();
        assert!(
            last > 0.9,
            "fifo on serial data should stay precise: {last}"
        );
    }
}
