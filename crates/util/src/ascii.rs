//! Terminal rendering of the paper's figures: heatmaps (Figures 1–2),
//! multi-series line charts (Figure 3) and aligned text tables.
//!
//! The output is plain ASCII so it renders identically in logs, CI output
//! and the criterion bench summaries.

/// Shade ramp used by [`heatmap`]: 0.0 maps to the first char, 1.0 to the
/// last. Mirrors "the brighter the colored area, the more tuples active".
const SHADES: &[u8] = b" .:-=+*#%@";

/// Render a heatmap for a matrix of values in `[0,1]`.
///
/// `rows` pairs a label with one row of cell intensities. All rows should
/// have equal length; shorter rows are padded with spaces. `col_labels`
/// (optional) is printed underneath.
pub fn heatmap(rows: &[(String, Vec<f64>)], col_labels: Option<&[String]>) -> String {
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, cells) in rows {
        out.push_str(&format!("{label:>label_w$} |"));
        for &v in cells {
            let v = v.clamp(0.0, 1.0);
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            // Two chars per cell for a readable aspect ratio.
            let ch = SHADES[idx] as char;
            out.push(ch);
            out.push(ch);
        }
        out.push('\n');
    }
    if let Some(labels) = col_labels {
        out.push_str(&" ".repeat(label_w));
        out.push_str(" |");
        for l in labels {
            let mut cell = l.clone();
            cell.truncate(2);
            out.push_str(&format!("{cell:<2}"));
        }
        out.push('\n');
    }
    out
}

/// Render several named series as an ASCII line chart.
///
/// The y-range is `[y_min, y_max]`; each series gets a distinct glyph.
/// `height` is the number of chart rows (excluding axes).
pub fn line_chart(series: &[(String, Vec<f64>)], y_min: f64, y_max: f64, height: usize) -> String {
    const GLYPHS: &[u8] = b"ox+*#@$%&";
    let width = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if width == 0 || height == 0 {
        return String::new();
    }
    let span = (y_max - y_min).max(f64::EPSILON);
    // grid[r][c]: r = 0 is the top row.
    let mut grid = vec![vec![b' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (c, &v) in values.iter().enumerate() {
            let norm = ((v - y_min) / span).clamp(0.0, 1.0);
            let r = ((1.0 - norm) * (height - 1) as f64).round() as usize;
            grid[r][c] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = y_max - span * r as f64 / (height - 1).max(1) as f64;
        out.push_str(&format!("{y:6.2} |"));
        for &ch in row {
            out.push(ch as char);
            out.push(' ');
        }
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width * 2));
    out.push('\n');
    // Legend.
    out.push_str("        ");
    for (si, (name, _)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()] as char;
        out.push_str(&format!("{glyph}={name}  "));
    }
    out.push('\n');
    out
}

/// Aligned text table builder used by the repro harness.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width on render).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment (left for the first column, right for
    /// the rest — first column is typically a name).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — the harness only emits numeric cells and
    /// identifiers without commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed precision, trimming to a compact width.
pub fn fnum(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_extremes_use_ramp_ends() {
        let rows = vec![("a".to_string(), vec![0.0, 1.0])];
        let hm = heatmap(&rows, None);
        assert!(hm.contains("a |"));
        assert!(hm.contains("  @@"), "expected dark->bright ramp: {hm}");
    }

    #[test]
    fn heatmap_clamps_out_of_range() {
        let rows = vec![("x".to_string(), vec![-0.5, 1.5])];
        let hm = heatmap(&rows, None);
        assert!(hm.contains("  @@"));
    }

    #[test]
    fn line_chart_has_legend_and_axis() {
        let series = vec![
            ("fifo".to_string(), vec![1.0, 0.5, 0.2]),
            ("area".to_string(), vec![1.0, 0.9, 0.8]),
        ];
        let chart = line_chart(&series, 0.0, 1.0, 5);
        assert!(chart.contains("o=fifo"));
        assert!(chart.contains("x=area"));
        assert!(chart.contains('+'));
    }

    #[test]
    fn line_chart_empty_series() {
        assert_eq!(line_chart(&[], 0.0, 1.0, 5), "");
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = TextTable::new(vec!["policy", "pf"]);
        t.row(vec!["fifo", "0.1"]);
        t.row(vec!["uniform-longer", "0.25"]);
        let s = t.render();
        assert!(s.contains("policy"));
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "policy,pf");
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(0.123456), "0.1235");
        assert_eq!(fnum(12345.6), "12346");
    }
}
