//! Deterministic random number generation for the amnesia simulator.
//!
//! All experiments in the paper are Monte-Carlo simulations; to make every
//! figure reproducible bit-for-bit we use a fixed, well-understood generator:
//! [Xoshiro256++](https://prng.di.unimi.it/) whose 256-bit state is expanded
//! from a single `u64` seed with SplitMix64 (the initialization recommended
//! by the Xoshiro authors). The generator is *not* cryptographic and does
//! not need to be.

use serde::{Deserialize, Serialize};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for cheap stateless hashing (e.g. scrambling zipf
/// ranks into value space).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a `u64` to a well-mixed `u64` (one-shot SplitMix64).
#[inline]
pub fn hash64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Deterministic simulator RNG: Xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator.
    ///
    /// Useful to give each policy / generator its own stream so that adding
    /// draws in one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        debug_assert!(span <= u64::MAX as u128);
        lo.wrapping_add(self.below(span as u64) as i64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (caches the spare deviate).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: u must be in (0, 1].
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Exponential deviate with rate `lambda`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0);
        -(1.0 - self.f64()).ln() / lambda
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly pick a reference from a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }

    /// Sample `k` distinct indices from `0..n`, uniformly at random.
    ///
    /// Uses a partial Fisher–Yates over an index vector when `k` is a large
    /// fraction of `n`, and Floyd's algorithm otherwise. The returned order
    /// is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 3 >= n {
            // Partial Fisher–Yates: O(n) memory but cheap per element.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.index(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Floyd's algorithm: O(k) expected time and memory.
            let mut chosen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.index(j + 1);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                out.push(pick);
            }
            out
        }
    }

    /// Weighted sampling of `k` distinct items *without replacement*.
    ///
    /// `weights[i]` is the relative weight of item `i`; items with
    /// non-positive weight are never selected (unless fewer than `k`
    /// positive-weight items exist, in which case only those are returned).
    ///
    /// Implements the Efraimidis–Spirakis A-Res scheme: each item draws key
    /// `u^(1/w)` and the `k` largest keys win. `O(n log k)`.
    pub fn weighted_sample(&mut self, weights: &[f64], k: usize) -> Vec<usize> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        /// Min-heap entry ordered by key.
        struct Entry {
            key: f64,
            idx: usize,
        }
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap on key.
                other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
            }
        }

        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
        for (idx, &w) in weights.iter().enumerate() {
            // Skip NaN, infinities and non-positive weights.
            if !w.is_finite() || w <= 0.0 {
                continue;
            }
            // key = u^(1/w)  <=>  ln(key) = ln(u)/w ; compare in log space
            // for numerical stability with tiny weights.
            let u = self.f64().max(f64::MIN_POSITIVE);
            let key = u.ln() / w;
            if heap.len() < k {
                heap.push(Entry { key, idx });
            } else if let Some(min) = heap.peek() {
                if key > min.key {
                    heap.pop();
                    heap.push(Entry { key, idx });
                }
            }
        }
        heap.into_iter().map(|e| e.idx).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_is_independent() {
        let mut a = SimRng::new(7);
        let mut child = a.fork();
        let x = child.next_u64();
        // Advancing the parent must not change what the child produced.
        let mut a2 = SimRng::new(7);
        let mut child2 = a2.fork();
        assert_eq!(x, child2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow generous 10% slack.
            assert!((9_000..=11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let v = rng.range_i64(-50, 50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal(10.0, 3.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.exponential(2.0);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(6);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::new(7);
        for &(n, k) in &[(100usize, 5usize), (100, 50), (100, 100), (10, 0), (1, 1)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut set = std::collections::HashSet::new();
            for &i in &s {
                assert!(i < n);
                assert!(set.insert(i), "duplicate index {i}");
            }
        }
    }

    #[test]
    fn sample_indices_uniformity() {
        let mut rng = SimRng::new(8);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            for i in rng.sample_indices(20, 5) {
                counts[i] += 1;
            }
        }
        // Each index expected 20_000 * 5/20 = 5_000 times.
        for &c in &counts {
            assert!((4_400..=5_600).contains(&c), "count {c}");
        }
    }

    #[test]
    fn weighted_sample_respects_weights() {
        let mut rng = SimRng::new(9);
        // Item 0 has 9x the weight of item 1; sample singles repeatedly.
        let weights = [9.0, 1.0];
        let mut zero = 0usize;
        for _ in 0..20_000 {
            let s = rng.weighted_sample(&weights, 1);
            assert_eq!(s.len(), 1);
            if s[0] == 0 {
                zero += 1;
            }
        }
        let frac = zero as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn weighted_sample_skips_nonpositive() {
        let mut rng = SimRng::new(10);
        let weights = [0.0, -1.0, 2.0, f64::NAN, 3.0];
        for _ in 0..100 {
            let s = rng.weighted_sample(&weights, 5);
            let mut got = s.clone();
            got.sort_unstable();
            assert_eq!(got, vec![2, 4], "only positive-weight items may win");
        }
    }

    #[test]
    fn weighted_sample_distinct() {
        let mut rng = SimRng::new(11);
        let weights: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let s = rng.weighted_sample(&weights, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn hash64_mixes() {
        // Adjacent inputs should produce wildly different outputs.
        let a = hash64(1);
        let b = hash64(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones() as i32 - 32).abs() < 24);
    }
}
