//! Numeric helpers: running moments, compensated summation, quantiles.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
///
/// Numerically stable for long simulation runs; mergeable so per-thread
/// accumulators can be combined by the sweep driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Kahan compensated summation: keeps O(1) error over long accumulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a value.
    pub fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current sum.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

/// Min/max tracker over a stream of `i64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinMax {
    min: i64,
    max: i64,
    seen: bool,
}

impl MinMax {
    /// Empty tracker.
    pub fn new() -> Self {
        Self {
            min: i64::MAX,
            max: i64::MIN,
            seen: false,
        }
    }

    /// Observe a value.
    pub fn push(&mut self, x: i64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.seen = true;
    }

    /// True if at least one value was observed.
    pub fn is_seen(&self) -> bool {
        self.seen
    }

    /// Minimum observed value, if any.
    pub fn min(&self) -> Option<i64> {
        self.seen.then_some(self.min)
    }

    /// Maximum observed value, if any.
    pub fn max(&self) -> Option<i64> {
        self.seen.then_some(self.max)
    }

    /// Merge another tracker.
    pub fn merge(&mut self, other: &MinMax) {
        if other.seen {
            self.push(other.min);
            self.push(other.max);
        }
    }
}

impl Default for MinMax {
    fn default() -> Self {
        Self::new()
    }
}

/// Compute the given quantiles (each in `[0,1]`) of `values`.
///
/// Sorts a copy; uses the nearest-rank method. Returns an empty vector when
/// `values` is empty.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    qs.iter()
        .map(|&q| {
            let q = q.clamp(0.0, 1.0);
            let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        })
        .collect()
}

/// Relative error `|approx - exact| / |exact|`, with the convention that the
/// error is 0 when both are 0 and 1 when only `exact` is 0.
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (approx - exact).abs() / exact.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        let mut k = KahanSum::new();
        k.add(1.0);
        for _ in 0..10_000_000 {
            k.add(1e-16);
        }
        // Naive summation would lose all the tiny increments.
        assert!((k.value() - (1.0 + 1e-9)).abs() < 1e-12);
    }

    #[test]
    fn minmax_tracks() {
        let mut mm = MinMax::new();
        assert!(!mm.is_seen());
        assert_eq!(mm.min(), None);
        for x in [5, -3, 10, 0] {
            mm.push(x);
        }
        assert_eq!(mm.min(), Some(-3));
        assert_eq!(mm.max(), Some(10));
        let mut other = MinMax::new();
        other.push(-100);
        mm.merge(&other);
        assert_eq!(mm.min(), Some(-100));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let qs = quantiles(&values, &[0.0, 0.5, 1.0]);
        assert_eq!(qs, vec![1.0, 51.0, 100.0]);
        assert!(quantiles(&[], &[0.5]).is_empty());
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), 1.0);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(-9.0, -10.0) - 0.1).abs() < 1e-12);
    }
}
