//! Checked fixed-width reads from untrusted byte slices.
//!
//! The persist and cold-store layers parse on-disk bytes whose lengths
//! are validated by framing (length prefixes, CRC trailers) before any
//! field is read — but the *static* panic-free-recovery invariant
//! (`amnesia-lint`'s `panic` rule) wants those reads to carry no panic
//! path at all, not merely a dynamically-unreachable one. [`take_arr`]
//! is the shared seam: a prefix copy that reports a short slice as
//! `None` instead of panicking, so recovery code turns it into an `Err`
//! or a torn-tail truncation as the situation demands.

/// The first `N` bytes of `s` as a fixed array, or `None` when `s` is
/// shorter than `N`.
#[inline]
pub fn take_arr<const N: usize>(s: &[u8]) -> Option<[u8; N]> {
    s.get(..N)?.try_into().ok()
}

/// Little-endian `u32` from the front of `s`, if present.
#[inline]
pub fn le_u32(s: &[u8]) -> Option<u32> {
    take_arr::<4>(s).map(u32::from_le_bytes)
}

/// Little-endian `u64` from the front of `s`, if present.
#[inline]
pub fn le_u64(s: &[u8]) -> Option<u64> {
    take_arr::<8>(s).map(u64::from_le_bytes)
}

/// Little-endian `i64` from the front of `s`, if present.
#[inline]
pub fn le_i64(s: &[u8]) -> Option<i64> {
    take_arr::<8>(s).map(i64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_prefix_and_rejects_short() {
        let b = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(le_u32(&b), Some(1));
        assert_eq!(le_u64(&b[4..]), Some(2));
        assert_eq!(le_i64(&b[..7]), None);
        assert_eq!(take_arr::<4>(&b[..3]), None);
        assert_eq!(take_arr::<0>(&[]), Some([]));
    }
}
