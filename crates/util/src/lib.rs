//! Foundations for the `amnesia` workspace.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! crate in the workspace leans on:
//!
//! * [`rng`] — a deterministic, seedable random number generator
//!   (Xoshiro256++ seeded through SplitMix64) with the sampling primitives
//!   the amnesia simulator needs: uniform ranges, Bernoulli, Box–Muller
//!   normals, shuffles, and weighted/unweighted sampling without
//!   replacement. The simulator must be bit-reproducible across platforms,
//!   which is why we ship our own generator instead of depending on `rand`.
//! * [`bitmap`] — a packed bitset with rank/select used for the per-tuple
//!   active/forgotten marking that the paper's simulator is built around.
//! * [`stats`] — Welford running moments, Kahan summation and quantiles.
//! * [`ascii`] — line charts, heatmaps and text tables for terminal-friendly
//!   reproduction of the paper's figures.
//! * [`crc`] — CRC-32/IEEE for snapshot and WAL integrity checking.
//! * [`fixed`] — checked fixed-width reads from untrusted bytes, the
//!   panic-free parsing seam the recovery paths share.
//! * [`error`] — the shared error type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ascii;
pub mod bitmap;
pub mod crc;
pub mod error;
pub mod fixed;
pub mod rng;
pub mod stats;

pub use bitmap::{Bitmap, WORD_BITS};
pub use crc::{crc32, Crc32};
pub use error::{Error, Result};
pub use fixed::take_arr;
pub use rng::SimRng;
pub use stats::{KahanSum, MinMax, RunningStats};
