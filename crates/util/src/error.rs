//! Shared error type for the amnesia workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the amnesia workspace.
#[derive(Debug)]
pub enum Error {
    /// A configuration value is out of its legal range or inconsistent.
    InvalidConfig(String),
    /// A storage-layer invariant was violated (bad row id, frozen segment…).
    Storage(String),
    /// A query referenced something that does not exist.
    Query(String),
    /// Underlying I/O failure (file-backed cold store).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Storage(msg) => write!(f, "storage error: {msg}"),
            Error::Query(msg) => write!(f, "query error: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Build an [`Error::InvalidConfig`] from format arguments.
#[macro_export]
macro_rules! config_err {
    ($($arg:tt)*) => {
        $crate::error::Error::InvalidConfig(format!($($arg)*))
    };
}

/// Build an [`Error::Storage`] from format arguments.
#[macro_export]
macro_rules! storage_err {
    ($($arg:tt)*) => {
        $crate::error::Error::Storage(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::InvalidConfig("dbsize must be > 0".into());
        assert_eq!(e.to_string(), "invalid configuration: dbsize must be > 0");
        let e = Error::Storage("row 7 out of range".into());
        assert!(e.to_string().contains("row 7"));
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn macros_produce_variants() {
        let e = config_err!("bad {}", 42);
        assert!(matches!(e, Error::InvalidConfig(_)));
        let e = storage_err!("oops {}", "x");
        assert!(matches!(e, Error::Storage(_)));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error as _;
        let e = Error::Io(std::io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(Error::Query("q".into()).source().is_none());
    }
}
