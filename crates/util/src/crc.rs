//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Snapshots and WAL records carry a checksum so recovery can tell a
//! clean end-of-log from a torn or corrupted record. The implementation
//! is the standard reflected CRC-32 used by zlib/PNG/Ethernet, computed
//! byte-at-a-time from a lazily built 256-entry table.

/// Reflected polynomial for CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Fold in bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"amnesia snapshot payload with several words";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 256];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), baseline, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = Crc32::new();
        c.update(b"xyz");
        assert_eq!(c.finish(), c.finish());
    }
}
