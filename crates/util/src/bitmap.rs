//! Packed bitset with rank/select.
//!
//! The amnesia simulator marks every tuple as *active* or *forgotten* at the
//! granularity of a single record (paper §2.1). [`Bitmap`] is the backing
//! structure: a `Vec<u64>` of blocks with the operations policy code needs —
//! membership, population count, forward/backward scans for the next set
//! bit (the `area` policy grows holes in either direction), rank (ones
//! before a position) and select (position of the k-th one, used to pick a
//! uniformly random active tuple in O(blocks)).

use serde::{Deserialize, Serialize};

const BLOCK_BITS: usize = 64;

/// Bits per storage word, for word-at-a-time consumers.
///
/// The vectorized kernels in `amnesia-engine::batch` walk [`Bitmap::words`]
/// directly so that the active/forgotten check costs one load (and usually
/// one `trailing_zeros` chain) per 64 rows instead of a shift per row.
pub const WORD_BITS: usize = BLOCK_BITS;

/// `word` — the 64-bit block at word index `i` — restricted to absolute
/// bit positions `[lo, hi)`: bits below `lo` and at/above `hi` cleared;
/// zero when the word lies wholly outside the range.
///
/// This is the single home of the boundary-masking algebra; both
/// [`Bitmap::masked_word`] / [`masked_word`] and the word-at-a-time
/// kernels in `amnesia-engine::batch` (which also clip predicate masks,
/// not just stored words) call it, so range-clipping fixes land in one
/// place.
#[inline]
pub fn clip_word(word: u64, i: usize, lo: usize, hi: usize) -> u64 {
    let word_lo = i * BLOCK_BITS;
    let mut w = word;
    if lo > word_lo {
        let shift = lo - word_lo;
        if shift >= BLOCK_BITS {
            return 0;
        }
        w &= !0u64 << shift;
    }
    if hi < word_lo + BLOCK_BITS {
        if hi <= word_lo {
            return 0;
        }
        w &= (1u64 << (hi - word_lo)) - 1;
    }
    w
}

/// Word `i` of `words` restricted to absolute bit positions `[lo, hi)`;
/// indices past the slice come back zero. Slice form of [`clip_word`].
#[inline]
pub fn masked_word(words: &[u64], i: usize, lo: usize, hi: usize) -> u64 {
    clip_word(words.get(i).copied().unwrap_or(0), i, lo, hi)
}

/// Visit every set bit of `words` in absolute bit positions `[lo, hi)`,
/// ascending. Bits past the slice count as clear. One home for the
/// bit-range fan-out the RLE join kernels and codec visitors share.
#[inline]
pub fn for_each_set_bit_in(words: &[u64], lo: usize, hi: usize, mut f: impl FnMut(usize)) {
    if lo >= hi {
        return;
    }
    let first = lo / BLOCK_BITS;
    let last = (hi - 1) / BLOCK_BITS;
    for wi in first..=last {
        let mut w = masked_word(words, wi, lo, hi);
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            f(wi * BLOCK_BITS + bit);
        }
    }
}

/// Does `[lo, hi)` contain any set bit of `words`?
#[inline]
pub fn any_set_bit_in(words: &[u64], lo: usize, hi: usize) -> bool {
    if lo >= hi {
        return false;
    }
    let first = lo / BLOCK_BITS;
    let last = (hi - 1) / BLOCK_BITS;
    (first..=last).any(|wi| masked_word(words, wi, lo, hi) != 0)
}

/// Count the set bits of `words` in `[lo, hi)` — one popcount per word
/// spanned, O(words) not O(bits).
#[inline]
pub fn count_set_bits_in(words: &[u64], lo: usize, hi: usize) -> usize {
    if lo >= hi {
        return 0;
    }
    let first = lo / BLOCK_BITS;
    let last = (hi - 1) / BLOCK_BITS;
    (first..=last)
        .map(|wi| masked_word(words, wi, lo, hi).count_ones() as usize)
        .sum()
}

/// A growable packed bitset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An empty bitmap of length 0.
    pub fn new() -> Self {
        Self {
            blocks: Vec::new(),
            len: 0,
            ones: 0,
        }
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn with_len(len: usize, value: bool) -> Self {
        let nblocks = len.div_ceil(BLOCK_BITS);
        let mut blocks = vec![if value { !0u64 } else { 0u64 }; nblocks];
        if value && !len.is_multiple_of(BLOCK_BITS) {
            // Clear the bits past `len` in the last block.
            let last = nblocks - 1;
            blocks[last] = (1u64 << (len % BLOCK_BITS)) - 1;
        }
        Self {
            blocks,
            len,
            ones: if value { len } else { 0 },
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.blocks[i / BLOCK_BITS] >> (i % BLOCK_BITS)) & 1 == 1
    }

    /// Set bit `i` to `value`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let block = &mut self.blocks[i / BLOCK_BITS];
        let mask = 1u64 << (i % BLOCK_BITS);
        let old = *block & mask != 0;
        if value {
            *block |= mask;
        } else {
            *block &= !mask;
        }
        match (old, value) {
            (false, true) => self.ones += 1,
            (true, false) => self.ones -= 1,
            _ => {}
        }
        old
    }

    /// Append a bit.
    pub fn push(&mut self, value: bool) {
        let i = self.len;
        if i.is_multiple_of(BLOCK_BITS) {
            self.blocks.push(0);
        }
        self.len += 1;
        if value {
            self.blocks[i / BLOCK_BITS] |= 1u64 << (i % BLOCK_BITS);
            self.ones += 1;
        }
    }

    /// Extend with `n` copies of `value`.
    pub fn extend(&mut self, n: usize, value: bool) {
        self.blocks.reserve(n / BLOCK_BITS + 1);
        for _ in 0..n {
            self.push(value);
        }
    }

    /// Iterator over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bitmap: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The packed 64-bit words backing the bitmap, low bit = low position.
    ///
    /// Invariant: bits at positions `>= len()` are always zero, so word
    /// consumers may popcount/scan whole words without masking the tail.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Word `i` restricted to positions `[lo, hi)`: the block at index
    /// `i` with bits below `lo` and at/above `hi` cleared. Positions are
    /// absolute (not word-relative); words wholly outside the range come
    /// back zero. This is the boundary-masking primitive for kernels that
    /// process sub-ranges (zone-map blocks, parallel chunks); see the
    /// free function [`masked_word`] for the raw-slice form.
    #[inline]
    pub fn masked_word(&self, i: usize, lo: usize, hi: usize) -> u64 {
        masked_word(&self.blocks, i, lo, hi)
    }

    /// Iterator over set-bit positions within `[lo, hi)`, ascending.
    ///
    /// Word-masked: whole zero words are skipped with one comparison and
    /// set bits are found with `trailing_zeros`, so sparse regions cost
    /// ~1 instruction per 64 positions.
    pub fn iter_ones_in(&self, lo: usize, hi: usize) -> OnesInRange<'_> {
        let hi = hi.min(self.len);
        let lo = lo.min(hi);
        let block_idx = lo / BLOCK_BITS;
        OnesInRange {
            bitmap: self,
            hi,
            block_idx,
            current: self.masked_word(block_idx, lo, hi),
        }
    }

    /// Position of the first set bit at or after `from`, if any.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut bi = from / BLOCK_BITS;
        let mut cur = self.blocks[bi] & (!0u64 << (from % BLOCK_BITS));
        loop {
            if cur != 0 {
                let pos = bi * BLOCK_BITS + cur.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            bi += 1;
            if bi >= self.blocks.len() {
                return None;
            }
            cur = self.blocks[bi];
        }
    }

    /// Position of the last set bit at or before `from`, if any.
    pub fn prev_one(&self, from: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let from = from.min(self.len - 1);
        let mut bi = from / BLOCK_BITS;
        let shift = BLOCK_BITS - 1 - (from % BLOCK_BITS);
        let mut cur = self.blocks[bi] & (!0u64 >> shift);
        loop {
            if cur != 0 {
                let pos = bi * BLOCK_BITS + (BLOCK_BITS - 1 - cur.leading_zeros() as usize);
                return Some(pos);
            }
            if bi == 0 {
                return None;
            }
            bi -= 1;
            cur = self.blocks[bi];
        }
    }

    /// Number of set bits strictly before position `i` (i may equal `len`).
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank position {i} out of range");
        let full_blocks = i / BLOCK_BITS;
        let mut count: usize = self.blocks[..full_blocks]
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum();
        if !i.is_multiple_of(BLOCK_BITS) {
            let mask = (1u64 << (i % BLOCK_BITS)) - 1;
            count += (self.blocks[full_blocks] & mask).count_ones() as usize;
        }
        count
    }

    /// Position of the `k`-th set bit (0-based), if it exists.
    pub fn select(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let mut remaining = k;
        for (bi, &block) in self.blocks.iter().enumerate() {
            let pop = block.count_ones() as usize;
            if remaining < pop {
                // Find the `remaining`-th set bit inside `block`.
                let mut b = block;
                for _ in 0..remaining {
                    b &= b - 1; // clear lowest set bit
                }
                return Some(bi * BLOCK_BITS + b.trailing_zeros() as usize);
            }
            remaining -= pop;
        }
        unreachable!("ones counter disagrees with block contents")
    }

    /// In-place bitwise AND with `other`. Lengths must match.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place bitwise OR with `other`. Lengths must match.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place AND-NOT (`self &= !other`). Lengths must match.
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
        self.recount();
    }

    /// Count set bits within `[lo, hi)`.
    pub fn count_ones_in(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds");
        self.rank(hi) - self.rank(lo)
    }

    fn recount(&mut self) {
        self.ones = self.blocks.iter().map(|b| b.count_ones() as usize).sum();
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

impl Default for Bitmap {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

/// Iterator over set-bit positions in a range. See [`Bitmap::iter_ones_in`].
pub struct OnesInRange<'a> {
    bitmap: &'a Bitmap,
    hi: usize,
    block_idx: usize,
    current: u64,
}

impl Iterator for OnesInRange<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BLOCK_BITS + bit);
            }
            self.block_idx += 1;
            let word_lo = self.block_idx * BLOCK_BITS;
            if word_lo >= self.hi {
                return None;
            }
            // Only the final word can need a high-side mask.
            self.current = self.bitmap.masked_word(self.block_idx, word_lo, self.hi);
        }
    }
}

/// Iterator over set-bit positions. See [`Bitmap::iter_ones`].
pub struct Ones<'a> {
    bitmap: &'a Bitmap,
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let pos = self.block_idx * BLOCK_BITS + bit;
                return (pos < self.bitmap.len).then_some(pos);
            }
            self.block_idx += 1;
            if self.block_idx >= self.bitmap.blocks.len() {
                return None;
            }
            self.current = self.bitmap.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_range_helpers_match_naive() {
        let words = [0xDEAD_BEEF_0123_4567u64, 0xFFFF_0000_FFFF_0000, 0x1];
        let set = |i: usize| words.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1);
        for (lo, hi) in [(0, 0), (0, 64), (3, 61), (60, 70), (64, 192), (150, 200)] {
            let mut got = Vec::new();
            for_each_set_bit_in(&words, lo, hi, |i| got.push(i));
            let want: Vec<usize> = (lo..hi).filter(|&i| set(i)).collect();
            assert_eq!(got, want, "[{lo}, {hi})");
            assert_eq!(
                count_set_bits_in(&words, lo, hi),
                want.len(),
                "[{lo}, {hi})"
            );
            assert_eq!(
                any_set_bit_in(&words, lo, hi),
                !want.is_empty(),
                "[{lo}, {hi})"
            );
        }
        // Bits past the slice count as clear.
        assert_eq!(count_set_bits_in(&words, 191, 300), 0);
        assert!(!any_set_bit_in(&words, 193, 300));
    }

    #[test]
    fn with_len_all_true_has_exact_ones() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let bm = Bitmap::with_len(len, true);
            assert_eq!(bm.count_ones(), len);
            assert_eq!(bm.len(), len);
            for i in 0..len {
                assert!(bm.get(i));
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::with_len(200, false);
        bm.set(0, true);
        bm.set(63, true);
        bm.set(64, true);
        bm.set(199, true);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(199));
        assert!(!bm.get(1) && !bm.get(100));
        assert_eq!(bm.count_ones(), 4);
        assert!(bm.set(0, false));
        assert_eq!(bm.count_ones(), 3);
        // Setting to the same value is idempotent.
        bm.set(63, true);
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn push_grows() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut bm = Bitmap::with_len(300, false);
        let expected = vec![0usize, 5, 63, 64, 65, 128, 299];
        for &i in &expected {
            bm.set(i, true);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn next_prev_one() {
        let mut bm = Bitmap::with_len(256, false);
        for &i in &[10usize, 64, 200] {
            bm.set(i, true);
        }
        assert_eq!(bm.next_one(0), Some(10));
        assert_eq!(bm.next_one(10), Some(10));
        assert_eq!(bm.next_one(11), Some(64));
        assert_eq!(bm.next_one(201), None);
        assert_eq!(bm.prev_one(255), Some(200));
        assert_eq!(bm.prev_one(200), Some(200));
        assert_eq!(bm.prev_one(199), Some(64));
        assert_eq!(bm.prev_one(9), None);
    }

    #[test]
    fn rank_select_duality() {
        let mut bm = Bitmap::with_len(500, false);
        for i in (0..500).step_by(7) {
            bm.set(i, true);
        }
        for k in 0..bm.count_ones() {
            let pos = bm.select(k).unwrap();
            assert_eq!(bm.rank(pos), k);
            assert!(bm.get(pos));
        }
        assert_eq!(bm.select(bm.count_ones()), None);
        assert_eq!(bm.rank(500), bm.count_ones());
        assert_eq!(bm.rank(0), 0);
    }

    #[test]
    fn boolean_ops() {
        let a: Bitmap = (0..128).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..128).map(|i| i % 3 == 0).collect();

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.count_ones(), (0..128).filter(|i| i % 6 == 0).count());

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.count_ones(),
            (0..128).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );

        let mut andnot = a.clone();
        andnot.and_not_assign(&b);
        assert_eq!(
            andnot.count_ones(),
            (0..128).filter(|i| i % 2 == 0 && i % 3 != 0).count()
        );
    }

    #[test]
    fn count_ones_in_range() {
        let bm: Bitmap = (0..100).map(|i| i % 5 == 0).collect();
        assert_eq!(bm.count_ones_in(0, 100), 20);
        assert_eq!(bm.count_ones_in(0, 1), 1);
        assert_eq!(bm.count_ones_in(1, 5), 0);
        assert_eq!(bm.count_ones_in(1, 6), 1);
        assert_eq!(bm.count_ones_in(50, 50), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bm = Bitmap::with_len(10, false);
        bm.get(10);
    }

    #[test]
    fn words_tail_bits_are_zero() {
        for len in [1usize, 63, 64, 65, 127, 130] {
            let bm = Bitmap::with_len(len, true);
            let words = bm.words();
            assert_eq!(words.len(), len.div_ceil(64));
            let total: u32 = words.iter().map(|w| w.count_ones()).sum();
            assert_eq!(total as usize, len, "no stray bits past len {len}");
        }
        // Pushing keeps the invariant too.
        let mut bm = Bitmap::new();
        for i in 0..70 {
            bm.push(i % 2 == 0);
        }
        let total: u32 = bm.words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(total as usize, bm.count_ones());
    }

    #[test]
    fn masked_word_clips_both_sides() {
        let bm = Bitmap::with_len(256, true);
        assert_eq!(bm.masked_word(0, 0, 256), !0u64);
        assert_eq!(bm.masked_word(0, 3, 256), !0u64 << 3);
        assert_eq!(bm.masked_word(0, 0, 10), (1u64 << 10) - 1);
        assert_eq!(bm.masked_word(0, 3, 10), ((1u64 << 10) - 1) & (!0u64 << 3));
        assert_eq!(bm.masked_word(1, 0, 256), !0u64);
        assert_eq!(bm.masked_word(1, 70, 130), !0u64 << 6);
        // Word wholly outside the range.
        assert_eq!(bm.masked_word(0, 64, 256), 0);
        assert_eq!(bm.masked_word(2, 0, 128), 0);
        // Out-of-bounds word index.
        assert_eq!(bm.masked_word(9, 0, 1000), 0);
    }

    #[test]
    fn iter_ones_in_respects_bounds() {
        let mut bm = Bitmap::with_len(300, false);
        let set = [0usize, 5, 63, 64, 65, 128, 200, 299];
        for &i in &set {
            bm.set(i, true);
        }
        for (lo, hi) in [
            (0, 300),
            (1, 300),
            (5, 66),
            (64, 65),
            (65, 65),
            (66, 128),
            (128, 299),
        ] {
            let got: Vec<usize> = bm.iter_ones_in(lo, hi).collect();
            let expect: Vec<usize> = set.iter().copied().filter(|&i| i >= lo && i < hi).collect();
            assert_eq!(got, expect, "range [{lo}, {hi})");
        }
        // hi beyond len clips.
        let all: Vec<usize> = bm.iter_ones_in(0, 10_000).collect();
        assert_eq!(all, set.to_vec());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_vec_bool_model(bits in proptest::collection::vec(any::<bool>(), 0..600)) {
            let bm: Bitmap = bits.iter().copied().collect();
            prop_assert_eq!(bm.len(), bits.len());
            prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(bm.get(i), b);
            }
            let ones: Vec<usize> = bm.iter_ones().collect();
            let expect: Vec<usize> = bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            prop_assert_eq!(ones, expect);
        }

        #[test]
        fn rank_select_inverse(bits in proptest::collection::vec(any::<bool>(), 1..600), k_seed in any::<usize>()) {
            let bm: Bitmap = bits.iter().copied().collect();
            if bm.count_ones() > 0 {
                let k = k_seed % bm.count_ones();
                let pos = bm.select(k).unwrap();
                prop_assert!(bm.get(pos));
                prop_assert_eq!(bm.rank(pos), k);
            }
        }

        #[test]
        fn iter_ones_in_equals_filtered_iter_ones(
            bits in proptest::collection::vec(any::<bool>(), 0..400),
            lo in 0usize..450,
            hi in 0usize..450,
        ) {
            let bm: Bitmap = bits.iter().copied().collect();
            let got: Vec<usize> = bm.iter_ones_in(lo, hi).collect();
            let expect: Vec<usize> = bm.iter_ones().filter(|&i| i >= lo && i < hi).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn next_one_scan_equals_iter(bits in proptest::collection::vec(any::<bool>(), 0..400)) {
            let bm: Bitmap = bits.iter().copied().collect();
            let mut scanned = Vec::new();
            let mut from = 0usize;
            while let Some(p) = bm.next_one(from) {
                scanned.push(p);
                from = p + 1;
            }
            let expect: Vec<usize> = bm.iter_ones().collect();
            prop_assert_eq!(scanned, expect);
        }
    }
}
